#include "net/remote_cluster.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "net/wire.h"

namespace dls::net {

RemoteClusterIndex::RemoteClusterIndex(std::vector<Shard> shards)
    : RemoteClusterIndex(std::move(shards), Options()) {}

RemoteClusterIndex::RemoteClusterIndex(std::vector<Shard> shards,
                                       Options options)
    : shards_(std::move(shards)), options_(options) {
  assert(!shards_.empty());
  shard_docs_.assign(shards_.size(), 0);
}

RemoteClusterIndex::~RemoteClusterIndex() = default;

void RemoteClusterIndex::SetExecutor(ThreadPool* pool) {
  executor_ = pool;
  if (pool == nullptr) owned_pool_.reset();
}

void RemoteClusterIndex::EnableParallelism(size_t num_threads) {
  owned_pool_ = std::make_unique<ThreadPool>(num_threads);
  executor_ = owned_pool_.get();
}

void RemoteClusterIndex::ForEachShard(
    const std::function<void(size_t)>& fn) const {
  if (executor_ != nullptr && shards_.size() > 1) {
    executor_->ParallelFor(0, shards_.size(), fn);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) fn(i);
  }
}

int32_t RemoteClusterIndex::global_df(std::string_view stem) const {
  auto it = global_df_.find(stem);
  return it == global_df_.end() ? 0 : it->second;
}

namespace {

/// One request/response exchange with per-attempt deadline and
/// measured traffic. Every request frame handed to the transport and
/// every response frame received counts, so retries show up in the
/// stats instead of hiding.
Result<std::vector<uint8_t>> Exchange(Transport* transport,
                                      const std::vector<uint8_t>& frame,
                                      int timeout_ms, int retries,
                                      size_t* messages, size_t* bytes) {
  Status last = Status::Unavailable("no attempts made");
  for (int attempt = 0; attempt <= retries; ++attempt) {
    *messages += 1;
    *bytes += frame.size();
    Result<std::vector<uint8_t>> response =
        transport->Call(frame, Deadline::After(timeout_ms));
    if (response.ok()) {
      *messages += 1;
      *bytes += response.value().size();
      return response;
    }
    last = response.status();
  }
  return last;
}

}  // namespace

Status RemoteClusterIndex::Connect() {
  global_df_.clear();
  collection_length_ = 0;
  total_docs_ = 0;
  cluster_epoch_ = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    StatsRequest request;
    request.node_id = shards_[i].node_id;
    size_t messages = 0, bytes = 0;
    Result<std::vector<uint8_t>> frame =
        Exchange(shards_[i].transport, EncodeStatsRequest(request),
                 options_.timeout_ms, options_.retries, &messages, &bytes);
    if (!frame.ok()) return frame.status();
    MessageType type;
    const uint8_t* body = nullptr;
    size_t body_len = 0;
    DLS_RETURN_IF_ERROR(DecodeFrame(frame.value(), &type, &body, &body_len));
    if (type == MessageType::kError) return DecodeError(body, body_len);
    if (type != MessageType::kStatsResponse) {
      return Status::Corruption("stats handshake: unexpected frame type");
    }
    Result<StatsResponse> stats = DecodeStatsResponse(body, body_len);
    if (!stats.ok()) return stats.status();
    // Adopt the first shard's normalisation pipeline and hold every
    // other shard to it: resolving queries through a different
    // stem/stop configuration than the shards indexed with would
    // silently break the remote/in-process bit-identity (and recall).
    if (i == 0) {
      norm_stem_ = stats.value().stem;
      norm_stop_ = stats.value().stop;
    } else if (stats.value().stem != norm_stem_ ||
               stats.value().stop != norm_stop_) {
      return Status::InvalidArgument(StrFormat(
          "shard %zu normalisation (stem=%d stop=%d) disagrees with shard 0 "
          "(stem=%d stop=%d); all shards must index with one pipeline",
          i, stats.value().stem ? 1 : 0, stats.value().stop ? 1 : 0,
          norm_stem_ ? 1 : 0, norm_stop_ ? 1 : 0));
    }
    // Same aggregation as ClusterIndex::Finalize(): integer sums, so
    // the resulting global df relation is identical to the in-process
    // one whatever the shard order.
    collection_length_ += stats.value().collection_length;
    shard_docs_[i] = stats.value().document_count;
    total_docs_ += stats.value().document_count;
    cluster_epoch_ += stats.value().mutation_epoch;
    for (const auto& [term, df] : stats.value().term_dfs) {
      global_df_[term] += df;
    }
  }
  connected_ = true;
  return Status::Ok();
}

ir::ShardQuery RemoteClusterIndex::ResolveQuery(
    const std::vector<std::string>& query_words, size_t n,
    size_t max_fragments, const ir::RankOptions& options,
    double* idf_mass_total) const {
  // Identical resolution to ClusterIndex::Query: normalise, drop
  // duplicates, keep only stems of the global vocabulary. The
  // stem/stop flags come from the Connect() handshake, so this is the
  // same pipeline node 0's index->NormalizeWord applies in-process —
  // whatever configuration the shards were built with.
  ir::ShardQuery request;
  request.collection_length = collection_length_;
  request.n = n;
  request.max_fragments = max_fragments;
  request.options = options;
  *idf_mass_total = 0;
  for (const std::string& word : query_words) {
    std::optional<std::string> norm =
        ir::NormalizeWordAs(word, norm_stem_, norm_stop_);
    if (!norm) continue;
    if (std::find(request.stems.begin(), request.stems.end(), *norm) !=
        request.stems.end()) {
      continue;
    }
    auto it = global_df_.find(*norm);
    if (it == global_df_.end()) continue;
    request.stems.push_back(*norm);
    request.stem_global_df.push_back(it->second);
    *idf_mass_total += 1.0 / static_cast<double>(it->second);
  }
  return request;
}

void RemoteClusterIndex::CallShard(size_t shard,
                                   const std::vector<ir::ShardQuery>& queries,
                                   ShardOutcome* outcome) const {
  QueryRequest request;
  request.node_id = shards_[shard].node_id;
  request.queries = queries;
  Result<std::vector<uint8_t>> encoded = EncodeQueryRequest(request);
  // A batch too large for one frame never reaches the wire; the shard
  // counts as lost (every shard fails identically, so the query comes
  // back empty with predicted_quality 0 rather than half-shipped).
  if (!encoded.ok()) return;
  Result<std::vector<uint8_t>> frame = Exchange(
      shards_[shard].transport, encoded.value(),
      options_.timeout_ms, options_.retries, &outcome->messages,
      &outcome->bytes);
  if (!frame.ok()) return;  // shard lost: outcome stays !alive
  MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  if (!DecodeFrame(frame.value(), &type, &body, &body_len).ok()) return;
  if (type != MessageType::kQueryResponse) return;  // Error frame or junk
  Result<QueryResponse> response = DecodeQueryResponse(body, body_len);
  if (!response.ok()) return;
  // A response that doesn't answer the batch is as lost as no
  // response: partial merges would silently drop documents.
  if (response.value().results.size() != queries.size()) return;
  outcome->results = std::move(response.value().results);
  outcome->alive = true;
}

std::vector<RemoteClusterIndex::ShardOutcome> RemoteClusterIndex::FanOut(
    const std::vector<ir::ShardQuery>& queries) const {
  std::vector<ShardOutcome> outcomes(shards_.size());
  ForEachShard(
      [&](size_t i) { CallShard(i, queries, &outcomes[i]); });
  return outcomes;
}

/// The quality estimate multiplies the idf-mass a-priori estimate
/// (first responding shard's cut-off mask, as in-process uses node
/// 0's) by the surviving document share — losing a node loses its
/// share of the collection.
void RemoteClusterIndex::AggregateStats(
    const std::vector<ir::ShardQuery>& queries,
    const std::vector<double>& idf_mass_totals,
    const std::vector<ShardOutcome>& outcomes,
    ir::ClusterQueryStats* stats) const {
  uint64_t alive_docs = 0;
  const ShardOutcome* first_alive = nullptr;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ShardOutcome& o = outcomes[i];
    stats->messages += o.messages;
    stats->bytes_shipped += o.bytes;
    if (!o.alive) continue;
    if (first_alive == nullptr) first_alive = &o;
    alive_docs += shard_docs_[i];
    double shard_elapsed = 0;
    for (const ir::ShardResult& r : o.results) {
      stats->postings_touched_total += r.postings_touched;
      stats->postings_touched_max_node =
          std::max(stats->postings_touched_max_node,
                   static_cast<size_t>(r.postings_touched));
      stats->blocks_skipped += r.blocks_skipped;
      stats->blocks_decoded += r.blocks_decoded;
      stats->pivot_iterations += r.pivot_iterations;
      stats->cursor_advances += r.cursor_advances;
      shard_elapsed += r.elapsed_us;
    }
    stats->critical_path_us = std::max(stats->critical_path_us, shard_elapsed);
    stats->total_cpu_us += shard_elapsed;
  }

  double idf_total = 0, idf_read = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    idf_total += idf_mass_totals[q];
    if (first_alive == nullptr) continue;
    const std::vector<bool>& mask = first_alive->results[q].stem_evaluated;
    for (size_t s = 0; s < queries[q].stems.size(); ++s) {
      if (s < mask.size() && mask[s]) {
        idf_read += 1.0 / static_cast<double>(queries[q].stem_global_df[s]);
      }
    }
  }
  const double idf_quality = idf_total > 0 ? idf_read / idf_total : 1.0;
  const double alive_share =
      total_docs_ > 0
          ? static_cast<double>(alive_docs) / static_cast<double>(total_docs_)
          : 1.0;
  stats->predicted_quality = idf_quality * alive_share;
}

std::vector<ir::ClusterScoredDoc> RemoteClusterIndex::Query(
    const std::vector<std::string>& query_words, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    const ir::RankOptions& options) const {
  assert(connected_ && "call Connect() before Query()");
  double idf_mass_total = 0;
  ir::ShardQuery base =
      ResolveQuery(query_words, n, max_fragments, options, &idf_mass_total);

  std::vector<ShardOutcome> outcomes;
  if (options.prune && n > 0 &&
      (executor_ == nullptr || shards_.size() <= 1)) {
    // Sequential threshold feedback, as in-process: push the running
    // global n-th best score to later shards. Exact either way — only
    // the work stats differ from the parallel fan-out.
    outcomes.resize(shards_.size());
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        best;
    ir::ShardQuery request = base;
    for (size_t i = 0; i < shards_.size(); ++i) {
      CallShard(i, {request}, &outcomes[i]);
      if (!outcomes[i].alive) continue;
      for (const ir::ClusterScoredDoc& d : outcomes[i].results[0].top) {
        if (best.size() < n) {
          best.push(d.score);
        } else if (d.score > best.top()) {
          best.pop();
          best.push(d.score);
        }
      }
      if (best.size() == n) request.threshold = best.top();
    }
  } else {
    outcomes = FanOut({base});
  }

  ir::ClusterQueryStats local_stats;
  AggregateStats({base}, {idf_mass_total}, outcomes, &local_stats);

  // Lost shards contribute an empty ShardResult — the merge just never
  // draws from them.
  std::vector<ir::ShardResult> responses(shards_.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].alive) responses[i] = std::move(outcomes[i].results[0]);
  }
  std::vector<ir::ClusterScoredDoc> merged =
      ir::MergeShardResults(&responses, n);
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

std::vector<std::vector<ir::ClusterScoredDoc>> RemoteClusterIndex::QueryBatch(
    const std::vector<std::vector<std::string>>& queries, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    const ir::RankOptions& options) const {
  assert(connected_ && "call Connect() before QueryBatch()");
  std::vector<ir::ShardQuery> requests;
  std::vector<double> idf_mass_totals;
  requests.reserve(queries.size());
  idf_mass_totals.reserve(queries.size());
  for (const std::vector<std::string>& words : queries) {
    double idf_mass_total = 0;
    requests.push_back(
        ResolveQuery(words, n, max_fragments, options, &idf_mass_total));
    idf_mass_totals.push_back(idf_mass_total);
  }

  std::vector<ShardOutcome> outcomes = FanOut(requests);

  ir::ClusterQueryStats local_stats;
  AggregateStats(requests, idf_mass_totals, outcomes, &local_stats);

  std::vector<std::vector<ir::ClusterScoredDoc>> merged;
  merged.reserve(queries.size());
  for (size_t q = 0; q < requests.size(); ++q) {
    std::vector<ir::ShardResult> responses(shards_.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].alive) {
        responses[i] = std::move(outcomes[i].results[q]);
      }
    }
    merged.push_back(ir::MergeShardResults(&responses, n));
  }
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

}  // namespace dls::net
