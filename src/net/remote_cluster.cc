#include "net/remote_cluster.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <numeric>
#include <queue>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "net/wire.h"

namespace dls::net {

namespace {

/// One attempt's classified outcome. `frame` is ok iff a well-formed
/// non-Error frame arrived; `bytes` is the size of whatever response
/// frame was received (0 when the transport itself failed), so wire
/// accounting charges error frames and corrupt frames like the real
/// traffic they are.
struct Attempt {
  Result<std::vector<uint8_t>> frame;
  size_t bytes = 0;
};

/// Collapses a raw transport result into pass/fail: a transport error,
/// an undecodable frame, or a peer Error frame are all *failed
/// attempts* — eligible for retry and replica failover — while any
/// well-formed non-Error frame is the attempt's answer (the caller
/// still checks the type).
Attempt ClassifyResponse(Result<std::vector<uint8_t>> raw) {
  if (!raw.ok()) return {std::move(raw), 0};
  const size_t bytes = raw.value().size();
  MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Status decoded = DecodeFrame(raw.value(), &type, &body, &body_len);
  if (!decoded.ok()) return {std::move(decoded), bytes};
  if (type == MessageType::kError) return {DecodeError(body, body_len), bytes};
  return {std::move(raw), bytes};
}

}  // namespace

/// Completion channel between a caller and its async attempts. Heap-
/// allocated and shared: a hedge loser finishing after the caller
/// returned writes into this, not into the caller's stack.
struct RemoteClusterIndex::HedgedCall {
  std::mutex mu;
  std::condition_variable cv;
  struct Done {
    Result<std::vector<uint8_t>> frame = Status::Unavailable("pending");
    size_t bytes = 0;
    size_t replica = 0;
    bool is_hedge = false;
  };
  std::vector<Done> done;
};

RemoteClusterIndex::RemoteClusterIndex(std::vector<Shard> shards)
    : RemoteClusterIndex(std::move(shards), Options()) {}

RemoteClusterIndex::RemoteClusterIndex(std::vector<Shard> shards,
                                       Options options)
    : RemoteClusterIndex(
          [&shards] {
            std::vector<ReplicaSet> sets(shards.size());
            for (size_t i = 0; i < shards.size(); ++i) {
              sets[i].replicas.push_back(shards[i]);
            }
            return sets;
          }(),
          options) {}

RemoteClusterIndex::RemoteClusterIndex(std::vector<ReplicaSet> shards,
                                       Options options)
    : shards_(std::move(shards)), options_(options) {
  assert(!shards_.empty());
  shard_docs_.assign(shards_.size(), 0);
  shard_state_.reserve(shards_.size());
  for (const ReplicaSet& set : shards_) {
    assert(!set.replicas.empty());
    auto state = std::make_unique<ShardState>();
    state->health.resize(set.replicas.size());
    shard_state_.push_back(std::move(state));
  }
}

RemoteClusterIndex::~RemoteClusterIndex() {
  // Hedge losers still hold `this` (they record replica health); the
  // index must not die under them.
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void RemoteClusterIndex::SetExecutor(ThreadPool* pool) {
  executor_ = pool;
  if (pool == nullptr) owned_pool_.reset();
}

void RemoteClusterIndex::EnableParallelism(size_t num_threads) {
  owned_pool_ = std::make_unique<ThreadPool>(num_threads);
  executor_ = owned_pool_.get();
}

void RemoteClusterIndex::ForEachShard(
    const std::function<void(size_t)>& fn) const {
  if (executor_ != nullptr && shards_.size() > 1) {
    executor_->ParallelFor(0, shards_.size(), fn);
  } else {
    for (size_t i = 0; i < shards_.size(); ++i) fn(i);
  }
}

int32_t RemoteClusterIndex::global_df(std::string_view stem) const {
  std::shared_lock<std::shared_mutex> lock(stats_mu_);
  auto it = global_df_.find(stem);
  return it == global_df_.end() ? 0 : it->second;
}

RemoteClusterIndex::ReplicaCounters RemoteClusterIndex::replica_counters()
    const {
  ReplicaCounters counters;
  counters.hedges_fired = hedges_fired_.load(std::memory_order_relaxed);
  counters.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  counters.failovers = failovers_.load(std::memory_order_relaxed);
  counters.replica_errors = replica_errors_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<size_t> RemoteClusterIndex::HealthOrder(size_t shard) const {
  const size_t n = shards_[shard].replicas.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (n < 2) return order;
  // Score = smoothed latency plus an error-rate penalty priced at one
  // timeout (that is what a failed attempt costs the caller). A
  // never-sampled replica scores 0 and keeps its configured position —
  // fresh replicas get probed first, in deterministic order.
  std::vector<double> score(n);
  {
    ShardState& state = *shard_state_[shard];
    std::lock_guard<std::mutex> lock(state.mu);
    for (size_t r = 0; r < n; ++r) {
      const ReplicaHealth& h = state.health[r];
      score[r] = h.ewma_latency_us +
                 h.ewma_error * static_cast<double>(options_.timeout_ms) * 1e3;
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&score](size_t a, size_t b) { return score[a] < score[b]; });
  return order;
}

int64_t RemoteClusterIndex::HedgeBudgetUs(size_t shard) const {
  if (!options_.hedge || shards_[shard].replicas.size() < 2) return -1;
  if (options_.hedge_budget_us > 0) return options_.hedge_budget_us;
  ShardState& state = *shard_state_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.window_count < options_.hedge_min_samples) return -1;
  std::array<uint32_t, 64> window = state.window_us;
  const size_t count = state.window_count;
  const double q = std::clamp(options_.hedge_quantile, 0.0, 1.0);
  const size_t k = static_cast<size_t>(q * static_cast<double>(count - 1));
  std::nth_element(window.begin(), window.begin() + k, window.begin() + count);
  return std::max<int64_t>(window[k], options_.hedge_budget_floor_us);
}

void RemoteClusterIndex::RecordCallOutcome(size_t shard, size_t replica,
                                           bool ok, double elapsed_us) const {
  if (!ok) replica_errors_.fetch_add(1, std::memory_order_relaxed);
  ShardState& state = *shard_state_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  ReplicaHealth& h = state.health[replica];
  const double a = options_.ewma_alpha;
  if (ok) {
    h.ewma_latency_us = h.ewma_latency_us <= 0
                            ? elapsed_us
                            : (1 - a) * h.ewma_latency_us + a * elapsed_us;
  }
  h.ewma_error =
      h.samples == 0 ? (ok ? 0.0 : 1.0)
                     : (1 - a) * h.ewma_error + a * (ok ? 0.0 : 1.0);
  h.samples += 1;
}

void RemoteClusterIndex::RecordExchangeLatency(size_t shard,
                                               double elapsed_us) const {
  const uint32_t clamped = static_cast<uint32_t>(
      std::min(elapsed_us, 4e9));
  ShardState& state = *shard_state_[shard];
  std::lock_guard<std::mutex> lock(state.mu);
  state.window_us[state.window_next] = clamped;
  state.window_next = (state.window_next + 1) % state.window_us.size();
  state.window_count = std::min(state.window_count + 1, state.window_us.size());
}

void RemoteClusterIndex::StartAsyncAttempt(
    size_t shard, size_t replica,
    std::shared_ptr<const std::vector<uint8_t>> frame, bool is_hedge,
    std::shared_ptr<HedgedCall> state) const {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  Transport* transport = shards_[shard].replicas[replica].transport;
  const int timeout_ms = options_.timeout_ms;
  std::thread([this, shard, replica, transport, timeout_ms,
               frame = std::move(frame), is_hedge, state = std::move(state)] {
    Timer timer;
    Attempt attempt = ClassifyResponse(
        transport->Call(*frame, Deadline::After(timeout_ms)));
    RecordCallOutcome(shard, replica, attempt.frame.ok(),
                      timer.ElapsedMillis() * 1e3);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done.push_back({std::move(attempt.frame), attempt.bytes, replica,
                             is_hedge});
    }
    state->cv.notify_all();
    {
      // Notify under the lock: the destructor destroys this cv the
      // moment its wait observes inflight_ == 0, and it can only
      // observe that after we release the mutex.
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_;
      inflight_cv_.notify_all();
    }
  }).detach();
}

Result<std::vector<uint8_t>> RemoteClusterIndex::HedgedExchange(
    size_t shard,
    const std::vector<std::shared_ptr<const std::vector<uint8_t>>>& frames,
    ExchangeTelemetry* t) const {
  // The attempt walk: replicas healthiest-first, the whole order
  // repeated for each retry pass. A single-replica shard degenerates
  // to the old retry loop exactly.
  const std::vector<size_t> order = HealthOrder(shard);
  std::vector<size_t> seq;
  seq.reserve(order.size() * static_cast<size_t>(options_.retries + 1));
  for (int pass = 0; pass <= options_.retries; ++pass) {
    for (size_t r : order) seq.push_back(r);
  }

  Timer exchange_timer;
  Status last = Status::Unavailable("no replica answered");
  size_t next = 0;
  const int64_t budget_us = HedgeBudgetUs(shard);

  if (budget_us < 0) {
    // Hedging not armed: walk the sequence synchronously — no spawned
    // threads, identical cost profile to the pre-replica code.
    while (next < seq.size()) {
      const size_t replica = seq[next++];
      t->messages += 1;
      t->bytes += frames[replica]->size();
      Timer call_timer;
      Attempt attempt = ClassifyResponse(
          shards_[shard].replicas[replica].transport->Call(
              *frames[replica], Deadline::After(options_.timeout_ms)));
      if (attempt.bytes > 0) {
        t->messages += 1;
        t->bytes += attempt.bytes;
      }
      RecordCallOutcome(shard, replica, attempt.frame.ok(),
                        call_timer.ElapsedMillis() * 1e3);
      if (attempt.frame.ok()) {
        RecordExchangeLatency(shard, exchange_timer.ElapsedMillis() * 1e3);
        return std::move(attempt.frame);
      }
      last = attempt.frame.status();
      if (next < seq.size() && seq[next] != replica) {
        t->failovers += 1;
        failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return last;
  }

  // Hedged path: attempts run on registered async threads so the
  // caller can fire the next replica while the first is still in
  // flight. At most two attempts outstanding; first well-formed answer
  // wins; losers land in `state` (heap-shared) and only update health.
  auto state = std::make_shared<HedgedCall>();
  size_t outstanding = 0;
  auto launch = [&](bool is_hedge) {
    const size_t replica = seq[next++];
    t->messages += 1;
    t->bytes += frames[replica]->size();
    ++outstanding;
    StartAsyncAttempt(shard, replica, frames[replica], is_hedge, state);
  };
  launch(/*is_hedge=*/false);

  size_t consumed = 0;
  std::unique_lock<std::mutex> lock(state->mu);
  while (true) {
    if (state->done.size() == consumed) {
      if (outstanding == 0) return last;  // walk exhausted, all failed
      if (next < seq.size() && outstanding < 2) {
        const bool completed = state->cv.wait_for(
            lock, std::chrono::microseconds(budget_us),
            [&] { return state->done.size() > consumed; });
        if (!completed) {
          // Budget blown: hedge to the next replica in the walk.
          lock.unlock();
          launch(/*is_hedge=*/true);
          lock.lock();
          t->hedges_fired += 1;
          hedges_fired_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      } else {
        state->cv.wait(lock,
                       [&] { return state->done.size() > consumed; });
      }
    }
    HedgedCall::Done& done = state->done[consumed++];
    --outstanding;
    if (done.bytes > 0) {
      t->messages += 1;
      t->bytes += done.bytes;
    }
    if (done.frame.ok()) {
      if (done.is_hedge) {
        t->hedge_wins += 1;
        hedge_wins_.fetch_add(1, std::memory_order_relaxed);
      }
      RecordExchangeLatency(shard, exchange_timer.ElapsedMillis() * 1e3);
      return std::move(done.frame);
    }
    last = done.frame.status();
    if (next < seq.size() && outstanding < 2) {
      const size_t failed_replica = done.replica;
      const size_t replacement = seq[next];
      lock.unlock();
      launch(/*is_hedge=*/false);
      lock.lock();
      if (replacement != failed_replica) {
        t->failovers += 1;
        failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

Status RemoteClusterIndex::Connect() {
  Status status = ConnectInternal();
  if (status.ok()) {
    connected_ = true;
    stats_dirty_.store(false, std::memory_order_release);
  }
  return status;
}

void RemoteClusterIndex::RefreshStatsIfStale() const {
  if (!stats_dirty_.exchange(false, std::memory_order_acq_rel)) return;
  if (!ConnectInternal().ok()) {
    // Handshake failed: query on the stale aggregates (the shards
    // still answer with whatever state they have) and let the next
    // query retry the refresh.
    stats_dirty_.store(true, std::memory_order_release);
  }
}

Status RemoteClusterIndex::ConnectInternal() const {
  // Phase 1, unlocked: run the handshake against every replica and
  // build the new aggregates locally — network I/O must not stall
  // concurrent queries holding shared stats locks.
  decltype(global_df_) new_global_df;
  int64_t new_collection_length = 0;
  std::vector<uint64_t> new_shard_docs(shards_.size(), 0);
  uint64_t new_total_docs = 0;
  uint64_t new_cluster_epoch = 0;
  bool new_stem = true;
  bool new_stop = true;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::vector<Shard>& replicas = shards_[i].replicas;
    StatsResponse adopted;
    for (size_t r = 0; r < replicas.size(); ++r) {
      // Per replica, no failover: Connect() is the deployment check
      // and every replica must answer for itself.
      StatsRequest request;
      request.node_id = replicas[r].node_id;
      const std::vector<uint8_t> frame = EncodeStatsRequest(request);
      Result<std::vector<uint8_t>> response =
          Status::Unavailable("no attempts made");
      for (int attempt = 0; attempt <= options_.retries; ++attempt) {
        Attempt a = ClassifyResponse(replicas[r].transport->Call(
            frame, Deadline::After(options_.timeout_ms)));
        response = std::move(a.frame);
        if (response.ok()) break;
      }
      if (!response.ok()) return response.status();
      MessageType type;
      const uint8_t* body = nullptr;
      size_t body_len = 0;
      DLS_RETURN_IF_ERROR(
          DecodeFrame(response.value(), &type, &body, &body_len));
      if (type != MessageType::kStatsResponse) {
        return Status::Corruption("stats handshake: unexpected frame type");
      }
      Result<StatsResponse> stats = DecodeStatsResponse(body, body_len);
      if (!stats.ok()) return stats.status();
      // Adopt the first shard's normalisation pipeline and hold every
      // other shard (and replica) to it: resolving queries through a
      // different stem/stop configuration than the shards indexed with
      // would silently break the remote/in-process bit-identity (and
      // recall).
      if (i == 0 && r == 0) {
        new_stem = stats.value().stem;
        new_stop = stats.value().stop;
      } else if (stats.value().stem != new_stem ||
                 stats.value().stop != new_stop) {
        return Status::InvalidArgument(StrFormat(
            "shard %zu replica %zu normalisation (stem=%d stop=%d) disagrees "
            "with shard 0 (stem=%d stop=%d); all shards must index with one "
            "pipeline",
            i, r, stats.value().stem ? 1 : 0, stats.value().stop ? 1 : 0,
            new_stem ? 1 : 0, new_stop ? 1 : 0));
      }
      if (r == 0) {
        adopted = std::move(stats).value();
        continue;
      }
      // Replicas of one shard must serve the same frozen node — that
      // identity is what makes failover/hedging exactness-safe, so the
      // cheap invariants are checked up front rather than trusted.
      if (stats.value().document_count != adopted.document_count ||
          stats.value().collection_length != adopted.collection_length ||
          stats.value().mutation_epoch != adopted.mutation_epoch) {
        return Status::InvalidArgument(StrFormat(
            "shard %zu replica %zu (docs=%llu len=%lld epoch=%llu) disagrees "
            "with replica 0 (docs=%llu len=%lld epoch=%llu); replicas must "
            "serve identical node content",
            i, r,
            static_cast<unsigned long long>(stats.value().document_count),
            static_cast<long long>(stats.value().collection_length),
            static_cast<unsigned long long>(stats.value().mutation_epoch),
            static_cast<unsigned long long>(adopted.document_count),
            static_cast<long long>(adopted.collection_length),
            static_cast<unsigned long long>(adopted.mutation_epoch)));
      }
    }
    // Same aggregation as ClusterIndex::Finalize(): integer sums over
    // one replica per shard, so the resulting global df relation is
    // identical to the in-process one whatever the shard order.
    new_collection_length += adopted.collection_length;
    new_shard_docs[i] = adopted.document_count;
    new_total_docs += adopted.document_count;
    new_cluster_epoch += adopted.mutation_epoch;
    for (const auto& [term, df] : adopted.term_dfs) {
      new_global_df[term] += df;
    }
  }
  // Phase 2: commit the new aggregates atomically with respect to the
  // readers — a query resolves against either the old or the new
  // handshake, never a mix.
  std::unique_lock<std::shared_mutex> lock(stats_mu_);
  global_df_ = std::move(new_global_df);
  collection_length_ = new_collection_length;
  shard_docs_ = std::move(new_shard_docs);
  total_docs_ = new_total_docs;
  cluster_epoch_ = new_cluster_epoch;
  norm_stem_ = new_stem;
  norm_stop_ = new_stop;
  return Status::Ok();
}

size_t RemoteClusterIndex::ShardForUrl(std::string_view url) const {
  // FNV-1a, 64-bit: stable across runs and processes, so a document's
  // insert and delete always route to the same shard.
  uint64_t h = 14695981039346656037ull;
  for (const char c : url) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % shards_.size());
}

Result<std::vector<uint8_t>> RemoteClusterIndex::MutateReplica(
    const Shard& replica, const std::vector<uint8_t>& frame) const {
  Result<std::vector<uint8_t>> response =
      Status::Unavailable("no attempts made");
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    Attempt a = ClassifyResponse(
        replica.transport->Call(frame, Deadline::After(options_.timeout_ms)));
    response = std::move(a.frame);
    if (response.ok()) break;
  }
  return response;
}

Result<uint64_t> RemoteClusterIndex::Insert(std::string_view url,
                                            std::string_view text) {
  const size_t shard = ShardForUrl(url);
  uint64_t doc_id = 0;
  uint64_t epoch = 0;
  const std::vector<Shard>& replicas = shards_[shard].replicas;
  for (size_t r = 0; r < replicas.size(); ++r) {
    InsertRequest request;
    request.node_id = replicas[r].node_id;
    request.url = std::string(url);
    request.text = std::string(text);
    DLS_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                         EncodeInsertRequest(request));
    DLS_ASSIGN_OR_RETURN(const std::vector<uint8_t> answer,
                         MutateReplica(replicas[r], frame));
    MessageType type;
    const uint8_t* body = nullptr;
    size_t body_len = 0;
    DLS_RETURN_IF_ERROR(DecodeFrame(answer, &type, &body, &body_len));
    if (type != MessageType::kInsertResponse) {
      return Status::Corruption("insert: unexpected frame type");
    }
    DLS_ASSIGN_OR_RETURN(const InsertResponse response,
                         DecodeInsertResponse(body, body_len));
    if (r == 0) {
      doc_id = response.doc_id;
      epoch = response.epoch;
    } else if (response.doc_id != doc_id || response.epoch != epoch) {
      return Status::Internal(StrFormat(
          "shard %zu replica %zu diverged on insert (id=%llu epoch=%llu vs "
          "id=%llu epoch=%llu); replicas no longer serve identical content",
          shard, r, static_cast<unsigned long long>(response.doc_id),
          static_cast<unsigned long long>(response.epoch),
          static_cast<unsigned long long>(doc_id),
          static_cast<unsigned long long>(epoch)));
    }
  }
  stats_dirty_.store(true, std::memory_order_release);
  return doc_id;
}

Result<bool> RemoteClusterIndex::Delete(std::string_view url) {
  const size_t shard = ShardForUrl(url);
  bool found = false;
  uint64_t epoch = 0;
  const std::vector<Shard>& replicas = shards_[shard].replicas;
  for (size_t r = 0; r < replicas.size(); ++r) {
    DeleteRequest request;
    request.node_id = replicas[r].node_id;
    request.url = std::string(url);
    DLS_ASSIGN_OR_RETURN(const std::vector<uint8_t> frame,
                         EncodeDeleteRequest(request));
    DLS_ASSIGN_OR_RETURN(const std::vector<uint8_t> answer,
                         MutateReplica(replicas[r], frame));
    MessageType type;
    const uint8_t* body = nullptr;
    size_t body_len = 0;
    DLS_RETURN_IF_ERROR(DecodeFrame(answer, &type, &body, &body_len));
    if (type != MessageType::kDeleteResponse) {
      return Status::Corruption("delete: unexpected frame type");
    }
    DLS_ASSIGN_OR_RETURN(const DeleteResponse response,
                         DecodeDeleteResponse(body, body_len));
    if (r == 0) {
      found = response.found;
      epoch = response.epoch;
    } else if (response.found != found || response.epoch != epoch) {
      return Status::Internal(StrFormat(
          "shard %zu replica %zu diverged on delete (found=%d epoch=%llu vs "
          "found=%d epoch=%llu); replicas no longer serve identical content",
          shard, r, response.found ? 1 : 0,
          static_cast<unsigned long long>(response.epoch), found ? 1 : 0,
          static_cast<unsigned long long>(epoch)));
    }
  }
  if (found) stats_dirty_.store(true, std::memory_order_release);
  return found;
}

Status RemoteClusterIndex::MergeAll() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::vector<Shard>& replicas = shards_[i].replicas;
    uint64_t epoch = 0;
    for (size_t r = 0; r < replicas.size(); ++r) {
      MergeRequest request;
      request.node_id = replicas[r].node_id;
      const std::vector<uint8_t> frame = EncodeMergeRequest(request);
      DLS_ASSIGN_OR_RETURN(const std::vector<uint8_t> answer,
                           MutateReplica(replicas[r], frame));
      MessageType type;
      const uint8_t* body = nullptr;
      size_t body_len = 0;
      DLS_RETURN_IF_ERROR(DecodeFrame(answer, &type, &body, &body_len));
      if (type != MessageType::kMergeResponse) {
        return Status::Corruption("merge: unexpected frame type");
      }
      DLS_ASSIGN_OR_RETURN(const MergeResponse response,
                           DecodeMergeResponse(body, body_len));
      if (r == 0) {
        epoch = response.epoch;
      } else if (response.epoch != epoch) {
        return Status::Internal(StrFormat(
            "shard %zu replica %zu diverged on merge (epoch=%llu vs %llu); "
            "replicas no longer serve identical content",
            i, r, static_cast<unsigned long long>(response.epoch),
            static_cast<unsigned long long>(epoch)));
      }
    }
  }
  stats_dirty_.store(true, std::memory_order_release);
  return Status::Ok();
}

ir::ShardQuery RemoteClusterIndex::ResolveQuery(
    const std::vector<std::string>& query_words, size_t n,
    size_t max_fragments, const ir::RankOptions& options,
    double* idf_mass_total) const {
  // Identical resolution to ClusterIndex::Query: normalise, drop
  // duplicates, keep only stems of the global vocabulary. The
  // stem/stop flags come from the Connect() handshake, so this is the
  // same pipeline node 0's index->NormalizeWord applies in-process —
  // whatever configuration the shards were built with.
  ir::ShardQuery request;
  request.collection_length = collection_length_;
  request.n = n;
  request.max_fragments = max_fragments;
  request.options = options;
  *idf_mass_total = 0;
  for (const std::string& word : query_words) {
    std::optional<std::string> norm =
        ir::NormalizeWordAs(word, norm_stem_, norm_stop_);
    if (!norm) continue;
    if (std::find(request.stems.begin(), request.stems.end(), *norm) !=
        request.stems.end()) {
      continue;
    }
    auto it = global_df_.find(*norm);
    if (it == global_df_.end()) continue;
    request.stems.push_back(*norm);
    request.stem_global_df.push_back(it->second);
    *idf_mass_total += 1.0 / static_cast<double>(it->second);
  }
  return request;
}

void RemoteClusterIndex::CallShard(size_t shard,
                                   const std::vector<ir::ShardQuery>& queries,
                                   ShardOutcome* outcome) const {
  const std::vector<Shard>& replicas = shards_[shard].replicas;
  // One encoded frame per replica — replicas may address the node
  // under different node ids on different servers, but replicas
  // sharing an id share the encoding.
  std::vector<std::shared_ptr<const std::vector<uint8_t>>> frames(
      replicas.size());
  std::unordered_map<uint32_t, std::shared_ptr<const std::vector<uint8_t>>>
      by_node;
  for (size_t r = 0; r < replicas.size(); ++r) {
    auto it = by_node.find(replicas[r].node_id);
    if (it == by_node.end()) {
      QueryRequest request;
      request.node_id = replicas[r].node_id;
      request.queries = queries;
      Result<std::vector<uint8_t>> encoded = EncodeQueryRequest(request);
      // A batch too large for one frame never reaches the wire; the
      // shard counts as lost (every shard fails identically, so the
      // query comes back empty with predicted_quality 0 rather than
      // half-shipped).
      if (!encoded.ok()) return;
      it = by_node
               .emplace(replicas[r].node_id,
                        std::make_shared<const std::vector<uint8_t>>(
                            std::move(encoded).value()))
               .first;
    }
    frames[r] = it->second;
  }
  ExchangeTelemetry telemetry;
  Result<std::vector<uint8_t>> frame =
      HedgedExchange(shard, frames, &telemetry);
  outcome->messages += telemetry.messages;
  outcome->bytes += telemetry.bytes;
  outcome->hedges_fired += telemetry.hedges_fired;
  outcome->hedge_wins += telemetry.hedge_wins;
  outcome->failovers += telemetry.failovers;
  if (!frame.ok()) return;  // shard lost: outcome stays !alive
  MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  if (!DecodeFrame(frame.value(), &type, &body, &body_len).ok()) return;
  if (type != MessageType::kQueryResponse) return;  // junk frame type
  Result<QueryResponse> response = DecodeQueryResponse(body, body_len);
  if (!response.ok()) return;
  // A response that doesn't answer the batch is as lost as no
  // response: partial merges would silently drop documents.
  if (response.value().results.size() != queries.size()) return;
  outcome->results = std::move(response.value().results);
  outcome->alive = true;
}

std::vector<RemoteClusterIndex::ShardOutcome> RemoteClusterIndex::FanOut(
    const std::vector<ir::ShardQuery>& queries) const {
  std::vector<ShardOutcome> outcomes(shards_.size());
  ForEachShard(
      [&](size_t i) { CallShard(i, queries, &outcomes[i]); });
  return outcomes;
}

/// The quality estimate multiplies the idf-mass a-priori estimate
/// (first responding shard's cut-off mask, as in-process uses node
/// 0's) by the surviving document share — losing a node loses its
/// share of the collection.
void RemoteClusterIndex::AggregateStats(
    const std::vector<ir::ShardQuery>& queries,
    const std::vector<double>& idf_mass_totals,
    const std::vector<ShardOutcome>& outcomes,
    ir::ClusterQueryStats* stats,
    std::vector<ir::ClusterQueryStats>* per_query) const {
  if (per_query != nullptr) {
    per_query->assign(queries.size(), ir::ClusterQueryStats());
  }
  uint64_t alive_docs = 0;
  const ShardOutcome* first_alive = nullptr;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ShardOutcome& o = outcomes[i];
    stats->messages += o.messages;
    stats->bytes_shipped += o.bytes;
    stats->hedges_fired += o.hedges_fired;
    stats->hedge_wins += o.hedge_wins;
    stats->failovers += o.failovers;
    if (!o.alive) continue;
    if (first_alive == nullptr) first_alive = &o;
    alive_docs += shard_docs_[i];
    double shard_elapsed = 0;
    for (size_t q = 0; q < o.results.size(); ++q) {
      const ir::ShardResult& r = o.results[q];
      stats->postings_touched_total += r.postings_touched;
      stats->postings_touched_max_node =
          std::max(stats->postings_touched_max_node,
                   static_cast<size_t>(r.postings_touched));
      stats->blocks_skipped += r.blocks_skipped;
      stats->blocks_decoded += r.blocks_decoded;
      stats->pivot_iterations += r.pivot_iterations;
      stats->cursor_advances += r.cursor_advances;
      shard_elapsed += r.elapsed_us;
      if (per_query != nullptr) {
        // Per-rider attribution: each query's own work counters and
        // its own critical path (slowest node *for this query*). Wire
        // traffic and routing events stay exchange-level — a batch
        // ships one frame, there is no per-rider share of it.
        ir::ClusterQueryStats& pq = (*per_query)[q];
        pq.postings_touched_total += r.postings_touched;
        pq.postings_touched_max_node =
            std::max(pq.postings_touched_max_node,
                     static_cast<size_t>(r.postings_touched));
        pq.blocks_skipped += r.blocks_skipped;
        pq.blocks_decoded += r.blocks_decoded;
        pq.pivot_iterations += r.pivot_iterations;
        pq.cursor_advances += r.cursor_advances;
        pq.critical_path_us = std::max(pq.critical_path_us, r.elapsed_us);
        pq.total_cpu_us += r.elapsed_us;
      }
    }
    stats->critical_path_us = std::max(stats->critical_path_us, shard_elapsed);
    stats->total_cpu_us += shard_elapsed;
  }

  const double alive_share =
      total_docs_ > 0
          ? static_cast<double>(alive_docs) / static_cast<double>(total_docs_)
          : 1.0;
  double idf_total = 0, idf_read = 0;
  for (size_t q = 0; q < queries.size(); ++q) {
    idf_total += idf_mass_totals[q];
    double idf_read_q = 0;
    if (first_alive != nullptr) {
      const std::vector<bool>& mask = first_alive->results[q].stem_evaluated;
      for (size_t s = 0; s < queries[q].stems.size(); ++s) {
        if (s < mask.size() && mask[s]) {
          idf_read_q += 1.0 / static_cast<double>(queries[q].stem_global_df[s]);
        }
      }
    }
    idf_read += idf_read_q;
    if (per_query != nullptr) {
      const double quality_q =
          idf_mass_totals[q] > 0 ? idf_read_q / idf_mass_totals[q] : 1.0;
      (*per_query)[q].predicted_quality = quality_q * alive_share;
    }
  }
  const double idf_quality = idf_total > 0 ? idf_read / idf_total : 1.0;
  stats->predicted_quality = idf_quality * alive_share;
}

std::vector<ir::ClusterScoredDoc> RemoteClusterIndex::Query(
    const std::vector<std::string>& query_words, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    const ir::RankOptions& options) const {
  assert(connected_ && "call Connect() before Query()");
  RefreshStatsIfStale();
  // Shared for the whole query: resolution and stats aggregation see
  // one handshake, never a mid-refresh mix.
  std::shared_lock<std::shared_mutex> stats_lock(stats_mu_);
  double idf_mass_total = 0;
  ir::ShardQuery base =
      ResolveQuery(query_words, n, max_fragments, options, &idf_mass_total);

  std::vector<ShardOutcome> outcomes;
  if (options.prune && n > 0 &&
      (executor_ == nullptr || shards_.size() <= 1)) {
    // Sequential threshold feedback, as in-process: push the running
    // global n-th best score to later shards. Exact either way — only
    // the work stats differ from the parallel fan-out.
    outcomes.resize(shards_.size());
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        best;
    ir::ShardQuery request = base;
    for (size_t i = 0; i < shards_.size(); ++i) {
      CallShard(i, {request}, &outcomes[i]);
      if (!outcomes[i].alive) continue;
      for (const ir::ClusterScoredDoc& d : outcomes[i].results[0].top) {
        if (best.size() < n) {
          best.push(d.score);
        } else if (d.score > best.top()) {
          best.pop();
          best.push(d.score);
        }
      }
      if (best.size() == n) request.threshold = best.top();
    }
  } else {
    outcomes = FanOut({base});
  }

  ir::ClusterQueryStats local_stats;
  AggregateStats({base}, {idf_mass_total}, outcomes, &local_stats,
                 /*per_query=*/nullptr);

  // Lost shards contribute an empty ShardResult — the merge just never
  // draws from them.
  std::vector<ir::ShardResult> responses(shards_.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].alive) responses[i] = std::move(outcomes[i].results[0]);
  }
  std::vector<ir::ClusterScoredDoc> merged =
      ir::MergeShardResults(&responses, n);
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

std::vector<std::vector<ir::ClusterScoredDoc>> RemoteClusterIndex::QueryBatch(
    const std::vector<std::vector<std::string>>& queries, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    const ir::RankOptions& options,
    std::vector<ir::ClusterQueryStats>* per_query_stats) const {
  assert(connected_ && "call Connect() before QueryBatch()");
  RefreshStatsIfStale();
  std::shared_lock<std::shared_mutex> stats_lock(stats_mu_);
  std::vector<ir::ShardQuery> requests;
  std::vector<double> idf_mass_totals;
  requests.reserve(queries.size());
  idf_mass_totals.reserve(queries.size());
  for (const std::vector<std::string>& words : queries) {
    double idf_mass_total = 0;
    requests.push_back(
        ResolveQuery(words, n, max_fragments, options, &idf_mass_total));
    idf_mass_totals.push_back(idf_mass_total);
  }

  std::vector<ShardOutcome> outcomes = FanOut(requests);

  ir::ClusterQueryStats local_stats;
  AggregateStats(requests, idf_mass_totals, outcomes, &local_stats,
                 per_query_stats);

  std::vector<std::vector<ir::ClusterScoredDoc>> merged;
  merged.reserve(queries.size());
  for (size_t q = 0; q < requests.size(); ++q) {
    std::vector<ir::ShardResult> responses(shards_.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].alive) {
        responses[i] = std::move(outcomes[i].results[q]);
      }
    }
    merged.push_back(ir::MergeShardResults(&responses, n));
  }
  if (stats != nullptr) *stats = local_stats;
  return merged;
}

}  // namespace dls::net
