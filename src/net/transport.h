#ifndef DLS_NET_TRANSPORT_H_
#define DLS_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace dls::net {

/// One request/response exchange with a shard endpoint.
///
/// The unit of transfer is a complete wire frame (net/wire.h, length
/// prefix included) in both directions, so frame byte counts — the
/// ClusterQueryStats.bytes_shipped measurement — are identical across
/// implementations. Call() blocks until the response frame arrives,
/// the deadline expires, or the peer fails; errors come back as a
/// Status (kDeadlineExceeded, kUnavailable, kCorruption), never as a
/// partial frame.
///
/// Implementations must tolerate concurrent Call()s from multiple
/// threads; they may serialise them internally (TcpTransport holds one
/// connection and does).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual Result<std::vector<uint8_t>> Call(
      const std::vector<uint8_t>& request_frame, Deadline deadline) = 0;
};

/// In-process transport: hands the request frame to a handler function
/// (typically ShardServer::HandleFrame) on the calling thread.
/// Deterministic — no sockets, no scheduling — which makes it the
/// reference endpoint for the bit-identity tests, and the fault hooks
/// below make it the harness for the failure-semantics tests:
///
///   FailCalls(k)        the next k calls return kUnavailable without
///                       reaching the handler (a dead peer);
///   DelayCalls(k, ms)   the next k calls stall ms before dispatching
///                       and return kDeadlineExceeded if that overruns
///                       the caller's deadline (a slow peer — the
///                       timeout+retry path);
///   ErrorFrameCalls(k)  the next k calls answer a well-formed
///                       kUnavailable Error *frame* without reaching
///                       the handler (a peer that is up but refusing —
///                       overloaded, draining, restarting);
///   TruncateCalls(k)    the next k calls dispatch but return only the
///                       first half of the response frame (a peer
///                       killed mid-frame);
///   SetLatency(ms)      every future call stalls ms before
///                       dispatching (a persistently slow peer — the
///                       hedging path; 0 clears it);
///   Kill()              every future call fails (a lost node).
///
/// Fault state is internally synchronised; concurrent Call()s are
/// safe.
class LoopbackTransport : public Transport {
 public:
  using Handler =
      std::function<Result<std::vector<uint8_t>>(const std::vector<uint8_t>&)>;

  explicit LoopbackTransport(Handler handler);

  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request_frame,
                                    Deadline deadline) override;

  void FailCalls(int count);
  void DelayCalls(int count, int millis);
  void ErrorFrameCalls(int count);
  void TruncateCalls(int count);
  void SetLatency(int millis);
  void Kill();

  /// Calls that reached the handler (retry accounting in tests).
  int dispatched_calls() const;

 private:
  Handler handler_;
  mutable std::mutex mu_;
  int fail_calls_ = 0;
  int delay_calls_ = 0;
  int delay_millis_ = 0;
  int error_frame_calls_ = 0;
  int truncate_calls_ = 0;
  int latency_millis_ = 0;
  bool killed_ = false;
  int dispatched_ = 0;
};

}  // namespace dls::net

#endif  // DLS_NET_TRANSPORT_H_
