#ifndef DLS_NET_TCP_H_
#define DLS_NET_TCP_H_

#include <sys/socket.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace dls::net {

/// Frame-level socket helpers shared by TcpTransport and ShardServer.
/// WriteAll/ReadFrame poll(2) a non-blocking fd and honour the
/// deadline — the fd MUST be non-blocking (SetNonBlocking below), or
/// recv/send block past the deadline and never reach the poll path; a
/// peer that closes mid-frame or a garbage length prefix surfaces as
/// a clean Status. ReadFrame returns the complete frame (length
/// prefix included), ready for wire.h's DecodeFrame.
Status SetNonBlocking(int fd);
Status WriteAll(int fd, const uint8_t* data, size_t len, Deadline deadline);
Result<std::vector<uint8_t>> ReadFrame(int fd, Deadline deadline);

/// A Transport over one TCP connection to a ShardServer.
///
/// Connects lazily on the first Call() — non-blocking connect(2)
/// raced against the call's deadline — and keeps the connection for
/// subsequent calls; any error (timeout, reset, malformed frame)
/// closes the socket so the next call reconnects, which is what makes
/// the client's one-retry policy meaningful. TCP_NODELAY is set: the
/// protocol is strict request/response, and Nagle+delayed-ACK would
/// add ~40 ms to every query.
///
/// Concurrent Call()s serialise on an internal mutex (one in-flight
/// exchange per connection keeps framing trivial); fan-out
/// parallelism comes from one TcpTransport per shard, not from
/// pipelining one socket.
///
/// Name resolution: the host is resolved with a blocking getaddrinfo
/// on the first connect only — that one call is NOT bounded by the
/// deadline (there is no portable timed resolver) — and the resolved
/// addresses are cached for the transport's lifetime, so reconnects
/// and retries never re-enter the resolver while holding the call
/// mutex. A shard's address changing requires a new TcpTransport.
class TcpTransport : public Transport {
 public:
  /// Does not connect; host is resolved with getaddrinfo on first use.
  TcpTransport(std::string host, uint16_t port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request_frame,
                                    Deadline deadline) override;

 private:
  Status EnsureConnected(Deadline deadline);
  Status ResolveLocked();
  void CloseLocked();

  const std::string host_;
  const uint16_t port_;
  std::mutex mu_;
  int fd_ = -1;
  /// Cached getaddrinfo results (family-tagged sockaddrs), filled by
  /// the first successful resolution.
  std::vector<std::pair<struct sockaddr_storage, socklen_t>> resolved_;
};

}  // namespace dls::net

#endif  // DLS_NET_TCP_H_
