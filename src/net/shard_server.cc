#include "net/shard_server.h"

#include "common/strings.h"
#include "ir/fragments.h"
#include "ir/index.h"
#include "net/wire.h"

namespace dls::net {

ShardServer::ShardServer(size_t num_workers) : FrameServer(num_workers) {}

ShardServer::~ShardServer() { Stop(); }

uint32_t ShardServer::AddNode(const ir::TextIndex* index,
                              const ir::FragmentedIndex* fragments) {
  nodes_.push_back(Node{index, fragments});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Result<uint32_t> ShardServer::AddNodeFromSegment(
    const std::string& path, size_t num_fragments,
    const ir::SegmentLoadOptions& load_options) {
  DLS_ASSIGN_OR_RETURN(std::unique_ptr<ir::TextIndex> index,
                       ir::TextIndex::LoadFromSegment(path, load_options));
  auto fragments =
      std::make_unique<ir::FragmentedIndex>(index.get(), num_fragments);
  const uint32_t id = AddNode(index.get(), fragments.get());
  owned_indexes_.push_back(std::move(index));
  owned_fragments_.push_back(std::move(fragments));
  return id;
}

Result<std::vector<uint8_t>> ShardServer::HandleFrame(
    const std::vector<uint8_t>& frame) const {
  MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Status status = DecodeFrame(frame, &type, &body, &body_len);
  if (!status.ok()) return EncodeError(status);

  switch (type) {
    case MessageType::kQueryRequest: {
      Result<QueryRequest> request = DecodeQueryRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      const QueryRequest& req = request.value();
      if (req.node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", req.node_id)));
      }
      const Node& node = nodes_[req.node_id];
      QueryResponse response;
      response.node_id = req.node_id;
      response.results.reserve(req.queries.size());
      for (const ir::ShardQuery& query : req.queries) {
        response.results.push_back(
            ir::EvaluateShardQuery(*node.index, *node.fragments, query));
        const ir::ShardResult& r = response.results.back();
        node.work->postings_touched.fetch_add(r.postings_touched,
                                              std::memory_order_relaxed);
        node.work->blocks_skipped.fetch_add(r.blocks_skipped,
                                            std::memory_order_relaxed);
        node.work->blocks_decoded.fetch_add(r.blocks_decoded,
                                            std::memory_order_relaxed);
        node.work->pivot_iterations.fetch_add(r.pivot_iterations,
                                              std::memory_order_relaxed);
        node.work->cursor_advances.fetch_add(r.cursor_advances,
                                             std::memory_order_relaxed);
      }
      Result<std::vector<uint8_t>> encoded = EncodeQueryResponse(response);
      if (!encoded.ok()) return EncodeError(encoded.status());
      return encoded;
    }
    case MessageType::kStatsRequest: {
      Result<StatsRequest> request = DecodeStatsRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      if (request.value().node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", request.value().node_id)));
      }
      const ir::TextIndex& index = *nodes_[request.value().node_id].index;
      StatsResponse response;
      response.node_id = request.value().node_id;
      response.stem = index.options().stem;
      response.stop = index.options().stop;
      response.collection_length = index.collection_length();
      response.document_count = index.flushed_document_count();
      response.mutation_epoch = index.mutation_epoch();
      const Node::WorkCounters& work =
          *nodes_[request.value().node_id].work;
      response.postings_touched =
          work.postings_touched.load(std::memory_order_relaxed);
      response.blocks_skipped =
          work.blocks_skipped.load(std::memory_order_relaxed);
      response.blocks_decoded =
          work.blocks_decoded.load(std::memory_order_relaxed);
      response.pivot_iterations =
          work.pivot_iterations.load(std::memory_order_relaxed);
      response.cursor_advances =
          work.cursor_advances.load(std::memory_order_relaxed);
      response.term_dfs.reserve(index.vocabulary_size());
      for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
        response.term_dfs.emplace_back(index.term(t), index.df(t));
      }
      // A vocabulary too large for one frame is a clear protocol-level
      // error (the encoder names the cap), not "corruption" at the
      // client.
      Result<std::vector<uint8_t>> encoded = EncodeStatsResponse(response);
      if (!encoded.ok()) return EncodeError(encoded.status());
      return encoded;
    }
    case MessageType::kSearchRequest:
    case MessageType::kServeStatsRequest:
      // Serving-frontend messages (src/serve). A shard never answers
      // them — clients must speak ShardQuery to shards and
      // SearchRequest to a FrontendServer.
      return EncodeError(Status::Unsupported(
          "shard server does not serve frontend frames; connect to a "
          "FrontendServer"));
    case MessageType::kQueryResponse:
    case MessageType::kStatsResponse:
    case MessageType::kSearchResponse:
    case MessageType::kServeStatsResponse:
    case MessageType::kError:
      return EncodeError(
          Status::InvalidArgument("server received a response-type frame"));
  }
  return EncodeError(Status::Internal("unreachable message type"));
}

}  // namespace dls::net
