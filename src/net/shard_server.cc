#include "net/shard_server.h"

#include <algorithm>

#include "common/strings.h"
#include "ir/fragments.h"
#include "ir/index.h"
#include "net/wire.h"

namespace dls::net {

ShardServer::ShardServer(size_t num_workers) : FrameServer(num_workers) {}

ShardServer::~ShardServer() { Stop(); }

uint32_t ShardServer::AddNode(const ir::TextIndex* index,
                              const ir::FragmentedIndex* fragments) {
  nodes_.push_back(Node{index, fragments});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Result<uint32_t> ShardServer::AddNodeFromSegment(
    const std::string& path, size_t num_fragments,
    const ir::SegmentLoadOptions& load_options) {
  DLS_ASSIGN_OR_RETURN(std::unique_ptr<ir::TextIndex> index,
                       ir::TextIndex::LoadFromSegment(path, load_options));
  auto fragments =
      std::make_unique<ir::FragmentedIndex>(index.get(), num_fragments);
  const uint32_t id = AddNode(index.get(), fragments.get());
  owned_indexes_.push_back(std::move(index));
  owned_fragments_.push_back(std::move(fragments));
  return id;
}

uint32_t ShardServer::AddLiveNode(ingest::LiveIndex* live) {
  Node node{nullptr, nullptr};
  node.live = live;
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Result<std::vector<uint8_t>> ShardServer::HandleFrame(
    const std::vector<uint8_t>& frame) const {
  MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Status status = DecodeFrame(frame, &type, &body, &body_len);
  if (!status.ok()) return EncodeError(status);

  switch (type) {
    case MessageType::kQueryRequest: {
      Result<QueryRequest> request = DecodeQueryRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      const QueryRequest& req = request.value();
      if (req.node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", req.node_id)));
      }
      const Node& node = nodes_[req.node_id];
      QueryResponse response;
      response.node_id = req.node_id;
      response.results.reserve(req.queries.size());
      // A live node pins one snapshot for the whole batch, so every
      // rider sees the same epoch.
      std::shared_ptr<const ingest::LiveIndex::Snapshot> snapshot;
      if (node.live != nullptr) snapshot = node.live->Pin();
      for (const ir::ShardQuery& query : req.queries) {
        response.results.push_back(
            snapshot != nullptr
                ? ingest::EvaluateLiveShardQuery(*snapshot, query)
                : ir::EvaluateShardQuery(*node.index, *node.fragments,
                                         query));
        const ir::ShardResult& r = response.results.back();
        node.work->postings_touched.fetch_add(r.postings_touched,
                                              std::memory_order_relaxed);
        node.work->blocks_skipped.fetch_add(r.blocks_skipped,
                                            std::memory_order_relaxed);
        node.work->blocks_decoded.fetch_add(r.blocks_decoded,
                                            std::memory_order_relaxed);
        node.work->pivot_iterations.fetch_add(r.pivot_iterations,
                                              std::memory_order_relaxed);
        node.work->cursor_advances.fetch_add(r.cursor_advances,
                                             std::memory_order_relaxed);
      }
      Result<std::vector<uint8_t>> encoded = EncodeQueryResponse(response);
      if (!encoded.ok()) return EncodeError(encoded.status());
      return encoded;
    }
    case MessageType::kStatsRequest: {
      Result<StatsRequest> request = DecodeStatsRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      if (request.value().node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", request.value().node_id)));
      }
      const Node& node = nodes_[request.value().node_id];
      StatsResponse response;
      response.node_id = request.value().node_id;
      if (node.live != nullptr) {
        // One pinned snapshot answers the whole handshake, so document
        // count, collection length, epoch and the df table are all
        // consistent at one epoch even while mutations land.
        std::shared_ptr<const ingest::LiveIndex::Snapshot> snapshot =
            node.live->Pin();
        response.stem = node.live->options().node.stem;
        response.stop = node.live->options().node.stop;
        response.collection_length = snapshot->collection_length();
        response.document_count = snapshot->live_docs();
        response.mutation_epoch = snapshot->epoch();
        std::unordered_map<std::string, int32_t> dfs =
            snapshot->EffectiveDfTable();
        response.term_dfs.reserve(dfs.size());
        for (auto& [term, df] : dfs) {
          response.term_dfs.emplace_back(term, df);
        }
        // The client only sums dfs, but a deterministic frame makes
        // byte-level accounting reproducible across runs.
        std::sort(response.term_dfs.begin(), response.term_dfs.end());
        Result<std::vector<uint8_t>> encoded = EncodeStatsResponse(response);
        if (!encoded.ok()) return EncodeError(encoded.status());
        return encoded;
      }
      const ir::TextIndex& index = *node.index;
      response.stem = index.options().stem;
      response.stop = index.options().stop;
      response.collection_length = index.collection_length();
      response.document_count = index.flushed_document_count();
      response.mutation_epoch = index.mutation_epoch();
      const Node::WorkCounters& work = *node.work;
      response.postings_touched =
          work.postings_touched.load(std::memory_order_relaxed);
      response.blocks_skipped =
          work.blocks_skipped.load(std::memory_order_relaxed);
      response.blocks_decoded =
          work.blocks_decoded.load(std::memory_order_relaxed);
      response.pivot_iterations =
          work.pivot_iterations.load(std::memory_order_relaxed);
      response.cursor_advances =
          work.cursor_advances.load(std::memory_order_relaxed);
      response.term_dfs.reserve(index.vocabulary_size());
      for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
        response.term_dfs.emplace_back(index.term(t), index.df(t));
      }
      // A vocabulary too large for one frame is a clear protocol-level
      // error (the encoder names the cap), not "corruption" at the
      // client.
      Result<std::vector<uint8_t>> encoded = EncodeStatsResponse(response);
      if (!encoded.ok()) return EncodeError(encoded.status());
      return encoded;
    }
    case MessageType::kInsertRequest: {
      Result<InsertRequest> request = DecodeInsertRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      const InsertRequest& req = request.value();
      if (req.node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", req.node_id)));
      }
      ingest::LiveIndex* live = nodes_[req.node_id].live;
      if (live == nullptr) {
        return EncodeError(Status::Unsupported(
            StrFormat("node %u is frozen; mutations need a live node",
                      req.node_id)));
      }
      Result<uint64_t> id = live->Insert(req.url, req.text);
      if (!id.ok()) return EncodeError(id.status());
      InsertResponse response;
      response.node_id = req.node_id;
      response.doc_id = id.value();
      response.epoch = live->epoch();
      return EncodeInsertResponse(response);
    }
    case MessageType::kDeleteRequest: {
      Result<DeleteRequest> request = DecodeDeleteRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      const DeleteRequest& req = request.value();
      if (req.node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", req.node_id)));
      }
      ingest::LiveIndex* live = nodes_[req.node_id].live;
      if (live == nullptr) {
        return EncodeError(Status::Unsupported(
            StrFormat("node %u is frozen; mutations need a live node",
                      req.node_id)));
      }
      DeleteResponse response;
      response.node_id = req.node_id;
      response.found = live->Delete(req.url);
      response.epoch = live->epoch();
      return EncodeDeleteResponse(response);
    }
    case MessageType::kMergeRequest: {
      Result<MergeRequest> request = DecodeMergeRequest(body, body_len);
      if (!request.ok()) return EncodeError(request.status());
      const MergeRequest& req = request.value();
      if (req.node_id >= nodes_.size()) {
        return EncodeError(Status::NotFound(
            StrFormat("no node %u on this server", req.node_id)));
      }
      ingest::LiveIndex* live = nodes_[req.node_id].live;
      if (live == nullptr) {
        return EncodeError(Status::Unsupported(
            StrFormat("node %u is frozen; mutations need a live node",
                      req.node_id)));
      }
      live->Merge();
      MergeResponse response;
      response.node_id = req.node_id;
      response.epoch = live->epoch();
      response.merges = live->merges();
      return EncodeMergeResponse(response);
    }
    case MessageType::kSearchRequest:
    case MessageType::kServeStatsRequest:
      // Serving-frontend messages (src/serve). A shard never answers
      // them — clients must speak ShardQuery to shards and
      // SearchRequest to a FrontendServer.
      return EncodeError(Status::Unsupported(
          "shard server does not serve frontend frames; connect to a "
          "FrontendServer"));
    case MessageType::kQueryResponse:
    case MessageType::kStatsResponse:
    case MessageType::kSearchResponse:
    case MessageType::kServeStatsResponse:
    case MessageType::kInsertResponse:
    case MessageType::kDeleteResponse:
    case MessageType::kMergeResponse:
    case MessageType::kError:
      return EncodeError(
          Status::InvalidArgument("server received a response-type frame"));
  }
  return EncodeError(Status::Internal("unreachable message type"));
}

}  // namespace dls::net
