#ifndef DLS_NET_REMOTE_CLUSTER_H_
#define DLS_NET_REMOTE_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ir/cluster.h"
#include "ir/index.h"
#include "net/transport.h"

namespace dls {
class ThreadPool;
}  // namespace dls

namespace dls::net {

/// The central server of the distributed index, speaking the shard RPC
/// protocol: the out-of-process mirror of ir::ClusterIndex::Query.
///
/// Each shard is a (Transport, node_id) address — one TcpTransport per
/// remote process, or LoopbackTransports onto an in-process
/// ShardServer for deterministic tests. Connect() runs the stats
/// handshake and aggregates every node's (term, df) table into the
/// global vocabulary, after which Query() resolves, fans out, and
/// k-way merges exactly like the in-process path — both sides share
/// ir::EvaluateShardQuery and ir::MergeShardResults, and the wire
/// round-trips scores bit-exactly, so a healthy cluster returns
/// bit-identical rankings remote and in-process
/// (tests/net/remote_cluster_test.cc holds it to that).
///
/// Failure semantics: every per-shard call gets Options::timeout_ms,
/// a failed call is retried Options::retries times (a fresh attempt
/// reconnects a poisoned TcpTransport connection), and a shard still
/// failing after that is dropped from the query: the merge proceeds
/// over the surviving nodes and ClusterQueryStats.predicted_quality
/// is scaled by the surviving document share — graceful degradation
/// instead of a failed query. Shard document counts come from the
/// Connect() handshake.
///
/// ClusterQueryStats.messages / bytes_shipped report the *actual
/// encoded frames*: one message and its byte size per request frame
/// handed to a transport (retries included) and per response frame
/// received — identical accounting on loopback and TCP.
///
/// Thread-safety: after Connect(), concurrent Query()/QueryBatch()
/// calls are safe (transports serialise internally; result slots are
/// per-shard and per-call).
class RemoteClusterIndex {
 public:
  /// One remote node: which transport to dial and which node id it is
  /// on its server (a ShardServer can host several). Transports are
  /// non-owning.
  struct Shard {
    Transport* transport = nullptr;
    uint32_t node_id = 0;
  };

  struct Options {
    int timeout_ms = 1000;  ///< per-call deadline (each attempt)
    int retries = 1;        ///< extra attempts after a failed call
  };

  explicit RemoteClusterIndex(std::vector<Shard> shards);
  RemoteClusterIndex(std::vector<Shard> shards, Options options);
  ~RemoteClusterIndex();

  /// Stats handshake: fetches every shard's local statistics and
  /// aggregates the global df table, collection length and per-shard
  /// document counts. Also adopts the shards' advertised normalisation
  /// configuration (stem/stop) for query resolution, and fails with
  /// kInvalidArgument if the shards disagree among themselves — a
  /// mixed-pipeline cluster would silently resolve different stems
  /// than its nodes indexed. Fails if any shard is unreachable — a
  /// cluster that starts degraded is a deployment error, unlike one
  /// that degrades under load.
  Status Connect();

  /// Uses `pool` (non-owning, may be nullptr for sequential) to fan
  /// out per-shard calls.
  void SetExecutor(ThreadPool* pool);

  /// Creates and owns an internal pool of `num_threads` workers and
  /// uses it as the executor.
  void EnableParallelism(size_t num_threads);

  size_t num_shards() const { return shards_.size(); }
  uint64_t document_count() const { return total_docs_; }
  int64_t global_collection_length() const { return collection_length_; }
  /// Cluster-wide mutation epoch: the sum of every shard's
  /// mutation_epoch() at Connect() time — the remote mirror of
  /// ClusterIndex::mutation_epoch(), and the serving layer's cache
  /// invalidation key. A reindexed shard is observed by re-running
  /// Connect().
  uint64_t cluster_epoch() const { return cluster_epoch_; }
  /// Normalisation pipeline adopted from the handshake; the serving
  /// layer normalises cache keys through the identical pipeline.
  bool norm_stem() const { return norm_stem_; }
  bool norm_stop() const { return norm_stop_; }
  /// Collection-wide df of a stem (0 when absent). Valid after
  /// Connect().
  int32_t global_df(std::string_view stem) const;

  /// Distributed top-N with per-node fragment cut-off; mirrors
  /// ClusterIndex::Query (same arguments, same semantics, same
  /// deterministic merge order).
  std::vector<ir::ClusterScoredDoc> Query(
      const std::vector<std::string>& query_words, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats = nullptr,
      const ir::RankOptions& options = {}) const;

  /// Batched execution: ships the whole batch in ONE request frame per
  /// shard and gets one response frame back, amortising a round-trip
  /// per node per query down to one per node. Results are per query,
  /// in input order, each identical to what Query() on that query
  /// returns; `stats`, when given, aggregates over the batch.
  std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats = nullptr,
      const ir::RankOptions& options = {}) const;

 private:
  /// Per-shard outcome of one fan-out, with measured wire traffic.
  struct ShardOutcome {
    std::vector<ir::ShardResult> results;  // one per query in the batch
    bool alive = false;
    size_t messages = 0;
    size_t bytes = 0;
  };

  /// Builds the resolved base request: normalised, de-duplicated stems
  /// with global dfs. Returns the query's total idf mass through
  /// `idf_mass_total`.
  ir::ShardQuery ResolveQuery(const std::vector<std::string>& query_words,
                              size_t n, size_t max_fragments,
                              const ir::RankOptions& options,
                              double* idf_mass_total) const;

  /// One shard call with deadline + retries; fills outcome->messages /
  /// bytes with the frames actually exchanged.
  void CallShard(size_t shard, const std::vector<ir::ShardQuery>& queries,
                 ShardOutcome* outcome) const;

  /// Runs fn(i) for every shard, over the executor when attached.
  void ForEachShard(const std::function<void(size_t)>& fn) const;

  /// Fans the (possibly batched) request out to every shard.
  std::vector<ShardOutcome> FanOut(
      const std::vector<ir::ShardQuery>& queries) const;

  /// Folds per-shard outcomes into the E4 stats struct; shared by
  /// Query and QueryBatch.
  void AggregateStats(const std::vector<ir::ShardQuery>& queries,
                      const std::vector<double>& idf_mass_totals,
                      const std::vector<ShardOutcome>& outcomes,
                      ir::ClusterQueryStats* stats) const;

  std::vector<Shard> shards_;
  Options options_;
  std::unordered_map<std::string, int32_t, ir::TransparentStringHash,
                     std::equal_to<>>
      global_df_;
  int64_t collection_length_ = 0;
  std::vector<uint64_t> shard_docs_;
  uint64_t total_docs_ = 0;
  uint64_t cluster_epoch_ = 0;
  /// Normalisation pipeline the shards advertised in the handshake;
  /// ResolveQuery must match it or recall silently breaks.
  bool norm_stem_ = true;
  bool norm_stop_ = true;
  bool connected_ = false;
  ThreadPool* executor_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
};

}  // namespace dls::net

#endif  // DLS_NET_REMOTE_CLUSTER_H_
