#ifndef DLS_NET_REMOTE_CLUSTER_H_
#define DLS_NET_REMOTE_CLUSTER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "ir/cluster.h"
#include "ir/index.h"
#include "net/transport.h"

namespace dls {
class ThreadPool;
}  // namespace dls

namespace dls::net {

/// The central server of the distributed index, speaking the shard RPC
/// protocol: the out-of-process mirror of ir::ClusterIndex::Query.
///
/// Each shard is a *replica set*: one or more (Transport, node_id)
/// addresses serving byte-identical copies of the same node — one
/// TcpTransport per remote process, or LoopbackTransports onto an
/// in-process ShardServer for deterministic tests. Connect() runs the
/// stats handshake against every replica (all must be reachable and
/// agree — a cluster that *starts* degraded or inconsistent is a
/// deployment error) and aggregates every shard's (term, df) table
/// into the global vocabulary, after which Query() resolves, fans out,
/// and k-way merges exactly like the in-process path — both sides
/// share ir::EvaluateShardQuery and ir::MergeShardResults, and the
/// wire round-trips scores bit-exactly, so a healthy cluster returns
/// bit-identical rankings remote and in-process
/// (tests/net/remote_cluster_test.cc holds it to that).
///
/// Replica routing: every shard call walks the shard's replicas in
/// health order — ascending EWMA latency, penalised by EWMA error rate
/// — and the whole walk repeats Options::retries extra times, so a
/// single-replica shard degenerates to the old timeout+retry loop. A
/// failed attempt (transport error, undecodable frame, or an Error
/// frame from the peer) *fails over* to the next replica in the walk.
/// Because rankings are bit-identical across replicas, failover and
/// hedging cannot change an answer — only whether one arrives, and how
/// fast.
///
/// Hedging: once a shard's latency window is primed, an attempt that
/// outlives the rolling p95 budget fires the next replica in the walk
/// without cancelling the first; the first well-formed answer wins and
/// the loser is ignored (its late completion only updates replica
/// health). At most two attempts are in flight per call. The
/// destructor waits for stray losers, so no call outlives the index.
///
/// Failure semantics: every attempt gets Options::timeout_ms (a fresh
/// attempt reconnects a poisoned TcpTransport connection), and a shard
/// whose walk is exhausted is dropped from the query: the merge
/// proceeds over the surviving nodes and
/// ClusterQueryStats.predicted_quality is scaled by the surviving
/// document share — graceful degradation instead of a failed query.
/// Shard document counts come from the Connect() handshake.
///
/// ClusterQueryStats.messages / bytes_shipped report the *actual
/// encoded frames*: one message and its byte size per request frame
/// handed to a transport (retries and hedges included) and per
/// response frame received — identical accounting on loopback and TCP.
/// A hedge loser's response that lands after the winner was taken is
/// not counted (nobody read it).
///
/// Thread-safety: after Connect(), concurrent Query()/QueryBatch()
/// calls are safe (transports serialise internally; result slots are
/// per-shard and per-call; health state is internally locked).
class RemoteClusterIndex {
 public:
  /// One remote replica: which transport to dial and which node id it
  /// is on its server (a ShardServer can host several). Transports are
  /// non-owning.
  struct Shard {
    Transport* transport = nullptr;
    uint32_t node_id = 0;
  };

  /// One shard's replica set. Every replica must serve the same frozen
  /// node content (same documents, same index options) — that is what
  /// makes failover and hedging exactness-safe; Connect() cross-checks
  /// the replicas' advertised statistics against each other.
  struct ReplicaSet {
    std::vector<Shard> replicas;
  };

  struct Options {
    int timeout_ms = 1000;  ///< per-attempt deadline
    /// Extra passes over the health-ordered replica walk after the
    /// first all fails; with one replica this is exactly the old
    /// per-shard retry count.
    int retries = 1;

    // ---- hedging ---------------------------------------------------
    /// Master switch for tail-latency hedging (failover is always on).
    bool hedge = true;
    /// The budget tracks this quantile of the shard's rolling window
    /// of successful call latencies.
    double hedge_quantile = 0.95;
    /// Window samples required before the rolling budget arms — until
    /// then nothing hedges, keeping cold-start behaviour (and the
    /// message accounting of deterministic tests) identical to the
    /// pre-replica code.
    size_t hedge_min_samples = 32;
    /// The budget never drops below this, so micro-benchmark-fast
    /// shards don't hedge on scheduler noise.
    int64_t hedge_budget_floor_us = 200;
    /// Fixed budget override in µs (0 = rolling p95). Tests use this
    /// to make hedges fire deterministically without priming.
    int64_t hedge_budget_us = 0;

    // ---- health model ----------------------------------------------
    /// EWMA smoothing for per-replica latency and error rate.
    double ewma_alpha = 0.2;
  };

  /// Cumulative routing counters since construction (relaxed reads —
  /// monitoring, not synchronisation).
  struct ReplicaCounters {
    uint64_t hedges_fired = 0;   ///< attempts launched past the budget
    uint64_t hedge_wins = 0;     ///< hedged attempts that answered first
    uint64_t failovers = 0;      ///< failures moved to another replica
    uint64_t replica_errors = 0; ///< failed attempts, all causes
  };

  /// Single-replica convenience: each Shard becomes a one-replica set.
  explicit RemoteClusterIndex(std::vector<Shard> shards);
  RemoteClusterIndex(std::vector<Shard> shards, Options options);
  RemoteClusterIndex(std::vector<ReplicaSet> shards, Options options);
  /// Waits for in-flight hedge losers before tearing down.
  ~RemoteClusterIndex();

  /// Stats handshake: fetches every replica's local statistics,
  /// aggregates the global df table, collection length and per-shard
  /// document counts, and holds each shard's replicas to identical
  /// document counts / collection lengths / epochs. Also adopts the
  /// shards' advertised normalisation configuration (stem/stop) for
  /// query resolution, and fails with kInvalidArgument if the shards
  /// disagree among themselves — a mixed-pipeline cluster would
  /// silently resolve different stems than its nodes indexed. Fails if
  /// any replica is unreachable — a cluster that starts degraded is a
  /// deployment error, unlike one that degrades under load.
  Status Connect();

  /// Uses `pool` (non-owning, may be nullptr for sequential) to fan
  /// out per-shard calls.
  void SetExecutor(ThreadPool* pool);

  /// Creates and owns an internal pool of `num_threads` workers and
  /// uses it as the executor.
  void EnableParallelism(size_t num_threads);

  size_t num_shards() const { return shards_.size(); }
  size_t num_replicas(size_t shard) const {
    return shards_[shard].replicas.size();
  }
  uint64_t document_count() const {
    std::shared_lock<std::shared_mutex> lock(stats_mu_);
    return total_docs_;
  }
  int64_t global_collection_length() const {
    std::shared_lock<std::shared_mutex> lock(stats_mu_);
    return collection_length_;
  }
  /// Cluster-wide mutation epoch: the sum of every shard's
  /// mutation_epoch() at handshake time — the remote mirror of
  /// ClusterIndex::mutation_epoch(), and the serving layer's cache
  /// invalidation key. A reindexed or mutated shard is observed by
  /// re-running Connect() (or automatically by the first query after
  /// a routed mutation staled the statistics).
  uint64_t cluster_epoch() const {
    std::shared_lock<std::shared_mutex> lock(stats_mu_);
    return cluster_epoch_;
  }
  /// Normalisation pipeline adopted from the handshake; the serving
  /// layer normalises cache keys through the identical pipeline.
  bool norm_stem() const {
    std::shared_lock<std::shared_mutex> lock(stats_mu_);
    return norm_stem_;
  }
  bool norm_stop() const {
    std::shared_lock<std::shared_mutex> lock(stats_mu_);
    return norm_stop_;
  }
  /// Collection-wide df of a stem (0 when absent). Valid after
  /// Connect().
  int32_t global_df(std::string_view stem) const;

  ReplicaCounters replica_counters() const;

  // ---- live ingestion routing ---------------------------------------
  // When the shards host live nodes (ShardServer::AddLiveNode), the
  // centre routes mutations to the shard that owns the url — a stable
  // FNV-1a hash of the url modulo the shard count, so a document's
  // insert and delete always land on the same node — and applies each
  // mutation on EVERY replica of that shard, holding their returned
  // epochs (and assigned ids) to agreement: replicas stay bit-identical
  // copies, which is what keeps failover and hedging exactness-safe.
  // Mutations are never hedged or failed over (they are not idempotent;
  // a replica that cannot be reached leaves the set diverged and the
  // call reports it). Any successful mutation marks the cached global
  // statistics stale; the next Query()/QueryBatch() re-runs the stats
  // handshake before resolving, so a quiesced query is bit-identical to
  // a from-scratch rebuild at the cluster's current epoch.

  /// The shard owning `url` under the mutation routing hash.
  size_t ShardForUrl(std::string_view url) const;

  /// Inserts (url, text) on every replica of the owning shard; returns
  /// the assigned global document id (identical across replicas).
  Result<uint64_t> Insert(std::string_view url, std::string_view text);

  /// Tombstones the live document named `url` on every replica of the
  /// owning shard. Returns whether a live document was found.
  Result<bool> Delete(std::string_view url);

  /// Asks every replica of every shard to pack its delta tier into a
  /// frozen run. Queries keep serving off pinned snapshots throughout.
  Status MergeAll();

  /// True when a mutation has staled the cached global statistics and
  /// the next query will re-run the stats handshake first.
  bool stats_stale() const {
    return stats_dirty_.load(std::memory_order_acquire);
  }

  /// Distributed top-N with per-node fragment cut-off; mirrors
  /// ClusterIndex::Query (same arguments, same semantics, same
  /// deterministic merge order).
  std::vector<ir::ClusterScoredDoc> Query(
      const std::vector<std::string>& query_words, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats = nullptr,
      const ir::RankOptions& options = {}) const;

  /// Batched execution: ships the whole batch in ONE request frame per
  /// shard and gets one response frame back, amortising a round-trip
  /// per node per query down to one per node. Results are per query,
  /// in input order, each identical to what Query() on that query
  /// returns; `stats`, when given, aggregates over the batch, and
  /// `per_query_stats`, when given, is filled with one entry per query
  /// attributing that rider's own work, latency and quality (wire
  /// traffic and routing events are exchange-level and stay in the
  /// aggregate).
  std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats = nullptr,
      const ir::RankOptions& options = {},
      std::vector<ir::ClusterQueryStats>* per_query_stats = nullptr) const;

 private:
  /// Per-shard outcome of one fan-out, with measured wire traffic and
  /// routing events.
  struct ShardOutcome {
    std::vector<ir::ShardResult> results;  // one per query in the batch
    bool alive = false;
    size_t messages = 0;
    size_t bytes = 0;
    size_t hedges_fired = 0;
    size_t hedge_wins = 0;
    size_t failovers = 0;
  };

  /// Wire/routing accounting of one exchange (Connect and CallShard
  /// fold it into their own books).
  struct ExchangeTelemetry {
    size_t messages = 0;
    size_t bytes = 0;
    size_t hedges_fired = 0;
    size_t hedge_wins = 0;
    size_t failovers = 0;
  };

  /// Per-replica health, EWMA-smoothed; guarded by ShardState::mu.
  struct ReplicaHealth {
    double ewma_latency_us = 0;  ///< successful-call latency (0 = none yet)
    double ewma_error = 0;       ///< failure indicator in [0, 1]
    uint64_t samples = 0;
  };

  /// Mutable routing state of one shard.
  struct ShardState {
    mutable std::mutex mu;
    std::vector<ReplicaHealth> health;
    /// Rolling window of end-to-end successful exchange latencies (the
    /// winner's time, so hedges keep the budget honest instead of a
    /// slow replica inflating it); source of the hedge budget.
    std::array<uint32_t, 64> window_us{};
    size_t window_count = 0;
    size_t window_next = 0;
  };

  /// Completion channel between a caller and its async attempts.
  struct HedgedCall;

  /// The stats handshake body; writes the (mutable) aggregate fields
  /// under a unique stats_mu_ lock, so it is safe against concurrent
  /// queries reading them under shared locks.
  Status ConnectInternal() const;

  /// Re-runs the handshake iff a mutation staled the aggregates. A
  /// failed refresh re-arms the dirty flag and the query proceeds on
  /// the stale statistics (degraded, still exact *per shard state at
  /// resolve time* — the next query retries).
  void RefreshStatsIfStale() const;

  /// One non-hedged, non-failover exchange with a specific replica
  /// (mutations must hit every replica, not any one of them); retries
  /// the same replica Options::retries times like Connect() does.
  Result<std::vector<uint8_t>> MutateReplica(
      const Shard& replica, const std::vector<uint8_t>& frame) const;

  /// Builds the resolved base request: normalised, de-duplicated stems
  /// with global dfs. Returns the query's total idf mass through
  /// `idf_mass_total`.
  ir::ShardQuery ResolveQuery(const std::vector<std::string>& query_words,
                              size_t n, size_t max_fragments,
                              const ir::RankOptions& options,
                              double* idf_mass_total) const;

  /// Replica indices of `shard`, healthiest first.
  std::vector<size_t> HealthOrder(size_t shard) const;
  /// Hedge budget in µs, or -1 when hedging is not armed for the
  /// shard (disabled, single replica, or window not primed).
  int64_t HedgeBudgetUs(size_t shard) const;
  void RecordCallOutcome(size_t shard, size_t replica, bool ok,
                         double elapsed_us) const;
  void RecordExchangeLatency(size_t shard, double elapsed_us) const;

  /// One shard exchange over the replica walk: failover on failed
  /// attempts, hedging past the budget. `frames` holds one request
  /// frame per replica (replicas may address different node ids).
  /// Returns the winning well-formed non-Error frame.
  Result<std::vector<uint8_t>> HedgedExchange(
      size_t shard,
      const std::vector<std::shared_ptr<const std::vector<uint8_t>>>& frames,
      ExchangeTelemetry* telemetry) const;

  /// Launches one attempt on a detached (but inflight-counted) thread.
  void StartAsyncAttempt(size_t shard, size_t replica,
                         std::shared_ptr<const std::vector<uint8_t>> frame,
                         bool is_hedge, std::shared_ptr<HedgedCall> state) const;

  /// One shard call over the replica walk; fills outcome->messages /
  /// bytes with the frames actually exchanged.
  void CallShard(size_t shard, const std::vector<ir::ShardQuery>& queries,
                 ShardOutcome* outcome) const;

  /// Runs fn(i) for every shard, over the executor when attached.
  void ForEachShard(const std::function<void(size_t)>& fn) const;

  /// Fans the (possibly batched) request out to every shard.
  std::vector<ShardOutcome> FanOut(
      const std::vector<ir::ShardQuery>& queries) const;

  /// Folds per-shard outcomes into the E4 stats struct; shared by
  /// Query and QueryBatch. `per_query`, when non-null, gets one entry
  /// per query with that rider's own work/latency/quality attribution.
  void AggregateStats(const std::vector<ir::ShardQuery>& queries,
                      const std::vector<double>& idf_mass_totals,
                      const std::vector<ShardOutcome>& outcomes,
                      ir::ClusterQueryStats* stats,
                      std::vector<ir::ClusterQueryStats>* per_query) const;

  std::vector<ReplicaSet> shards_;
  Options options_;
  /// Guards the handshake aggregates below: queries read them under a
  /// shared lock, the (re-)handshake rewrites them under a unique one.
  /// Mutations themselves never take it — they only flip stats_dirty_.
  mutable std::shared_mutex stats_mu_;
  mutable std::unordered_map<std::string, int32_t, ir::TransparentStringHash,
                             std::equal_to<>>
      global_df_;
  mutable int64_t collection_length_ = 0;
  mutable std::vector<uint64_t> shard_docs_;
  mutable uint64_t total_docs_ = 0;
  mutable uint64_t cluster_epoch_ = 0;
  /// Normalisation pipeline the shards advertised in the handshake;
  /// ResolveQuery must match it or recall silently breaks.
  mutable bool norm_stem_ = true;
  mutable bool norm_stop_ = true;
  bool connected_ = false;
  /// Set by any successful mutation; cleared by the re-handshake.
  mutable std::atomic<bool> stats_dirty_{false};
  ThreadPool* executor_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;

  /// Routing state, one per shard (pointer-stable: ShardState holds a
  /// mutex).
  std::vector<std::unique_ptr<ShardState>> shard_state_;

  mutable std::atomic<uint64_t> hedges_fired_{0};
  mutable std::atomic<uint64_t> hedge_wins_{0};
  mutable std::atomic<uint64_t> failovers_{0};
  mutable std::atomic<uint64_t> replica_errors_{0};

  /// Async attempts still running (hedge losers included); the
  /// destructor blocks until it drains so no attempt outlives `this`.
  mutable std::mutex inflight_mu_;
  mutable std::condition_variable inflight_cv_;
  mutable size_t inflight_ = 0;
};

}  // namespace dls::net

#endif  // DLS_NET_REMOTE_CLUSTER_H_
