#ifndef DLS_NET_FRAME_SERVER_H_
#define DLS_NET_FRAME_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/transport.h"

namespace dls::net {

/// The reusable server half of the wire protocol: a listening TCP
/// socket, an accept loop, and a worker pool that answers one request
/// frame with one response frame per connection, in order per
/// connection and concurrently across connections. What the frames
/// *mean* is the derived class's business — ShardServer answers shard
/// queries, serve::FrontendServer answers client searches — this class
/// owns only the transport mechanics both share.
///
/// Two ways to serve:
///   - HandleFrame() is the pure protocol entry point: one request
///     frame in, one response frame out. Implementations must be
///     thread-safe (workers call it concurrently). LoopbackTransport
///     wraps it directly for deterministic in-process use.
///   - Start(port) binds a listening TCP socket (port 0 picks an
///     ephemeral port, see port()) and serves each accepted connection
///     on a dls::ThreadPool worker.
///
/// Failure semantics: a frame the handler cannot parse or address gets
/// an Error frame in reply and the connection is closed (after a bad
/// frame the byte stream may be out of sync — resynchronising is the
/// client's reconnect). The server itself never dies from peer input.
///
/// Lifetime: derived destructors MUST call Stop() first — the base
/// destructor also calls it as a backstop, but by then the derived
/// part is gone, and an in-flight connection worker must never reach a
/// destroyed HandleFrame override.
class FrameServer {
 public:
  /// `num_workers` bounds concurrently served TCP connections; the
  /// pool is only spun up by Start().
  explicit FrameServer(size_t num_workers);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Answers one request frame. Malformed or unserviceable requests
  /// yield an encoded Error frame, not a failed Result — the transport
  /// delivered fine; the protocol-level answer is the error.
  virtual Result<std::vector<uint8_t>> HandleFrame(
      const std::vector<uint8_t>& frame) const = 0;

  /// A LoopbackTransport handler bound to HandleFrame.
  LoopbackTransport::Handler Handler() const;

  /// Binds 0.0.0.0:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port);

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// Stops accepting, wakes per-connection workers, joins everything.
  /// Idempotent; derived destructors run it before their state dies.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const size_t num_workers_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// Accepted fds still being served (non-blocking; registered by the
  /// accept loop, closed and deregistered by their worker). Stop()
  /// shutdown(2)s them so a worker parked in a mid-frame poll wakes
  /// immediately instead of running out its frame-read budget.
  std::mutex conns_mu_;
  std::vector<int> conn_fds_;
};

}  // namespace dls::net

#endif  // DLS_NET_FRAME_SERVER_H_
