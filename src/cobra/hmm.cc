#include "cobra/hmm.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace dls::cobra {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

void NormalizeRow(std::vector<double>* row) {
  double sum = 0;
  for (double v : *row) sum += v;
  if (sum <= 0) {
    double u = 1.0 / row->size();
    for (double& v : *row) v = u;
    return;
  }
  for (double& v : *row) v /= sum;
}

}  // namespace

Hmm::Hmm(int num_states, int num_symbols, uint64_t seed)
    : num_states_(num_states), num_symbols_(num_symbols) {
  assert(num_states > 0 && num_symbols > 0);
  Rng rng(seed);
  a_.assign(num_states, std::vector<double>(num_states));
  b_.assign(num_states, std::vector<double>(num_symbols));
  pi_.assign(num_states, 0);
  for (int i = 0; i < num_states; ++i) {
    for (int j = 0; j < num_states; ++j) a_[i][j] = 1.0 + rng.NextDouble();
    NormalizeRow(&a_[i]);
    for (int k = 0; k < num_symbols; ++k) b_[i][k] = 1.0 + rng.NextDouble();
    NormalizeRow(&b_[i]);
    pi_[i] = 1.0 + rng.NextDouble();
  }
  NormalizeRow(&pi_);
}

double Hmm::LogLikelihood(const std::vector<int>& obs) const {
  if (obs.empty()) return 0;
  std::vector<double> alpha(num_states_);
  double log_prob = 0;

  for (int i = 0; i < num_states_; ++i) {
    alpha[i] = pi_[i] * b_[i][obs[0]];
  }
  double scale = 0;
  for (double v : alpha) scale += v;
  if (scale <= 0) return kNegInf;
  for (double& v : alpha) v /= scale;
  log_prob += std::log(scale);

  std::vector<double> next(num_states_);
  for (size_t t = 1; t < obs.size(); ++t) {
    for (int j = 0; j < num_states_; ++j) {
      double sum = 0;
      for (int i = 0; i < num_states_; ++i) sum += alpha[i] * a_[i][j];
      next[j] = sum * b_[j][obs[t]];
    }
    scale = 0;
    for (double v : next) scale += v;
    if (scale <= 0) return kNegInf;
    for (int j = 0; j < num_states_; ++j) alpha[j] = next[j] / scale;
    log_prob += std::log(scale);
  }
  return log_prob;
}

std::vector<int> Hmm::Viterbi(const std::vector<int>& obs) const {
  if (obs.empty()) return {};
  const size_t len = obs.size();
  std::vector<std::vector<double>> delta(len,
                                         std::vector<double>(num_states_));
  std::vector<std::vector<int>> psi(len, std::vector<int>(num_states_, 0));

  auto safe_log = [](double v) { return v > 0 ? std::log(v) : kNegInf; };

  for (int i = 0; i < num_states_; ++i) {
    delta[0][i] = safe_log(pi_[i]) + safe_log(b_[i][obs[0]]);
  }
  for (size_t t = 1; t < len; ++t) {
    for (int j = 0; j < num_states_; ++j) {
      double best = kNegInf;
      int arg = 0;
      for (int i = 0; i < num_states_; ++i) {
        double v = delta[t - 1][i] + safe_log(a_[i][j]);
        if (v > best) {
          best = v;
          arg = i;
        }
      }
      delta[t][j] = best + safe_log(b_[j][obs[t]]);
      psi[t][j] = arg;
    }
  }

  std::vector<int> states(len);
  double best = kNegInf;
  for (int i = 0; i < num_states_; ++i) {
    if (delta[len - 1][i] > best) {
      best = delta[len - 1][i];
      states[len - 1] = i;
    }
  }
  for (size_t t = len - 1; t > 0; --t) {
    states[t - 1] = psi[t][states[t]];
  }
  return states;
}

Status Hmm::Train(const std::vector<std::vector<int>>& sequences,
                  int iterations) {
  for (const auto& seq : sequences) {
    if (seq.empty()) {
      return Status::InvalidArgument("empty training sequence");
    }
    for (int symbol : seq) {
      if (symbol < 0 || symbol >= num_symbols_) {
        return Status::InvalidArgument("observation symbol out of range");
      }
    }
  }
  if (sequences.empty()) {
    return Status::InvalidArgument("no training sequences");
  }

  const double kSmooth = 1e-3;
  for (int round = 0; round < iterations; ++round) {
    // Accumulators across sequences.
    std::vector<std::vector<double>> a_num(
        num_states_, std::vector<double>(num_states_, kSmooth));
    std::vector<std::vector<double>> b_num(
        num_states_, std::vector<double>(num_symbols_, kSmooth));
    std::vector<double> pi_num(num_states_, kSmooth);

    for (const std::vector<int>& obs : sequences) {
      const size_t len = obs.size();
      // Scaled forward.
      std::vector<std::vector<double>> alpha(len,
                                             std::vector<double>(num_states_));
      std::vector<double> scales(len);
      for (int i = 0; i < num_states_; ++i) {
        alpha[0][i] = pi_[i] * b_[i][obs[0]];
      }
      double scale = 0;
      for (double v : alpha[0]) scale += v;
      if (scale <= 0) continue;  // impossible under the current model
      scales[0] = scale;
      for (double& v : alpha[0]) v /= scale;
      bool dead = false;
      for (size_t t = 1; t < len; ++t) {
        for (int j = 0; j < num_states_; ++j) {
          double sum = 0;
          for (int i = 0; i < num_states_; ++i) {
            sum += alpha[t - 1][i] * a_[i][j];
          }
          alpha[t][j] = sum * b_[j][obs[t]];
        }
        scale = 0;
        for (double v : alpha[t]) scale += v;
        if (scale <= 0) {
          dead = true;
          break;
        }
        scales[t] = scale;
        for (double& v : alpha[t]) v /= scale;
      }
      if (dead) continue;

      // Scaled backward.
      std::vector<std::vector<double>> beta(len,
                                            std::vector<double>(num_states_));
      for (int i = 0; i < num_states_; ++i) beta[len - 1][i] = 1.0;
      for (size_t t = len - 1; t > 0; --t) {
        for (int i = 0; i < num_states_; ++i) {
          double sum = 0;
          for (int j = 0; j < num_states_; ++j) {
            sum += a_[i][j] * b_[j][obs[t]] * beta[t][j];
          }
          beta[t - 1][i] = sum / scales[t];
        }
      }

      // Accumulate expected counts.
      for (int i = 0; i < num_states_; ++i) {
        double gamma0 = alpha[0][i] * beta[0][i];
        pi_num[i] += gamma0;
      }
      for (size_t t = 0; t < len; ++t) {
        for (int i = 0; i < num_states_; ++i) {
          double gamma = alpha[t][i] * beta[t][i];
          b_num[i][obs[t]] += gamma;
        }
      }
      for (size_t t = 0; t + 1 < len; ++t) {
        for (int i = 0; i < num_states_; ++i) {
          for (int j = 0; j < num_states_; ++j) {
            double xi = alpha[t][i] * a_[i][j] * b_[j][obs[t + 1]] *
                        beta[t + 1][j] / scales[t + 1];
            a_num[i][j] += xi;
          }
        }
      }
    }

    for (int i = 0; i < num_states_; ++i) {
      NormalizeRow(&a_num[i]);
      NormalizeRow(&b_num[i]);
    }
    NormalizeRow(&pi_num);
    a_ = std::move(a_num);
    b_ = std::move(b_num);
    pi_ = std::move(pi_num);
  }
  return Status::Ok();
}

HmmClassifier::HmmClassifier(int num_classes, int num_states, int num_symbols,
                             uint64_t seed) {
  models_.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    models_.emplace_back(num_states, num_symbols,
                         seed + static_cast<uint64_t>(c) * 7919);
  }
}

Status HmmClassifier::TrainClass(int c,
                                 const std::vector<std::vector<int>>& sequences,
                                 int iterations) {
  if (c < 0 || c >= static_cast<int>(models_.size())) {
    return Status::InvalidArgument("class index out of range");
  }
  return models_[c].Train(sequences, iterations);
}

int HmmClassifier::Classify(const std::vector<int>& observations) const {
  int best = 0;
  double best_ll = kNegInf;
  for (size_t c = 0; c < models_.size(); ++c) {
    double ll = models_[c].LogLikelihood(observations);
    if (ll > best_ll) {
      best_ll = ll;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace dls::cobra
