#include "cobra/events.h"

#include <map>

namespace dls::cobra {

bool DetectNetplay(const std::vector<PlayerObservation>& track,
                   const EventRules& rules) {
  for (const PlayerObservation& obs : track) {
    if (obs.found && obs.y <= rules.netplay_y) return true;
  }
  return false;
}

std::vector<int> QuantizeTrack(const std::vector<PlayerObservation>& track,
                               int frame_height) {
  std::vector<int> symbols;
  double last_y = -1;
  for (const PlayerObservation& obs : track) {
    if (!obs.found) continue;
    int zone;
    if (obs.y < frame_height * 0.60) {
      zone = 0;  // at the net
    } else if (obs.y < frame_height * 0.80) {
      zone = 1;  // mid-court
    } else {
      zone = 2;  // baseline
    }
    int motion = 1;  // still
    if (last_y >= 0) {
      double dy = obs.y - last_y;
      if (dy < -1.5) {
        motion = 0;  // moving toward the net
      } else if (dy > 1.5) {
        motion = 2;  // moving away
      }
    }
    last_y = obs.y;
    symbols.push_back(zone * 3 + motion);
  }
  return symbols;
}

StrokeRecognizer::StrokeRecognizer(uint64_t seed)
    : classifier_(/*num_classes=*/3, /*num_states=*/3, kEventSymbols, seed) {}

Status StrokeRecognizer::Train(
    const std::vector<std::pair<TrajectoryKind, std::vector<int>>>& examples,
    int iterations) {
  std::map<TrajectoryKind, std::vector<std::vector<int>>> by_class;
  for (const auto& [kind, sequence] : examples) {
    if (sequence.empty()) continue;
    by_class[kind].push_back(sequence);
  }
  for (int c = 0; c < 3; ++c) {
    TrajectoryKind kind = static_cast<TrajectoryKind>(c);
    auto it = by_class.find(kind);
    if (it == by_class.end()) {
      return Status::InvalidArgument(
          std::string("no training examples for class ") +
          TrajectoryKindName(kind));
    }
    DLS_RETURN_IF_ERROR(classifier_.TrainClass(c, it->second, iterations));
  }
  return Status::Ok();
}

TrajectoryKind StrokeRecognizer::Classify(
    const std::vector<int>& observations) const {
  return static_cast<TrajectoryKind>(classifier_.Classify(observations));
}

}  // namespace dls::cobra
