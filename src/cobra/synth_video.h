#ifndef DLS_COBRA_SYNTH_VIDEO_H_
#define DLS_COBRA_SYNTH_VIDEO_H_

#include <optional>
#include <string>
#include <vector>

#include "cobra/frame.h"
#include "common/rng.h"

namespace dls::cobra {

/// Shot classes of the paper's Fig. 5 classification.
enum class ShotClass : uint8_t {
  kTennis,
  kCloseup,
  kAudience,
  kOther,
};

const char* ShotClassName(ShotClass c);

/// Scripted player behaviour within a tennis shot — these are also the
/// event classes the HMM recognises.
enum class TrajectoryKind : uint8_t {
  kBaselineRally,  ///< stays near the baseline (large y)
  kApproachNet,    ///< advances from the baseline towards the net
  kServeVolley,    ///< brief baseline pause, then a fast run to the net
};

const char* TrajectoryKindName(TrajectoryKind k);

/// Court colour palettes (the generalisation claim: segmentation works
/// across court classes without retuning).
enum class CourtPalette : uint8_t {
  kGrass,   ///< Wimbledon-ish green
  kHard,    ///< Australian Open blue/green hard court
  kClay,    ///< Roland Garros orange
};

/// One scripted shot.
struct ShotScript {
  ShotClass type = ShotClass::kTennis;
  int num_frames = 30;
  TrajectoryKind trajectory = TrajectoryKind::kBaselineRally;
};

/// A whole scripted video.
struct VideoScript {
  uint64_t seed = 1;
  int width = 352;
  int height = 288;
  CourtPalette palette = CourtPalette::kHard;
  std::vector<ShotScript> shots;

  int TotalFrames() const;
};

/// Ground truth for one frame (for detector accuracy tests).
struct FrameTruth {
  int shot_index = -1;
  ShotClass shot_class = ShotClass::kOther;
  /// Player centre, present only for tennis shots.
  std::optional<double> player_x;
  std::optional<double> player_y;
};

/// Deterministic synthetic tennis video: frames are rendered on demand
/// from the script (O(1 frame) memory), with pixel noise derived from
/// (seed, frame index) so re-rendering a frame is reproducible.
///
/// Substitution note (DESIGN.md): this replaces the paper's MPEG tennis
/// footage. The renderer produces the visual properties the detectors
/// key on — court-coloured playing shots with a dark player blob and
/// white net line, skin-dominated close-ups, high-entropy audience
/// shots — with known ground truth.
class SyntheticVideo : public FrameSource {
 public:
  explicit SyntheticVideo(VideoScript script);

  int frame_count() const override { return total_frames_; }
  Frame GetFrame(int index) const override;

  const VideoScript& script() const { return script_; }
  FrameTruth TruthOf(int frame_index) const;
  /// Frame index of the first frame of shot `i`.
  int ShotStart(int i) const { return shot_starts_[i]; }

  /// The exact court colour the renderer uses (tests compare the
  /// detector's estimate against it).
  Rgb court_color() const;

 private:
  struct Placement {
    int shot_index;
    int frame_in_shot;
  };
  Placement Place(int frame_index) const;
  /// Scripted player position within a tennis shot.
  void PlayerPosition(const ShotScript& shot, int shot_index,
                      int frame_in_shot, double* x, double* y) const;

  void RenderTennis(Frame* frame, int shot_index, int frame_in_shot) const;
  void RenderCloseup(Frame* frame, int shot_index, int frame_in_shot) const;
  void RenderAudience(Frame* frame, int shot_index, int frame_in_shot) const;
  void RenderOther(Frame* frame, int shot_index, int frame_in_shot) const;

  VideoScript script_;
  int total_frames_ = 0;
  std::vector<int> shot_starts_;
};

/// Generates a random but deterministic video script: `num_shots` shots
/// with a realistic class mix (~50% tennis) and varied lengths.
VideoScript MakeRandomScript(uint64_t seed, int num_shots,
                             int frames_per_shot = 24,
                             CourtPalette palette = CourtPalette::kHard);

}  // namespace dls::cobra

#endif  // DLS_COBRA_SYNTH_VIDEO_H_
