#ifndef DLS_COBRA_HISTOGRAM_H_
#define DLS_COBRA_HISTOGRAM_H_

#include <array>

#include "cobra/frame.h"

namespace dls::cobra {

/// 4x4x4-bin RGB colour histogram — the feature behind shot-boundary
/// detection and dominant-colour classification.
class ColorHistogram {
 public:
  static constexpr int kBinsPerChannel = 4;
  static constexpr int kTotalBins =
      kBinsPerChannel * kBinsPerChannel * kBinsPerChannel;

  ColorHistogram() { counts_.fill(0); }

  static ColorHistogram Of(const Frame& frame);

  static int BinOf(Rgb c) {
    int rb = c.r / (256 / kBinsPerChannel);
    int gb = c.g / (256 / kBinsPerChannel);
    int bb = c.b / (256 / kBinsPerChannel);
    return (rb * kBinsPerChannel + gb) * kBinsPerChannel + bb;
  }

  int64_t count(int bin) const { return counts_[bin]; }
  int64_t total() const { return total_; }

  /// Normalised L1 distance in [0, 2].
  double DistanceTo(const ColorHistogram& other) const;

  /// Index of the fullest bin.
  int DominantBin() const;

  /// Shannon entropy (bits) of the bin distribution.
  double Entropy() const;

  /// Mean and variance of pixel intensity (luma approximation),
  /// accumulated alongside the histogram.
  double mean() const { return total_ > 0 ? sum_ / total_ : 0; }
  double variance() const;

 private:
  std::array<int64_t, kTotalBins> counts_;
  int64_t total_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

/// Fraction of pixels within the skin-colour box (the close-up cue).
double SkinPixelRatio(const Frame& frame);

/// Fraction of near-white pixels (the court-line cue: playing shots
/// show the white court markings).
double WhitePixelRatio(const Frame& frame);

/// Representative colour of a histogram bin (its centre).
Rgb BinCenter(int bin);

}  // namespace dls::cobra

#endif  // DLS_COBRA_HISTOGRAM_H_
