#ifndef DLS_COBRA_AUDIO_H_
#define DLS_COBRA_AUDIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dls::cobra {

/// Audio segment classes (interviews are speech with pauses; the site
/// also serves music jingles).
enum class AudioClass : uint8_t {
  kSpeech,
  kMusic,
  kSilence,
};

const char* AudioClassName(AudioClass c);

/// One scripted audio segment.
struct AudioSegmentScript {
  AudioClass type = AudioClass::kSpeech;
  double seconds = 2.0;
};

/// A scripted audio clip.
struct AudioScript {
  uint64_t seed = 1;
  int sample_rate = 8000;
  std::vector<AudioSegmentScript> segments;

  int TotalSamples() const;
};

/// Deterministic synthetic audio (mono float PCM), the stand-in for
/// the interview recordings of the Australian Open site:
///  - speech: syllable bursts of modulated noise separated by short
///    pauses (bursty energy, high zero-crossing variability),
///  - music: a steady chord of harmonics (sustained energy, stable
///    low zero-crossing rate),
///  - silence: low-level noise.
class SyntheticAudio {
 public:
  explicit SyntheticAudio(AudioScript script);

  const AudioScript& script() const { return script_; }
  int sample_count() const { return static_cast<int>(samples_.size()); }
  const std::vector<float>& samples() const { return samples_; }

  /// Ground-truth class of the segment containing `sample`.
  AudioClass TruthOf(int sample) const;

 private:
  AudioScript script_;
  std::vector<float> samples_;
  std::vector<int> segment_starts_;
};

/// Frame-level acoustic features (the raw->feature step of the COBRA
/// layering, applied to audio).
struct AudioFrameFeatures {
  double energy = 0;          ///< mean squared amplitude
  double zero_crossings = 0;  ///< rate in [0, 1]
};

/// Detected, classified audio segment: [begin, end) in frames.
struct DetectedAudioSegment {
  int begin_frame = 0;
  int end_frame = 0;  ///< exclusive
  AudioClass type = AudioClass::kSilence;
};

struct AudioAnalyzerOptions {
  int frame_samples = 160;          ///< 20 ms at 8 kHz
  double silence_energy = 1e-4;
  /// Windows (of kStatWindow frames) whose energy dip ratio exceeds
  /// this are speech (pauses between syllables); below, music.
  double speech_dip_ratio = 0.2;
  /// Minimum segment length in frames after smoothing.
  int min_segment_frames = 10;
};

/// Computes per-frame features.
std::vector<AudioFrameFeatures> AnalyzeFrames(
    const SyntheticAudio& audio, const AudioAnalyzerOptions& options = {});

/// Segments and classifies an audio clip into speech/music/silence
/// runs — the `audio_segment` detector behind the audio branch of the
/// feature grammar.
std::vector<DetectedAudioSegment> SegmentAudio(
    const SyntheticAudio& audio, const AudioAnalyzerOptions& options = {});

/// Seconds covered by frames of the given class.
double ClassSeconds(const std::vector<DetectedAudioSegment>& segments,
                    AudioClass type, const AudioAnalyzerOptions& options = {},
                    int sample_rate = 8000);

}  // namespace dls::cobra

#endif  // DLS_COBRA_AUDIO_H_
