#ifndef DLS_COBRA_EVENTS_H_
#define DLS_COBRA_EVENTS_H_

#include <vector>

#include "cobra/hmm.h"
#include "cobra/tracker.h"

namespace dls::cobra {

/// Rule-based event inference over the player track — the C++-level
/// counterpart of the grammar-level whitebox detectors (the feature
/// grammar expresses `netplay` as `some[tennis.frame](player.yPos <=
/// 170.0)`; this function is the same rule for callers outside the
/// FDE).
struct EventRules {
  /// Player mass-centre y at or above (screen coordinates: smaller is
  /// closer to the net) this value counts as being at the net.
  double netplay_y = 170.0;
};

/// True if the player approaches the net in at least one frame.
bool DetectNetplay(const std::vector<PlayerObservation>& track,
                   const EventRules& rules = {});

/// Observation alphabet for stochastic event recognition: each frame
/// is quantised to zone(y) ∈ {net, mid, baseline} × motion(dy) ∈
/// {toward net, still, away} = 9 symbols.
inline constexpr int kEventSymbols = 9;

/// Quantises a player track into the HMM observation alphabet.
/// Frames where the player was not found are skipped.
std::vector<int> QuantizeTrack(const std::vector<PlayerObservation>& track,
                               int frame_height);

/// End-to-end stochastic event recogniser: one HMM per
/// TrajectoryKind, trained on quantised synthetic tracks.
class StrokeRecognizer {
 public:
  explicit StrokeRecognizer(uint64_t seed);

  /// Trains from labelled example tracks.
  Status Train(
      const std::vector<std::pair<TrajectoryKind, std::vector<int>>>& examples,
      int iterations = 20);

  TrajectoryKind Classify(const std::vector<int>& observations) const;

 private:
  HmmClassifier classifier_;
};

}  // namespace dls::cobra

#endif  // DLS_COBRA_EVENTS_H_
