#include "cobra/tracker.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "cobra/histogram.h"

namespace dls::cobra {
namespace {

bool IsCourtLine(Rgb c) {
  return c.r > 215 && c.g > 215 && c.b > 215;
}

}  // namespace

std::optional<PlayerObservation> SegmentPlayer(const Frame& frame, Rgb court,
                                               int x0, int y0, int x1, int y1,
                                               const TrackerOptions& options) {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(frame.width(), x1);
  y1 = std::min(frame.height(), y1);

  double m00 = 0, m10 = 0, m01 = 0;
  double sxx = 0, syy = 0, sxy = 0;
  int bx0 = x1, by0 = y1, bx1 = x0, by1 = y0;
  std::map<int, int> color_votes;

  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      Rgb c = frame.At(x, y);
      if (IsCourtLine(c)) continue;
      if (c.DistanceTo(court) < options.foreground_threshold) continue;
      m00 += 1;
      m10 += x;
      m01 += y;
      sxx += static_cast<double>(x) * x;
      syy += static_cast<double>(y) * y;
      sxy += static_cast<double>(x) * y;
      bx0 = std::min(bx0, x);
      by0 = std::min(by0, y);
      bx1 = std::max(bx1, x);
      by1 = std::max(by1, y);
      ++color_votes[ColorHistogram::BinOf(c)];
    }
  }
  if (m00 < options.min_area) return std::nullopt;

  PlayerObservation obs;
  obs.found = true;
  obs.area = m00;
  obs.x = m10 / m00;
  obs.y = m01 / m00;
  obs.bbox_x0 = bx0;
  obs.bbox_y0 = by0;
  obs.bbox_x1 = bx1;
  obs.bbox_y1 = by1;

  // Central second moments -> orientation and eccentricity.
  double mu20 = sxx / m00 - obs.x * obs.x;
  double mu02 = syy / m00 - obs.y * obs.y;
  double mu11 = sxy / m00 - obs.x * obs.y;
  obs.orientation = 0.5 * std::atan2(2.0 * mu11, mu20 - mu02);
  double common = std::sqrt((mu20 - mu02) * (mu20 - mu02) + 4 * mu11 * mu11);
  double lambda1 = (mu20 + mu02 + common) / 2;
  double lambda2 = (mu20 + mu02 - common) / 2;
  obs.eccentricity =
      lambda1 > 1e-9 ? std::sqrt(std::max(0.0, 1.0 - lambda2 / lambda1)) : 0;

  int best_bin = 0, best_votes = 0;
  for (const auto& [bin, votes] : color_votes) {
    if (votes > best_votes) {
      best_votes = votes;
      best_bin = bin;
    }
  }
  obs.dominant = BinCenter(best_bin);
  return obs;
}

std::vector<PlayerObservation> TrackPlayer(const FrameSource& video,
                                           int begin, int end, Rgb court,
                                           const TrackerOptions& options) {
  std::vector<PlayerObservation> track;
  double pred_x = 0, pred_y = 0;
  double last_x = 0, last_y = 0;
  bool have_prediction = false;
  bool have_last = false;
  double vx = 0, vy = 0;

  for (int i = begin; i < end; ++i) {
    Frame frame = video.GetFrame(i);
    std::optional<PlayerObservation> obs;
    if (have_prediction) {
      int w = options.search_window;
      obs = SegmentPlayer(frame, court, static_cast<int>(pred_x) - w,
                          static_cast<int>(pred_y) - w,
                          static_cast<int>(pred_x) + w,
                          static_cast<int>(pred_y) + w, options);
    }
    if (!obs) {
      // Initial (or recovery) full-frame segmentation, coarse-to-fine:
      // sample on a grid first to locate the blob, then segment its
      // neighbourhood exactly.
      double best_x = 0, best_y = 0;
      int best_hits = 0;
      const int stride = options.initial_stride;
      const int cell = 32;
      for (int cy = 0; cy < frame.height(); cy += cell) {
        for (int cx = 0; cx < frame.width(); cx += cell) {
          int hits = 0;
          for (int y = cy; y < std::min(cy + cell, frame.height());
               y += stride) {
            for (int x = cx; x < std::min(cx + cell, frame.width());
                 x += stride) {
              Rgb c = frame.At(x, y);
              if (!IsCourtLine(c) &&
                  c.DistanceTo(court) >= options.foreground_threshold) {
                ++hits;
              }
            }
          }
          if (hits > best_hits) {
            best_hits = hits;
            best_x = cx + cell / 2.0;
            best_y = cy + cell / 2.0;
          }
        }
      }
      if (best_hits > 0) {
        int w = options.search_window;
        obs = SegmentPlayer(frame, court, static_cast<int>(best_x) - w,
                            static_cast<int>(best_y) - w,
                            static_cast<int>(best_x) + w,
                            static_cast<int>(best_y) + w, options);
      }
    }

    PlayerObservation final_obs;
    final_obs.frame = i;
    if (obs) {
      final_obs = *obs;
      final_obs.frame = i;
      if (have_last) {
        vx = final_obs.x - last_x;
        vy = final_obs.y - last_y;
      }
      last_x = final_obs.x;
      last_y = final_obs.y;
      have_last = true;
      // Constant-velocity prediction for the next frame's window.
      pred_x = final_obs.x + vx;
      pred_y = final_obs.y + vy;
      have_prediction = true;
    } else {
      have_prediction = false;
      have_last = false;
      vx = vy = 0;
    }
    track.push_back(final_obs);
  }
  return track;
}

}  // namespace dls::cobra
