#include "cobra/audio.h"

#include <algorithm>
#include <cmath>

namespace dls::cobra {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Frames per classification window when measuring energy burstiness.
constexpr int kStatWindow = 10;

}  // namespace

const char* AudioClassName(AudioClass c) {
  switch (c) {
    case AudioClass::kSpeech:
      return "speech";
    case AudioClass::kMusic:
      return "music";
    case AudioClass::kSilence:
      return "silence";
  }
  return "?";
}

int AudioScript::TotalSamples() const {
  double seconds = 0;
  for (const AudioSegmentScript& segment : segments) {
    seconds += segment.seconds;
  }
  return static_cast<int>(seconds * sample_rate);
}

SyntheticAudio::SyntheticAudio(AudioScript script)
    : script_(std::move(script)) {
  Rng rng(script_.seed);
  const int rate = script_.sample_rate;
  for (const AudioSegmentScript& segment : script_.segments) {
    segment_starts_.push_back(static_cast<int>(samples_.size()));
    int n = static_cast<int>(segment.seconds * rate);
    switch (segment.type) {
      case AudioClass::kSilence:
        for (int i = 0; i < n; ++i) {
          samples_.push_back(static_cast<float>(rng.Gaussian() * 0.002));
        }
        break;
      case AudioClass::kMusic: {
        // A steady three-note chord with slight vibrato.
        double f0 = 220.0 + rng.Uniform(4) * 55.0;
        for (int i = 0; i < n; ++i) {
          double t = static_cast<double>(i) / rate;
          double v = 0.3 * std::sin(kTwoPi * f0 * t) +
                     0.2 * std::sin(kTwoPi * f0 * 1.25 * t) +
                     0.15 * std::sin(kTwoPi * f0 * 1.5 * t);
          samples_.push_back(static_cast<float>(v));
        }
        break;
      }
      case AudioClass::kSpeech: {
        // Syllables: 120-250 ms voiced bursts separated by 40-120 ms
        // pauses; each burst is band-noise over a pitch pulse.
        int i = 0;
        while (i < n) {
          int burst = rate * (120 + static_cast<int>(rng.Uniform(130))) / 1000;
          int pause = rate * (40 + static_cast<int>(rng.Uniform(80))) / 1000;
          double pitch = 90.0 + rng.Uniform(120);
          for (int k = 0; k < burst && i < n; ++k, ++i) {
            double t = static_cast<double>(k) / rate;
            double envelope = std::sin(
                3.14159265358979 * std::min(1.0, static_cast<double>(k) /
                                                     burst));
            double voiced = 0.35 * std::sin(kTwoPi * pitch * t);
            double noise = 0.25 * rng.Gaussian();
            samples_.push_back(
                static_cast<float>(envelope * (voiced + noise)));
          }
          for (int k = 0; k < pause && i < n; ++k, ++i) {
            samples_.push_back(static_cast<float>(rng.Gaussian() * 0.002));
          }
        }
        break;
      }
    }
  }
}

AudioClass SyntheticAudio::TruthOf(int sample) const {
  for (size_t i = segment_starts_.size(); i > 0; --i) {
    if (sample >= segment_starts_[i - 1]) {
      return script_.segments[i - 1].type;
    }
  }
  return AudioClass::kSilence;
}

std::vector<AudioFrameFeatures> AnalyzeFrames(
    const SyntheticAudio& audio, const AudioAnalyzerOptions& options) {
  std::vector<AudioFrameFeatures> frames;
  const std::vector<float>& samples = audio.samples();
  for (size_t start = 0; start + options.frame_samples <= samples.size();
       start += options.frame_samples) {
    AudioFrameFeatures f;
    int crossings = 0;
    for (int i = 0; i < options.frame_samples; ++i) {
      double v = samples[start + i];
      f.energy += v * v;
      if (i > 0 && (samples[start + i - 1] < 0) != (v < 0)) ++crossings;
    }
    f.energy /= options.frame_samples;
    f.zero_crossings =
        static_cast<double>(crossings) / options.frame_samples;
    frames.push_back(f);
  }
  return frames;
}

std::vector<DetectedAudioSegment> SegmentAudio(
    const SyntheticAudio& audio, const AudioAnalyzerOptions& options) {
  std::vector<AudioFrameFeatures> frames = AnalyzeFrames(audio, options);
  // Classify each window of kStatWindow frames, then merge runs.
  std::vector<AudioClass> window_class;
  for (size_t w = 0; w * kStatWindow < frames.size(); ++w) {
    size_t begin = w * kStatWindow;
    size_t end = std::min(frames.size(), begin + kStatWindow);
    double mean_energy = 0;
    int quiet = 0;
    for (size_t i = begin; i < end; ++i) mean_energy += frames[i].energy;
    mean_energy /= static_cast<double>(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (frames[i].energy < mean_energy * 0.15) ++quiet;
    }
    double dip_ratio = static_cast<double>(quiet) /
                       static_cast<double>(end - begin);
    AudioClass type;
    if (mean_energy < options.silence_energy) {
      type = AudioClass::kSilence;
    } else if (dip_ratio > options.speech_dip_ratio) {
      // Bursty energy with inter-syllable dips: speech.
      type = AudioClass::kSpeech;
    } else {
      type = AudioClass::kMusic;
    }
    window_class.push_back(type);
  }

  // Merge neighbouring windows of the same class into segments.
  std::vector<DetectedAudioSegment> segments;
  for (size_t w = 0; w < window_class.size(); ++w) {
    int begin = static_cast<int>(w * kStatWindow);
    int end = static_cast<int>(
        std::min(frames.size(), (w + 1) * static_cast<size_t>(kStatWindow)));
    if (!segments.empty() && segments.back().type == window_class[w]) {
      segments.back().end_frame = end;
    } else {
      segments.push_back(DetectedAudioSegment{begin, end, window_class[w]});
    }
  }
  // Absorb segments shorter than the minimum into their predecessor.
  std::vector<DetectedAudioSegment> merged;
  for (const DetectedAudioSegment& segment : segments) {
    if (!merged.empty() && segment.end_frame - segment.begin_frame <
                               options.min_segment_frames) {
      merged.back().end_frame = segment.end_frame;
    } else {
      merged.push_back(segment);
    }
  }
  return merged;
}

double ClassSeconds(const std::vector<DetectedAudioSegment>& segments,
                    AudioClass type, const AudioAnalyzerOptions& options,
                    int sample_rate) {
  double frames = 0;
  for (const DetectedAudioSegment& segment : segments) {
    if (segment.type == type) frames += segment.end_frame - segment.begin_frame;
  }
  return frames * options.frame_samples / sample_rate;
}

}  // namespace dls::cobra
