#include "cobra/histogram.h"

#include <cmath>

namespace dls::cobra {

ColorHistogram ColorHistogram::Of(const Frame& frame) {
  ColorHistogram hist;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      Rgb c = frame.At(x, y);
      ++hist.counts_[BinOf(c)];
      double luma = 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
      hist.sum_ += luma;
      hist.sum_sq_ += luma * luma;
    }
  }
  hist.total_ = static_cast<int64_t>(frame.width()) * frame.height();
  return hist;
}

double ColorHistogram::DistanceTo(const ColorHistogram& other) const {
  if (total_ == 0 || other.total_ == 0) return 0;
  double distance = 0;
  for (int bin = 0; bin < kTotalBins; ++bin) {
    double a = static_cast<double>(counts_[bin]) / total_;
    double b = static_cast<double>(other.counts_[bin]) / other.total_;
    distance += std::abs(a - b);
  }
  return distance;
}

int ColorHistogram::DominantBin() const {
  int best = 0;
  for (int bin = 1; bin < kTotalBins; ++bin) {
    if (counts_[bin] > counts_[best]) best = bin;
  }
  return best;
}

double ColorHistogram::Entropy() const {
  if (total_ == 0) return 0;
  double entropy = 0;
  for (int bin = 0; bin < kTotalBins; ++bin) {
    if (counts_[bin] == 0) continue;
    double p = static_cast<double>(counts_[bin]) / total_;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double ColorHistogram::variance() const {
  if (total_ == 0) return 0;
  double m = sum_ / total_;
  return sum_sq_ / total_ - m * m;
}

double SkinPixelRatio(const Frame& frame) {
  int64_t skin = 0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      Rgb c = frame.At(x, y);
      // A pragmatic RGB skin box: warm, red-dominant, mid-bright.
      if (c.r > 150 && c.r < 245 && c.g > 110 && c.g < 210 && c.b > 90 &&
          c.b < 180 && c.r > c.g && c.g > c.b) {
        ++skin;
      }
    }
  }
  return static_cast<double>(skin) /
         (static_cast<double>(frame.width()) * frame.height());
}

double WhitePixelRatio(const Frame& frame) {
  int64_t white = 0;
  for (int y = 0; y < frame.height(); ++y) {
    for (int x = 0; x < frame.width(); ++x) {
      Rgb c = frame.At(x, y);
      if (c.r > 228 && c.g > 228 && c.b > 228) ++white;
    }
  }
  return static_cast<double>(white) /
         (static_cast<double>(frame.width()) * frame.height());
}

Rgb BinCenter(int bin) {
  constexpr int kStep = 256 / ColorHistogram::kBinsPerChannel;
  int bb = bin % ColorHistogram::kBinsPerChannel;
  int gb = (bin / ColorHistogram::kBinsPerChannel) %
           ColorHistogram::kBinsPerChannel;
  int rb = bin / (ColorHistogram::kBinsPerChannel *
                  ColorHistogram::kBinsPerChannel);
  return Rgb{static_cast<uint8_t>(rb * kStep + kStep / 2),
             static_cast<uint8_t>(gb * kStep + kStep / 2),
             static_cast<uint8_t>(bb * kStep + kStep / 2)};
}

}  // namespace dls::cobra
