#ifndef DLS_COBRA_FRAME_H_
#define DLS_COBRA_FRAME_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace dls::cobra {

/// An RGB colour.
struct Rgb {
  uint8_t r = 0, g = 0, b = 0;

  bool operator==(const Rgb&) const = default;

  /// Manhattan distance in RGB space.
  int DistanceTo(const Rgb& other) const {
    return std::abs(int{r} - int{other.r}) + std::abs(int{g} - int{other.g}) +
           std::abs(int{b} - int{other.b});
  }
};

/// One video frame: a dense row-major RGB raster. The raw-data layer of
/// the COBRA model.
class Frame {
 public:
  Frame(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height * 3, 0) {}

  int width() const { return width_; }
  int height() const { return height_; }

  Rgb At(int x, int y) const {
    size_t i = Index(x, y);
    return Rgb{pixels_[i], pixels_[i + 1], pixels_[i + 2]};
  }

  void Set(int x, int y, Rgb c) {
    size_t i = Index(x, y);
    pixels_[i] = c.r;
    pixels_[i + 1] = c.g;
    pixels_[i + 2] = c.b;
  }

  void Fill(Rgb c) {
    for (int y = 0; y < height_; ++y) {
      for (int x = 0; x < width_; ++x) Set(x, y, c);
    }
  }

 private:
  size_t Index(int x, int y) const {
    return (static_cast<size_t>(y) * width_ + x) * 3;
  }

  int width_;
  int height_;
  std::vector<uint8_t> pixels_;
};

/// Abstract frame supplier. The synthetic generator renders frames on
/// demand so a video never needs to be materialised in memory — the
/// stand-in for decoding an MPEG stream.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  virtual int frame_count() const = 0;
  virtual Frame GetFrame(int index) const = 0;
};

}  // namespace dls::cobra

#endif  // DLS_COBRA_FRAME_H_
