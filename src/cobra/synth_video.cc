#include "cobra/synth_video.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dls::cobra {
namespace {

Rgb PaletteColor(CourtPalette palette) {
  switch (palette) {
    case CourtPalette::kGrass:
      return Rgb{60, 140, 60};
    case CourtPalette::kHard:
      return Rgb{40, 110, 150};
    case CourtPalette::kClay:
      return Rgb{190, 110, 60};
  }
  return Rgb{40, 110, 150};
}

constexpr Rgb kSkin{208, 162, 130};
constexpr Rgb kPlayerShirt{220, 40, 40};
constexpr Rgb kLineWhite{240, 240, 240};

/// Clamps and adds zero-mean noise to one channel.
uint8_t Noisy(int base, int noise) {
  int v = base + noise;
  return static_cast<uint8_t>(std::clamp(v, 0, 255));
}

}  // namespace

const char* ShotClassName(ShotClass c) {
  switch (c) {
    case ShotClass::kTennis:
      return "tennis";
    case ShotClass::kCloseup:
      return "close-up";
    case ShotClass::kAudience:
      return "audience";
    case ShotClass::kOther:
      return "other";
  }
  return "?";
}

const char* TrajectoryKindName(TrajectoryKind k) {
  switch (k) {
    case TrajectoryKind::kBaselineRally:
      return "baseline-rally";
    case TrajectoryKind::kApproachNet:
      return "approach-net";
    case TrajectoryKind::kServeVolley:
      return "serve-volley";
  }
  return "?";
}

int VideoScript::TotalFrames() const {
  int total = 0;
  for (const ShotScript& shot : shots) total += shot.num_frames;
  return total;
}

SyntheticVideo::SyntheticVideo(VideoScript script)
    : script_(std::move(script)) {
  shot_starts_.reserve(script_.shots.size());
  for (const ShotScript& shot : script_.shots) {
    shot_starts_.push_back(total_frames_);
    total_frames_ += shot.num_frames;
  }
}

SyntheticVideo::Placement SyntheticVideo::Place(int frame_index) const {
  assert(frame_index >= 0 && frame_index < total_frames_);
  // Binary search over shot start offsets.
  int lo = 0, hi = static_cast<int>(shot_starts_.size()) - 1;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    if (shot_starts_[mid] <= frame_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return Placement{lo, frame_index - shot_starts_[lo]};
}

void SyntheticVideo::PlayerPosition(const ShotScript& shot, int shot_index,
                                    int frame_in_shot, double* x,
                                    double* y) const {
  double w = script_.width;
  double h = script_.height;
  double t = shot.num_frames > 1
                 ? static_cast<double>(frame_in_shot) / (shot.num_frames - 1)
                 : 0.0;
  // Deterministic per-shot lateral phase.
  Rng rng(script_.seed * 1000003 + static_cast<uint64_t>(shot_index));
  double phase = rng.NextDouble() * 6.28318;
  double lateral = std::sin(t * 6.28318 * 1.5 + phase);

  const double baseline_y = h * 0.88;  // near-player baseline
  const double net_y = h * 0.50;       // net line

  switch (shot.trajectory) {
    case TrajectoryKind::kBaselineRally:
      *x = w * 0.5 + lateral * w * 0.28;
      *y = baseline_y - std::abs(lateral) * h * 0.04;
      break;
    case TrajectoryKind::kApproachNet:
      *x = w * 0.5 + lateral * w * 0.12 * (1.0 - t);
      *y = baseline_y + t * (net_y + 8 - baseline_y);
      break;
    case TrajectoryKind::kServeVolley: {
      // Hold at the baseline for the first half, then sprint to the
      // net — the long hold is what separates it from a plain
      // approach in the quantised observation stream.
      double run = t < 0.5 ? 0.0 : (t - 0.5) / 0.5;
      *x = w * 0.5 + lateral * w * 0.06;
      *y = baseline_y + run * (net_y + 4 - baseline_y);
      break;
    }
  }
}

Rgb SyntheticVideo::court_color() const {
  return PaletteColor(script_.palette);
}

Frame SyntheticVideo::GetFrame(int index) const {
  Placement place = Place(index);
  const ShotScript& shot = script_.shots[place.shot_index];
  Frame frame(script_.width, script_.height);
  switch (shot.type) {
    case ShotClass::kTennis:
      RenderTennis(&frame, place.shot_index, place.frame_in_shot);
      break;
    case ShotClass::kCloseup:
      RenderCloseup(&frame, place.shot_index, place.frame_in_shot);
      break;
    case ShotClass::kAudience:
      RenderAudience(&frame, place.shot_index, place.frame_in_shot);
      break;
    case ShotClass::kOther:
      RenderOther(&frame, place.shot_index, place.frame_in_shot);
      break;
  }
  return frame;
}

void SyntheticVideo::RenderTennis(Frame* frame, int shot_index,
                                  int frame_in_shot) const {
  const int w = frame->width();
  const int h = frame->height();
  Rgb court = PaletteColor(script_.palette);
  Rng rng(script_.seed ^ (static_cast<uint64_t>(shot_index) << 24 ^
                          static_cast<uint64_t>(frame_in_shot)));

  // Court background with mild sensor noise.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int n = static_cast<int>(rng.Uniform(13)) - 6;
      frame->Set(x, y, Rgb{Noisy(court.r, n), Noisy(court.g, n),
                           Noisy(court.b, n)});
    }
  }
  // Court lines: net at h/2, baselines and sidelines.
  auto hline = [&](int y) {
    if (y < 0 || y >= h) return;
    for (int x = w / 8; x < w - w / 8; ++x) frame->Set(x, y, kLineWhite);
  };
  auto vline = [&](int x) {
    if (x < 0 || x >= w) return;
    for (int y = h / 4; y < h - h / 32; ++y) frame->Set(x, y, kLineWhite);
  };
  hline(h / 2);
  hline(h / 2 + 1);          // the net is two pixels thick
  hline(h - h / 12);         // near baseline
  hline(h / 4);              // far baseline
  vline(w / 8);
  vline(w - w / 8);

  // The player: a shirt-coloured ellipse with a skin-coloured head.
  const ShotScript& shot = script_.shots[shot_index];
  double px, py;
  PlayerPosition(shot, shot_index, frame_in_shot, &px, &py);
  const double body_rx = w / 32.0, body_ry = h / 11.0;
  for (int y = static_cast<int>(py - body_ry); y <= py + body_ry; ++y) {
    for (int x = static_cast<int>(px - body_rx); x <= px + body_rx; ++x) {
      if (x < 0 || x >= w || y < 0 || y >= h) continue;
      double dx = (x - px) / body_rx, dy = (y - py) / body_ry;
      if (dx * dx + dy * dy <= 1.0) frame->Set(x, y, kPlayerShirt);
    }
  }
  const double head_r = w / 60.0;
  double hy = py - body_ry - head_r;
  for (int y = static_cast<int>(hy - head_r); y <= hy + head_r; ++y) {
    for (int x = static_cast<int>(px - head_r); x <= px + head_r; ++x) {
      if (x < 0 || x >= w || y < 0 || y >= h) continue;
      double dx = x - px, dy = y - hy;
      if (dx * dx + dy * dy <= head_r * head_r) frame->Set(x, y, kSkin);
    }
  }
}

void SyntheticVideo::RenderCloseup(Frame* frame, int shot_index,
                                   int frame_in_shot) const {
  const int w = frame->width();
  const int h = frame->height();
  Rng rng(script_.seed ^ (static_cast<uint64_t>(shot_index) << 24 ^
                          static_cast<uint64_t>(frame_in_shot)) ^
          0x5151);
  // Blurred dark background.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int n = static_cast<int>(rng.Uniform(17)) - 8;
      frame->Set(x, y, Rgb{Noisy(70, n), Noisy(70, n), Noisy(90, n)});
    }
  }
  // A large skin-coloured face filling ~40% of the frame.
  double cx = w * 0.5 + std::sin(frame_in_shot * 0.2) * w * 0.02;
  double cy = h * 0.45;
  double rx = w * 0.22, ry = h * 0.34;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double dx = (x - cx) / rx, dy = (y - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) {
        int n = static_cast<int>(rng.Uniform(9)) - 4;
        frame->Set(x, y,
                   Rgb{Noisy(kSkin.r, n), Noisy(kSkin.g, n), Noisy(kSkin.b, n)});
      }
    }
  }
}

void SyntheticVideo::RenderAudience(Frame* frame, int shot_index,
                                    int frame_in_shot) const {
  const int w = frame->width();
  const int h = frame->height();
  Rng rng(script_.seed ^ (static_cast<uint64_t>(shot_index) << 24 ^
                          static_cast<uint64_t>(frame_in_shot)) ^
          0xa0d1);
  // A crowd: 4x4 blocks of independently random clothing colours —
  // maximal histogram entropy, no dominant colour.
  for (int by = 0; by < h; by += 4) {
    for (int bx = 0; bx < w; bx += 4) {
      Rgb c{static_cast<uint8_t>(rng.Uniform(256)),
            static_cast<uint8_t>(rng.Uniform(256)),
            static_cast<uint8_t>(rng.Uniform(256))};
      for (int y = by; y < std::min(by + 4, h); ++y) {
        for (int x = bx; x < std::min(bx + 4, w); ++x) frame->Set(x, y, c);
      }
    }
  }
}

void SyntheticVideo::RenderOther(Frame* frame, int shot_index,
                                 int frame_in_shot) const {
  const int w = frame->width();
  const int h = frame->height();
  Rng rng(script_.seed ^ (static_cast<uint64_t>(shot_index) << 24 ^
                          static_cast<uint64_t>(frame_in_shot)) ^
          0x07e4);
  // Studio/graphics content: a bright grey gradient with a logo block
  // (kept in a brighter intensity band than the close-up background so
  // the two shot classes have distinct dominant colours).
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int g = 165 + (x * 50) / w + static_cast<int>(rng.Uniform(7)) - 3;
      frame->Set(x, y, Rgb{Noisy(g, 0), Noisy(g, 0), Noisy(g + 10, 0)});
    }
  }
  for (int y = h / 8; y < h / 4; ++y) {
    for (int x = w / 8; x < w / 3; ++x) frame->Set(x, y, Rgb{210, 180, 40});
  }
}

FrameTruth SyntheticVideo::TruthOf(int frame_index) const {
  Placement place = Place(frame_index);
  const ShotScript& shot = script_.shots[place.shot_index];
  FrameTruth truth;
  truth.shot_index = place.shot_index;
  truth.shot_class = shot.type;
  if (shot.type == ShotClass::kTennis) {
    double x, y;
    PlayerPosition(shot, place.shot_index, place.frame_in_shot, &x, &y);
    truth.player_x = x;
    truth.player_y = y;
  }
  return truth;
}

VideoScript MakeRandomScript(uint64_t seed, int num_shots,
                             int frames_per_shot, CourtPalette palette) {
  VideoScript script;
  script.seed = seed;
  script.palette = palette;
  Rng rng(seed);
  for (int i = 0; i < num_shots; ++i) {
    ShotScript shot;
    double roll = rng.NextDouble();
    if (roll < 0.5) {
      shot.type = ShotClass::kTennis;
    } else if (roll < 0.7) {
      shot.type = ShotClass::kCloseup;
    } else if (roll < 0.85) {
      shot.type = ShotClass::kAudience;
    } else {
      shot.type = ShotClass::kOther;
    }
    shot.num_frames =
        frames_per_shot + static_cast<int>(rng.Uniform(frames_per_shot / 2 + 1));
    double troll = rng.NextDouble();
    shot.trajectory = troll < 0.4   ? TrajectoryKind::kBaselineRally
                      : troll < 0.8 ? TrajectoryKind::kApproachNet
                                    : TrajectoryKind::kServeVolley;
    script.shots.push_back(shot);
  }
  return script;
}

}  // namespace dls::cobra
