#ifndef DLS_COBRA_SHOTS_H_
#define DLS_COBRA_SHOTS_H_

#include <vector>

#include "cobra/histogram.h"
#include "cobra/synth_video.h"

namespace dls::cobra {

/// A detected shot: [begin, end) frame range plus classification.
struct DetectedShot {
  int begin = 0;
  int end = 0;  ///< exclusive
  ShotClass type = ShotClass::kOther;
  int dominant_bin = 0;
};

/// Tuning knobs of the segment detector. Defaults work across all
/// three court palettes without per-video changes (the generalisation
/// the paper claims for its dominant-colour scheme).
struct SegmentOptions {
  /// Histogram L1 distance above which a boundary is declared.
  double boundary_threshold = 0.35;
  /// Skin ratio above which a shot is a close-up.
  double closeup_skin_ratio = 0.18;
  /// Histogram entropy above which a shot is an audience shot.
  double audience_entropy = 4.3;
  /// Minimum fraction of near-white pixels (court lines) for a shot to
  /// qualify as a court candidate.
  double court_line_ratio = 0.006;
  /// How many evenly spaced frames to sample per shot for
  /// classification (shot-level features are medians over samples).
  int classify_samples = 3;
};

/// Stage 1 of the tennis analysis (the `segment` detector of Fig. 7):
/// shot-boundary detection via colour-histogram differences between
/// neighbouring frames, followed by shot classification.
///
/// The court colour is not a parameter: it is estimated as the most
/// frequent dominant colour across all shots, which is what lets the
/// same detector handle grass, hard and clay courts unchanged.
std::vector<DetectedShot> SegmentAndClassify(
    const FrameSource& video, const SegmentOptions& options = {});

/// Shot boundaries only (begin indices of each shot), for tests that
/// want to check segmentation separately from classification.
std::vector<int> DetectBoundaries(const FrameSource& video,
                                  const SegmentOptions& options = {});

}  // namespace dls::cobra

#endif  // DLS_COBRA_SHOTS_H_
