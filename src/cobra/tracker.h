#ifndef DLS_COBRA_TRACKER_H_
#define DLS_COBRA_TRACKER_H_

#include <optional>
#include <vector>

#include "cobra/frame.h"
#include "cobra/synth_video.h"

namespace dls::cobra {

/// Shape features of the segmented player blob — the paper's feature
/// layer output: position, area, bounding box, mass centre,
/// orientation and eccentricity, plus the blob's dominant colour.
struct PlayerObservation {
  int frame = 0;
  bool found = false;
  double x = 0;            ///< mass centre x
  double y = 0;            ///< mass centre y
  double area = 0;         ///< pixels in the blob
  int bbox_x0 = 0, bbox_y0 = 0, bbox_x1 = 0, bbox_y1 = 0;
  double orientation = 0;  ///< radians of the major axis
  double eccentricity = 0; ///< 0 = circle, -> 1 = elongated
  Rgb dominant{};
};

struct TrackerOptions {
  /// Colour distance from the court estimate above which a pixel is
  /// foreground.
  int foreground_threshold = 120;
  /// Half-size of the local search window around the predicted
  /// position in subsequent frames.
  int search_window = 40;
  /// Blobs smaller than this are noise.
  int min_area = 20;
  /// Coarse sampling stride of the initial full-frame segmentation
  /// (the paper's "initial quadratic segmentation").
  int initial_stride = 4;
};

/// The `tennis` detector of Fig. 7: segments and tracks the (near)
/// player over a shot's frames.
///
/// Frame 0 is segmented with a coarse full-frame scan against the
/// estimated court-colour statistics; each following frame predicts
/// the player position from the previous two observations and
/// re-segments only a local window around the prediction.
///
/// `court` is the colour estimate from the segment stage.
std::vector<PlayerObservation> TrackPlayer(const FrameSource& video,
                                           int begin, int end, Rgb court,
                                           const TrackerOptions& options = {});

/// Segments the player in a single frame by scanning the given window
/// (used by TrackPlayer; exposed for unit tests).
std::optional<PlayerObservation> SegmentPlayer(const Frame& frame, Rgb court,
                                               int x0, int y0, int x1, int y1,
                                               const TrackerOptions& options);

}  // namespace dls::cobra

#endif  // DLS_COBRA_TRACKER_H_
