#include "cobra/shots.h"

#include <algorithm>
#include <map>

namespace dls::cobra {

std::vector<int> DetectBoundaries(const FrameSource& video,
                                  const SegmentOptions& options) {
  std::vector<int> boundaries;
  if (video.frame_count() == 0) return boundaries;
  boundaries.push_back(0);
  ColorHistogram prev = ColorHistogram::Of(video.GetFrame(0));
  for (int i = 1; i < video.frame_count(); ++i) {
    ColorHistogram cur = ColorHistogram::Of(video.GetFrame(i));
    if (prev.DistanceTo(cur) > options.boundary_threshold) {
      boundaries.push_back(i);
    }
    prev = cur;
  }
  return boundaries;
}

namespace {

/// Per-shot classification features, medianised over sampled frames.
struct ShotFeatures {
  int dominant_bin = 0;
  double skin_ratio = 0;
  double entropy = 0;
  double variance = 0;
  double white_ratio = 0;
};

ShotFeatures SampleShot(const FrameSource& video, int begin, int end,
                        int samples) {
  samples = std::max(1, samples);
  std::vector<int> dominant;
  std::vector<double> skin, entropy, variance, white;
  for (int s = 0; s < samples; ++s) {
    int frame_index =
        begin + static_cast<int>((static_cast<int64_t>(end - begin) * s +
                                  (end - begin) / 2) /
                                 samples);
    frame_index = std::min(frame_index, end - 1);
    Frame frame = video.GetFrame(frame_index);
    ColorHistogram hist = ColorHistogram::Of(frame);
    dominant.push_back(hist.DominantBin());
    skin.push_back(SkinPixelRatio(frame));
    entropy.push_back(hist.Entropy());
    variance.push_back(hist.variance());
    white.push_back(WhitePixelRatio(frame));
  }
  auto median = [](std::vector<double>* v) {
    std::sort(v->begin(), v->end());
    return (*v)[v->size() / 2];
  };
  ShotFeatures features;
  std::sort(dominant.begin(), dominant.end());
  features.dominant_bin = dominant[dominant.size() / 2];
  features.skin_ratio = median(&skin);
  features.entropy = median(&entropy);
  features.variance = median(&variance);
  features.white_ratio = median(&white);
  return features;
}

}  // namespace

std::vector<DetectedShot> SegmentAndClassify(const FrameSource& video,
                                             const SegmentOptions& options) {
  std::vector<DetectedShot> shots;
  std::vector<int> boundaries = DetectBoundaries(video, options);
  if (boundaries.empty()) return shots;

  std::vector<ShotFeatures> features;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    int begin = boundaries[i];
    int end = i + 1 < boundaries.size() ? boundaries[i + 1]
                                        : video.frame_count();
    DetectedShot shot;
    shot.begin = begin;
    shot.end = end;
    shots.push_back(shot);
    features.push_back(
        SampleShot(video, begin, end, options.classify_samples));
  }

  // Estimate the court colour: the dominant colour occurring most
  // frequently across the video, weighted by shot duration — play
  // dominates a match's airtime, so the court colour wins the vote.
  // Skin-dominated shots are close-ups and high-entropy shots are
  // audience shots whatever their dominant colour; neither votes for
  // the court colour (a close-up's dominant bin is its background, an
  // audience shot's is crowd noise). Only the remaining shots vote,
  // weighted by duration — play dominates a match's airtime, so the
  // court colour wins. With no court-like shot at all, nothing is
  // classified tennis.
  auto is_closeup = [&](const ShotFeatures& f) {
    return f.skin_ratio > options.closeup_skin_ratio;
  };
  auto is_audience = [&](const ShotFeatures& f) {
    return f.entropy > options.audience_entropy;
  };
  // Court candidates additionally show the white court markings.
  auto is_court_like = [&](const ShotFeatures& f) {
    return f.white_ratio >= options.court_line_ratio;
  };
  std::map<int, int64_t> dominant_votes;
  for (size_t i = 0; i < shots.size(); ++i) {
    if (is_closeup(features[i]) || is_audience(features[i]) ||
        !is_court_like(features[i])) {
      continue;
    }
    dominant_votes[features[i].dominant_bin] += shots[i].end - shots[i].begin;
  }
  int court_bin = -1;
  int64_t best_votes = 0;
  for (const auto& [bin, votes] : dominant_votes) {
    if (votes > best_votes) {
      best_votes = votes;
      court_bin = bin;
    }
  }

  for (size_t i = 0; i < shots.size(); ++i) {
    const ShotFeatures& f = features[i];
    shots[i].dominant_bin = f.dominant_bin;
    if (is_closeup(f)) {
      shots[i].type = ShotClass::kCloseup;
    } else if (is_audience(f)) {
      shots[i].type = ShotClass::kAudience;
    } else if (f.dominant_bin == court_bin && is_court_like(f)) {
      shots[i].type = ShotClass::kTennis;
    } else {
      shots[i].type = ShotClass::kOther;
    }
  }
  return shots;
}

}  // namespace dls::cobra
