#ifndef DLS_COBRA_HMM_H_
#define DLS_COBRA_HMM_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dls::cobra {

/// A discrete hidden Markov model λ = (A, B, π) over integer
/// observation symbols. Implements the three classical problems the
/// paper's stochastic event extension relies on ([PJZ01] recognises
/// tennis strokes with HMMs):
///   - evaluation: LogLikelihood via the scaled forward algorithm,
///   - decoding: Viterbi,
///   - learning: Baum-Welch EM from unlabelled sequences.
class Hmm {
 public:
  /// Uniformly initialised model with slight symmetry-breaking noise.
  Hmm(int num_states, int num_symbols, uint64_t seed);

  int num_states() const { return num_states_; }
  int num_symbols() const { return num_symbols_; }

  double transition(int from, int to) const { return a_[from][to]; }
  double emission(int state, int symbol) const { return b_[state][symbol]; }
  double initial(int state) const { return pi_[state]; }

  /// Direct parameter access for hand-built models in tests.
  void SetTransition(const std::vector<std::vector<double>>& a) { a_ = a; }
  void SetEmission(const std::vector<std::vector<double>>& b) { b_ = b; }
  void SetInitial(const std::vector<double>& pi) { pi_ = pi; }

  /// log P(observations | λ) via the scaled forward algorithm.
  /// Returns -inf for an impossible sequence.
  double LogLikelihood(const std::vector<int>& observations) const;

  /// Most probable state sequence (Viterbi).
  std::vector<int> Viterbi(const std::vector<int>& observations) const;

  /// Baum-Welch re-estimation over a training set, `iterations` EM
  /// rounds (with per-round additive smoothing so no probability
  /// collapses to zero).
  Status Train(const std::vector<std::vector<int>>& sequences,
               int iterations);

 private:
  int num_states_;
  int num_symbols_;
  std::vector<std::vector<double>> a_;   // state x state
  std::vector<std::vector<double>> b_;   // state x symbol
  std::vector<double> pi_;
};

/// A bank of per-class HMMs used as a maximum-likelihood classifier —
/// the COBRA stochastic event-recognition extension.
class HmmClassifier {
 public:
  /// One HMM per class, each with `num_states` states.
  HmmClassifier(int num_classes, int num_states, int num_symbols,
                uint64_t seed);

  /// Trains class `c` on its example sequences.
  Status TrainClass(int c, const std::vector<std::vector<int>>& sequences,
                    int iterations = 20);

  /// argmax_c log P(observations | λ_c).
  int Classify(const std::vector<int>& observations) const;

  const Hmm& model(int c) const { return models_[c]; }

 private:
  std::vector<Hmm> models_;
};

}  // namespace dls::cobra

#endif  // DLS_COBRA_HMM_H_
