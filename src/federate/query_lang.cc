#include "federate/query_lang.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dls::federate {
namespace {

/// Token kinds of the hand-rolled lexer. Keywords (text, webspace,
/// cobra, AND, OR) stay kIdent here; the parser matches them
/// case-insensitively so the lexer has no reserved-word table.
enum class Tok : uint8_t {
  kEnd,
  kIdent,
  kString,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEq,       // =
  kNotEq,    // !=
  kTilde,    // ~
  kGe,       // >=
};

struct Token {
  Tok kind = Tok::kEnd;
  size_t pos = 0;       ///< byte offset of the first character
  /// Ident spelling, decoded string payload, or — for kNumber — the
  /// zero-stripped source lexeme (see NormalizeNumberLexeme).
  std::string text;
  double number = 0.0;  ///< kNumber value (in the written unit)
  uint8_t unit = 0;     ///< kNumber: 0 none, 1 's', 2 'ms'
};

Status ErrAt(size_t pos, const std::string& message) {
  char prefix[48];
  std::snprintf(prefix, sizeof(prefix), "federated query, byte %zu: ", pos);
  return Status::ParseError(prefix + message);
}

bool IdentStart(unsigned char c) { return std::isalpha(c) != 0 || c == '_'; }
bool IdentChar(unsigned char c) { return std::isalnum(c) != 0 || c == '_'; }

bool IsIdentShaped(std::string_view s) {
  if (s.empty() || !IdentStart(static_cast<unsigned char>(s[0]))) return false;
  for (char c : s) {
    if (!IdentChar(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Strips redundant zeros from a digits[.digits] lexeme ("007" -> "7",
/// "1.50" -> "1.5", "5.0" -> "5", "0.0" -> "0"). Pure string surgery —
/// no round-trip through double — so spelling variants of one value
/// canonicalise identically at any precision.
std::string NormalizeNumberLexeme(std::string_view s) {
  const size_t dot = s.find('.');
  std::string_view ip = dot == std::string_view::npos ? s : s.substr(0, dot);
  std::string_view fp =
      dot == std::string_view::npos ? std::string_view{} : s.substr(dot + 1);
  size_t lead = 0;
  while (lead + 1 < ip.size() && ip[lead] == '0') ++lead;
  ip = ip.substr(lead);
  size_t frac = fp.size();
  while (frac > 0 && fp[frac - 1] == '0') --frac;
  fp = fp.substr(0, frac);
  std::string out(ip);
  if (!fp.empty()) {
    out += '.';
    out += fp;
  }
  return out;
}

bool KeywordIs(const Token& token, std::string_view keyword) {
  if (token.kind != Tok::kIdent) return false;
  if (token.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(token.text[i])) !=
        keyword[i]) {
      return false;
    }
  }
  return true;
}

/// One-token-lookahead lexer over the bounded input. Every byte is
/// classified; anything unexpected is a positioned kParseError, never
/// a skip — truncating the input at any byte can only produce "cut a
/// token short" or "query ended inside ..." style errors (fuzzed).
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Lexes the next token into `out`.
  Status Next(Token* out) {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_])) != 0) {
      ++pos_;
    }
    out->pos = pos_;
    out->text.clear();
    out->number = 0.0;
    out->unit = 0;
    if (pos_ >= input_.size()) {
      out->kind = Tok::kEnd;
      return Status::Ok();
    }
    const unsigned char c = static_cast<unsigned char>(input_[pos_]);
    switch (c) {
      case '(': out->kind = Tok::kLParen; ++pos_; return Status::Ok();
      case ')': out->kind = Tok::kRParen; ++pos_; return Status::Ok();
      case ',': out->kind = Tok::kComma; ++pos_; return Status::Ok();
      case '.': out->kind = Tok::kDot; ++pos_; return Status::Ok();
      case '=': out->kind = Tok::kEq; ++pos_; return Status::Ok();
      case '~': out->kind = Tok::kTilde; ++pos_; return Status::Ok();
      case '!':
        if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '=') {
          return ErrAt(pos_, "expected '=' after '!'");
        }
        out->kind = Tok::kNotEq;
        pos_ += 2;
        return Status::Ok();
      case '>':
        if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '=') {
          return ErrAt(pos_, "expected '=' after '>'");
        }
        out->kind = Tok::kGe;
        pos_ += 2;
        return Status::Ok();
      case '"': return LexString(out);
      default: break;
    }
    if (std::isdigit(c) != 0) return LexNumber(out);
    if (IdentStart(c)) return LexIdent(out);
    return ErrAt(pos_, "unexpected character");
  }

 private:
  Status LexString(Token* out) {
    out->kind = Tok::kString;
    ++pos_;  // opening quote
    while (pos_ < input_.size()) {
      const unsigned char c = static_cast<unsigned char>(input_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c == '\\') {
        if (pos_ + 1 >= input_.size()) {
          return ErrAt(pos_, "query ended inside a string escape");
        }
        const char esc = input_[pos_ + 1];
        if (esc != '"' && esc != '\\') {
          return ErrAt(pos_, "unknown string escape (only \\\" and \\\\)");
        }
        out->text.push_back(esc);
        pos_ += 2;
        continue;
      }
      if (c < 0x20) {
        return ErrAt(pos_, "control byte inside a string");
      }
      out->text.push_back(static_cast<char>(c));
      ++pos_;
    }
    return ErrAt(out->pos, "query ended inside a string");
  }

  Status LexNumber(Token* out) {
    out->kind = Tok::kNumber;
    const size_t begin = pos_;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < input_.size() && input_[pos_] == '.') {
      if (pos_ + 1 >= input_.size() ||
          std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])) == 0) {
        return ErrAt(pos_, "expected digits after the decimal point");
      }
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_])) != 0) {
        ++pos_;
      }
    }
    // strtod on a bounded, digits-and-one-dot lexeme: cannot fail.
    const std::string lexeme(input_.substr(begin, pos_ - begin));
    out->number = std::strtod(lexeme.c_str(), nullptr);
    out->text = NormalizeNumberLexeme(lexeme);
    // Optional duration unit glued to the digits: 5s, 200ms.
    const size_t unit_begin = pos_;
    while (pos_ < input_.size() &&
           IdentChar(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    const std::string_view unit = input_.substr(unit_begin, pos_ - unit_begin);
    if (unit.empty()) {
      out->unit = 0;
    } else if (unit == "s") {
      out->unit = 1;
    } else if (unit == "ms") {
      out->unit = 2;
    } else {
      return ErrAt(unit_begin, "unknown duration unit (use 's' or 'ms')");
    }
    return Status::Ok();
  }

  Status LexIdent(Token* out) {
    out->kind = Tok::kIdent;
    const size_t begin = pos_;
    while (pos_ < input_.size() &&
           IdentChar(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    out->text.assign(input_.substr(begin, pos_ - begin));
    return Status::Ok();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

/// Recursive-descent parser with explicit depth and size budgets.
class Parser {
 public:
  explicit Parser(std::string_view input) : lexer_(input) {}

  Result<FederatedQuery> Parse() {
    DLS_RETURN_IF_ERROR(Advance());
    FederatedQuery query;
    DLS_ASSIGN_OR_RETURN(query.root, ParseOr(/*depth=*/0));
    if (cur_.kind != Tok::kEnd) {
      return ErrAt(cur_.pos, "trailing input after the query");
    }
    return query;
  }

 private:
  Status Advance() { return lexer_.Next(&cur_); }

  Status Expect(Tok kind, const char* what) {
    if (cur_.kind != kind) return ErrAt(cur_.pos, std::string("expected ") + what);
    return Advance();
  }

  Result<QueryNode> ParseOr(size_t depth) {
    QueryNode node;
    DLS_ASSIGN_OR_RETURN(QueryNode first, ParseAnd(depth));
    if (!KeywordIs(cur_, "or")) return first;
    node.kind = QueryNode::Kind::kOr;
    node.children.push_back(std::move(first));
    while (KeywordIs(cur_, "or")) {
      DLS_RETURN_IF_ERROR(Advance());
      DLS_ASSIGN_OR_RETURN(QueryNode next, ParseAnd(depth));
      node.children.push_back(std::move(next));
    }
    return node;
  }

  Result<QueryNode> ParseAnd(size_t depth) {
    QueryNode node;
    DLS_ASSIGN_OR_RETURN(QueryNode first, ParseUnary(depth));
    if (!KeywordIs(cur_, "and")) return first;
    node.kind = QueryNode::Kind::kAnd;
    node.children.push_back(std::move(first));
    while (KeywordIs(cur_, "and")) {
      DLS_RETURN_IF_ERROR(Advance());
      DLS_ASSIGN_OR_RETURN(QueryNode next, ParseUnary(depth));
      node.children.push_back(std::move(next));
    }
    return node;
  }

  Result<QueryNode> ParseUnary(size_t depth) {
    if (depth >= kMaxDepth) {
      return ErrAt(cur_.pos, "query nests too deep");
    }
    if (cur_.kind == Tok::kLParen) {
      DLS_RETURN_IF_ERROR(Advance());
      DLS_ASSIGN_OR_RETURN(QueryNode inner, ParseOr(depth + 1));
      DLS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return inner;
    }
    return ParsePredicate();
  }

  Result<QueryNode> ParsePredicate() {
    if (cur_.kind != Tok::kIdent) {
      return ErrAt(cur_.pos, "expected a predicate (text/webspace/cobra)");
    }
    if (++predicates_ > kMaxPredicates) {
      return ErrAt(cur_.pos, "too many predicates");
    }
    QueryNode node;
    node.kind = QueryNode::Kind::kPred;
    if (KeywordIs(cur_, "text")) {
      node.pred.kind = PredKind::kText;
      DLS_RETURN_IF_ERROR(Advance());
      DLS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after text"));
      if (cur_.kind != Tok::kString) {
        return ErrAt(cur_.pos, "text() takes one quoted string");
      }
      if (cur_.text.empty()) {
        return ErrAt(cur_.pos, "text() query must not be empty");
      }
      node.pred.text = std::move(cur_.text);
      DLS_RETURN_IF_ERROR(Advance());
      DLS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after the text string"));
      return node;
    }
    const bool webspace = KeywordIs(cur_, "webspace");
    if (!webspace && !KeywordIs(cur_, "cobra")) {
      return ErrAt(cur_.pos, "unknown predicate '" + cur_.text +
                                 "' (expected text/webspace/cobra)");
    }
    const size_t pred_pos = cur_.pos;
    node.pred.kind = webspace ? PredKind::kWebspace : PredKind::kCobra;
    DLS_RETURN_IF_ERROR(Advance());
    DLS_RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after the predicate name"));
    while (true) {
      if (node.pred.constraints.size() >= kMaxConstraints) {
        return ErrAt(cur_.pos, "too many constraints in one predicate");
      }
      DLS_ASSIGN_OR_RETURN(Constraint constraint, ParseConstraint(webspace));
      node.pred.constraints.push_back(std::move(constraint));
      if (cur_.kind == Tok::kComma) {
        DLS_RETURN_IF_ERROR(Advance());
        continue;
      }
      break;
    }
    DLS_RETURN_IF_ERROR(Expect(Tok::kRParen, "')' after the constraints"));
    DLS_RETURN_IF_ERROR(ValidatePredicate(node.pred, webspace, pred_pos));
    return node;
  }

  Result<Constraint> ParseConstraint(bool webspace) {
    Constraint constraint;
    if (cur_.kind != Tok::kIdent) {
      return ErrAt(cur_.pos, "expected a constraint path");
    }
    constraint.path = std::move(cur_.text);
    DLS_RETURN_IF_ERROR(Advance());
    size_t segments = 1;
    while (cur_.kind == Tok::kDot) {
      DLS_RETURN_IF_ERROR(Advance());
      if (cur_.kind != Tok::kIdent) {
        return ErrAt(cur_.pos, "expected an attribute after '.'");
      }
      if (++segments > 2) {
        return ErrAt(cur_.pos, "paths may have at most two steps");
      }
      if (!webspace) {
        return ErrAt(cur_.pos, "cobra constraints take single-step paths");
      }
      constraint.path += '.';
      constraint.path += cur_.text;
      DLS_RETURN_IF_ERROR(Advance());
    }
    switch (cur_.kind) {
      case Tok::kEq: constraint.op = ConstraintOp::kEq; break;
      case Tok::kNotEq: constraint.op = ConstraintOp::kNotEq; break;
      case Tok::kTilde: constraint.op = ConstraintOp::kContains; break;
      case Tok::kGe: constraint.op = ConstraintOp::kAtLeast; break;
      default:
        return ErrAt(cur_.pos, "expected '=', '!=', '~' or '>='");
    }
    const size_t op_pos = cur_.pos;
    DLS_RETURN_IF_ERROR(Advance());
    if (cur_.kind == Tok::kNumber) {
      constraint.numeric = true;
      constraint.number = cur_.number;
      constraint.lexeme = std::move(cur_.text);
      constraint.unit = cur_.unit;
      if (constraint.op == ConstraintOp::kContains) {
        return ErrAt(op_pos, "'~' needs a string value");
      }
    } else if (cur_.kind == Tok::kString || cur_.kind == Tok::kIdent) {
      constraint.value = std::move(cur_.text);
      if (constraint.op == ConstraintOp::kAtLeast) {
        return ErrAt(op_pos, "'>=' needs a numeric value");
      }
    } else {
      return ErrAt(cur_.pos, "expected a constraint value");
    }
    DLS_RETURN_IF_ERROR(Advance());
    return constraint;
  }

  /// Per-predicate semantic checks the backends rely on.
  Status ValidatePredicate(const Predicate& pred, bool webspace,
                           size_t pos) {
    const std::string_view anchor = webspace ? "class" : "event";
    size_t anchors = 0;
    for (const Constraint& c : pred.constraints) {
      if (c.path == anchor) {
        ++anchors;
        if (c.op != ConstraintOp::kEq || c.numeric || c.value.empty()) {
          return ErrAt(pos, std::string(anchor) +
                                " must be '=' a non-empty name");
        }
      }
      if (!webspace && c.path == "min_len" && !c.numeric) {
        return ErrAt(pos, "min_len needs a numeric value");
      }
    }
    if (anchors != 1) {
      return ErrAt(pos, std::string(webspace ? "webspace()" : "cobra()") +
                            " needs exactly one " + std::string(anchor) +
                            "= constraint");
    }
    return Status::Ok();
  }

  Lexer lexer_;
  Token cur_;
  size_t predicates_ = 0;
};

void AppendQuoted(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Shortest fixed-notation spelling that strtod()s back to exactly
/// `v`. The grammar has no exponent form, so "%g" (which renders
/// 1000000 as "1e+06" and truncates to 6 significant digits) would
/// break the parse/render fixed point. Only the fallback path for
/// constraints built in code — parsed constraints carry their source
/// lexeme.
void AppendPlainDouble(double v, std::string* out) {
  // Worst case: ~309 integer digits (DBL_MAX) + '.' + 340 fractional
  // digits (enough for the smallest subnormals) + NUL.
  char buf[704];
  for (int prec = 0; prec <= 340; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  *out += buf;
}

void AppendNumber(const Constraint& c, std::string* out) {
  if (!c.lexeme.empty()) {
    *out += c.lexeme;
  } else {
    AppendPlainDouble(c.number, out);
  }
  if (c.unit == 1) *out += 's';
  if (c.unit == 2) *out += "ms";
}

void AppendConstraint(const Constraint& c, std::string* out) {
  *out += c.path;
  switch (c.op) {
    case ConstraintOp::kEq: *out += '='; break;
    case ConstraintOp::kNotEq: *out += "!="; break;
    case ConstraintOp::kContains: *out += '~'; break;
    case ConstraintOp::kAtLeast: *out += ">="; break;
  }
  if (c.numeric) {
    AppendNumber(c, out);
  } else if (IsIdentShaped(c.value)) {
    *out += c.value;  // bare and quoted ident-shaped values unify
  } else {
    AppendQuoted(c.value, out);
  }
}

void AppendNode(const QueryNode& node, std::string* out) {
  switch (node.kind) {
    case QueryNode::Kind::kPred:
      *out += ToString(node.pred);
      return;
    case QueryNode::Kind::kAnd:
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *out += " AND ";
        const bool parens =
            node.children[i].kind == QueryNode::Kind::kOr;
        if (parens) *out += '(';
        AppendNode(node.children[i], out);
        if (parens) *out += ')';
      }
      return;
    case QueryNode::Kind::kOr:
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) *out += " OR ";
        AppendNode(node.children[i], out);
      }
      return;
  }
}

}  // namespace

Result<FederatedQuery> ParseFederatedQuery(std::string_view input) {
  if (input.size() > kMaxQueryBytes) {
    return Status::ParseError("federated query exceeds the size limit");
  }
  return Parser(input).Parse();
}

std::string ToString(const Predicate& pred) {
  std::string out;
  switch (pred.kind) {
    case PredKind::kText:
      out = "text(";
      AppendQuoted(pred.text, &out);
      out += ')';
      return out;
    case PredKind::kWebspace: out = "webspace("; break;
    case PredKind::kCobra: out = "cobra("; break;
  }
  for (size_t i = 0; i < pred.constraints.size(); ++i) {
    if (i > 0) out += ", ";
    AppendConstraint(pred.constraints[i], &out);
  }
  out += ')';
  return out;
}

std::string ToString(const QueryNode& node) {
  std::string out;
  AppendNode(node, &out);
  return out;
}

std::string ToString(const FederatedQuery& query) {
  return ToString(query.root);
}

size_t CountPredicates(const QueryNode& node) {
  if (node.kind == QueryNode::Kind::kPred) return 1;
  size_t count = 0;
  for (const QueryNode& child : node.children) {
    count += CountPredicates(child);
  }
  return count;
}

}  // namespace dls::federate
