#ifndef DLS_FEDERATE_PLANNER_H_
#define DLS_FEDERATE_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "federate/backend.h"
#include "federate/query_lang.h"

namespace dls::federate {

/// One filter step of a plan: a top-level conjunct (a predicate or an
/// OR group) with the planner's estimates attached.
struct PlanStep {
  QueryNode node;
  double selectivity = 1.0;  ///< estimated surviving fraction
  double cost = 0.0;         ///< estimated evaluation cost (advisory)
};

/// An executable mediation plan. The executor runs `steps` in order,
/// intersecting candidate sets and short-circuiting on empty, then —
/// when has_ranker — pushes the surviving set down into ranked text
/// evaluation.
struct Plan {
  bool has_ranker = false;
  Predicate ranker;             ///< the unique top-level text() conjunct
  std::vector<PlanStep> steps;  ///< filters, cheapest/most-selective first

  /// Human-readable rendering, e.g.
  ///   "cobra(event=rally, min_len>=5s)[sel=0.03] -> webspace(...)
  ///    [sel=0.25] -> rank text(\"net play\") with pushdown".
  /// Surfaces in ServeStats so operators can see why a federated query
  /// was cheap or expensive.
  std::string ToString() const;
};

/// Builds a plan for `query` over `backends`:
///
///  - Flattens the top-level conjunction. The unique top-level text()
///    conjunct (at most one allowed) becomes the ranking predicate;
///    every other conjunct — including OR groups and any text()
///    nested inside them, which acts as a boolean contains-a-stem
///    filter — becomes a filter step.
///  - Validates every leaf predicate against its backend (missing
///    backend or Accepts() failure => kInvalidArgument).
///  - Orders filter steps by (selectivity asc, cost asc, source order)
///    so the cheapest, most selective predicate shrinks the candidate
///    set first. Estimates: sel(pred) from the backend, sel(AND) = min
///    over children, sel(OR) = capped sum over children.
///
/// Pure function of (query, backends) — deterministic, no evaluation.
Result<Plan> BuildPlan(const FederatedQuery& query, const BackendSet& backends);

}  // namespace dls::federate

#endif  // DLS_FEDERATE_PLANNER_H_
