#include "federate/backend.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string_view>

#include "ir/postings.h"

namespace dls::federate {

namespace {

/// The text corpus url convention: `<entity>#<attr>` or bare
/// `<entity>` (core::SearchEngine::IndexObjectText).
std::string_view EntityOf(std::string_view url) {
  const size_t hash = url.find('#');
  return hash == std::string_view::npos ? url : url.substr(0, hash);
}

/// Full-string numeric parse; false when `text` is not a number.
bool ParseNumber(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// attr~"w": some whitespace/punctuation-delimited token of the
/// attribute text contains the value, case-insensitively.
bool TokenContains(const std::string& text, const std::string& needle_lower) {
  const std::string hay = ToLower(text);
  size_t i = 0;
  while (i < hay.size()) {
    while (i < hay.size() &&
           !std::isalnum(static_cast<unsigned char>(hay[i]))) {
      ++i;
    }
    size_t j = i;
    while (j < hay.size() && std::isalnum(static_cast<unsigned char>(hay[j]))) {
      ++j;
    }
    if (j > i && std::string_view(hay).substr(i, j - i).find(needle_lower) !=
                     std::string_view::npos) {
      return true;
    }
    i = j;
  }
  return false;
}

/// Does the object's own attribute satisfy `c`? `attr` may be null
/// (the object lacks the attribute): only != matches then.
bool AttrMatches(const webspace::AttrValue* attr, const Constraint& c) {
  switch (c.op) {
    case ConstraintOp::kEq: {
      if (attr == nullptr) return false;
      if (c.numeric) {
        double v = 0.0;
        return ParseNumber(attr->text, &v) && v == c.number;
      }
      return attr->text == c.value || (!attr->src.empty() && attr->src == c.value);
    }
    case ConstraintOp::kNotEq: {
      Constraint eq = c;
      eq.op = ConstraintOp::kEq;
      return !AttrMatches(attr, eq);
    }
    case ConstraintOp::kContains:
      return attr != nullptr && TokenContains(attr->text, ToLower(c.value));
    case ConstraintOp::kAtLeast: {
      if (attr == nullptr) return false;
      double v = 0.0;
      return ParseNumber(attr->text, &v) && v >= c.number;
    }
  }
  return false;
}

/// Splits a (parser-validated, <= 2 step) constraint path.
void SplitPath(const std::string& path, std::string_view* first,
               std::string_view* second) {
  const size_t dot = path.find('.');
  if (dot == std::string::npos) {
    *first = path;
    *second = {};
  } else {
    *first = std::string_view(path).substr(0, dot);
    *second = std::string_view(path).substr(dot + 1);
  }
}

/// Visits every doc id of a posting list, reading through the packed
/// encoding when the SoA payload was released (mmap'd segments).
template <typename Fn>
void ForEachPostingDoc(const ir::PostingList& list, Fn&& fn) {
  if (list.payload_released()) {
    ir::DocId docs[ir::kPostingBlockSize];
    int32_t tfs[ir::kPostingBlockSize];
    for (size_t b = 0; b < list.num_blocks(); ++b) {
      const size_t count = list.DecodePackedBlock(b, docs, tfs);
      for (size_t i = 0; i < count; ++i) fn(docs[i]);
    }
    return;
  }
  for (size_t i = 0; i < list.size(); ++i) fn(list.doc(i));
}

}  // namespace

std::vector<std::string> SplitQueryWords(const std::string& text) {
  std::vector<std::string> words;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t j = i;
    while (j < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    if (j > i) words.push_back(text.substr(i, j - i));
    i = j;
  }
  return words;
}

CandidateSet IntersectSets(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

CandidateSet UnionSets(const CandidateSet& a, const CandidateSet& b) {
  CandidateSet out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// ---------------------------------------------------------------------------
// WebspaceBackend

WebspaceBackend::WebspaceBackend(const webspace::WebspaceInstance* instance)
    : instance_(instance) {
  cap_.name = "webspace";
  cap_.supports_ranking = false;
  cap_.supports_pushdown = false;
  // Association-following makes a webspace probe pricier than a flat
  // table scan but far cheaper than posting-list work.
  cap_.cost_per_candidate = 4.0;
}

Status WebspaceBackend::Accepts(const Predicate& pred) const {
  if (pred.kind != PredKind::kWebspace) {
    return Status::InvalidArgument("webspace backend got non-webspace predicate");
  }
  // The parser guarantees exactly one class= anchor, <= 2 path steps
  // and operator/value type agreement. Unknown class or association
  // names are not errors — they denote the empty/unconstrained set —
  // so conceptual queries stay valid across schema evolution.
  return Status::Ok();
}

double WebspaceBackend::EstimateSelectivity(const Predicate& pred) const {
  const size_t total = instance_->object_count();
  if (total == 0) return 0.0;
  std::string cls;
  size_t extra = 0;
  for (const Constraint& c : pred.constraints) {
    if (c.path == "class") {
      cls = c.value;
    } else {
      ++extra;
    }
  }
  double sel = static_cast<double>(instance_->ObjectsOfClass(cls).size()) /
               static_cast<double>(total);
  // Each further constraint is assumed to halve the class — rough, but
  // deterministic and monotone in constraint count, which is all the
  // planner's ordering needs.
  for (size_t i = 0; i < extra; ++i) sel *= 0.5;
  return std::min(1.0, std::max(0.0, sel));
}

Result<CandidateSet> WebspaceBackend::EvalFilter(const Predicate& pred) const {
  DLS_RETURN_IF_ERROR(Accepts(pred));
  std::string cls;
  for (const Constraint& c : pred.constraints) {
    if (c.path == "class" && c.op == ConstraintOp::kEq) cls = c.value;
  }
  // ObjectsOfClass walks the id-ordered object map, so candidates are
  // born sorted and duplicate-free.
  std::vector<const webspace::WebObject*> objects =
      instance_->ObjectsOfClass(cls);
  CandidateSet out;
  for (const webspace::WebObject* obj : objects) {
    bool keep = true;
    for (const Constraint& c : pred.constraints) {
      if (c.path == "class") continue;
      std::string_view first, second;
      SplitPath(c.path, &first, &second);
      if (second.empty()) {
        if (!AttrMatches(obj->FindAttribute(first), c)) {
          keep = false;
          break;
        }
      } else {
        // Association step: some linked object must satisfy the
        // constraint (for '!=': no linked object may equal the value).
        const std::vector<std::string> linked =
            instance_->Linked(first, obj->id);
        const bool negated = c.op == ConstraintOp::kNotEq;
        Constraint leaf = c;
        if (negated) leaf.op = ConstraintOp::kEq;
        bool any = false;
        for (const std::string& id : linked) {
          const webspace::WebObject* to = instance_->FindObject(id);
          if (to != nullptr && AttrMatches(to->FindAttribute(second), leaf)) {
            any = true;
            break;
          }
        }
        if (negated ? any : !any) {
          keep = false;
          break;
        }
      }
    }
    if (keep) out.push_back(obj->id);
  }
  return out;
}

// ---------------------------------------------------------------------------
// CobraBackend

CobraBackend::CobraBackend(std::vector<CobraEvent> table)
    : table_(std::move(table)) {
  std::sort(table_.begin(), table_.end(),
            [](const CobraEvent& a, const CobraEvent& b) {
              if (a.id != b.id) return a.id < b.id;
              if (a.event != b.event) return a.event < b.event;
              return a.length_s < b.length_s;
            });
  table_.erase(std::unique(table_.begin(), table_.end(),
                           [](const CobraEvent& a, const CobraEvent& b) {
                             return a.id == b.id && a.event == b.event &&
                                    a.length_s == b.length_s;
                           }),
               table_.end());
  std::string last;
  for (const CobraEvent& row : table_) {
    if (row.id != last) {
      ++distinct_ids_;
      last = row.id;
    }
  }
  cap_.name = "cobra";
  cap_.supports_ranking = false;
  cap_.supports_pushdown = false;
  // A sorted in-memory detection table: the cheapest probe of the
  // three levels.
  cap_.cost_per_candidate = 1.0;
}

Status CobraBackend::Accepts(const Predicate& pred) const {
  if (pred.kind != PredKind::kCobra) {
    return Status::InvalidArgument("cobra backend got non-cobra predicate");
  }
  for (const Constraint& c : pred.constraints) {
    if (c.path == "event") {
      // Parser-guaranteed: exactly one, '=', non-numeric.
      continue;
    }
    if (c.path == "min_len") {
      if (c.op != ConstraintOp::kEq && c.op != ConstraintOp::kAtLeast) {
        return Status::InvalidArgument(
            "cobra min_len takes '=' or '>=' with a duration");
      }
      continue;
    }
    return Status::InvalidArgument("unknown cobra constraint key '" + c.path +
                                   "' (expected event, min_len)");
  }
  return Status::Ok();
}

double CobraBackend::EstimateSelectivity(const Predicate& pred) const {
  if (distinct_ids_ == 0) return 0.0;
  Result<CandidateSet> matched = EvalFilter(pred);
  if (!matched.ok()) return 1.0;
  return static_cast<double>(matched.value().size()) /
         static_cast<double>(distinct_ids_);
}

Result<CandidateSet> CobraBackend::EvalFilter(const Predicate& pred) const {
  DLS_RETURN_IF_ERROR(Accepts(pred));
  std::string event;
  double min_len = 0.0;
  for (const Constraint& c : pred.constraints) {
    if (c.path == "event") event = c.value;
    if (c.path == "min_len") min_len = c.seconds();
  }
  CandidateSet out;
  for (const CobraEvent& row : table_) {
    if (row.event != event || row.length_s < min_len) continue;
    if (out.empty() || out.back() != row.id) out.push_back(row.id);
  }
  return out;
}

// ---------------------------------------------------------------------------
// TextBackend

TextBackend::TextBackend(const ir::ClusterIndex* cluster)
    : cluster_(cluster), frozen_epoch_(cluster->mutation_epoch()) {
  // Snapshot the entity -> documents table. Documents are visited in
  // (node, doc) order, so each entity's DocRef list is born sorted.
  std::map<std::string, std::vector<DocRef>, std::less<>> table;
  for (size_t i = 0; i < cluster_->num_nodes(); ++i) {
    const ir::TextIndex& index = cluster_->node_index(i);
    for (ir::DocId d = 0; d < index.document_count(); ++d) {
      table[std::string(EntityOf(index.url(d)))].push_back(
          DocRef{static_cast<uint32_t>(i), d});
    }
  }
  entity_ids_.reserve(table.size());
  entity_docs_.reserve(table.size());
  for (auto& [id, docs] : table) {
    entity_ids_.push_back(id);
    entity_docs_.push_back(std::move(docs));
  }
  cap_.name = "text";
  cap_.supports_ranking = true;
  cap_.supports_pushdown = true;
  // Posting-list work dominates everything else the mediator touches.
  cap_.cost_per_candidate = 8.0;
}

Status TextBackend::CheckFrozen() const {
  const uint64_t now = cluster_->mutation_epoch();
  if (now != frozen_epoch_) {
    return Status::Unavailable(
        "text backend snapshot is stale: the cluster mutated since the "
        "mediator was built (epoch " + std::to_string(frozen_epoch_) +
        " -> " + std::to_string(now) + "); rebuild the federated backends");
  }
  return Status::Ok();
}

size_t TextBackend::FindEntity(std::string_view id) const {
  const auto it =
      std::lower_bound(entity_ids_.begin(), entity_ids_.end(), id);
  if (it == entity_ids_.end() || *it != id) {
    return static_cast<size_t>(-1);
  }
  return static_cast<size_t>(it - entity_ids_.begin());
}

Status TextBackend::Accepts(const Predicate& pred) const {
  if (pred.kind != PredKind::kText) {
    return Status::InvalidArgument("text backend got non-text predicate");
  }
  // Non-empty string guaranteed by the parser; stopword-only queries
  // are legal and simply rank/match nothing.
  return Status::Ok();
}

double TextBackend::EstimateSelectivity(const Predicate& pred) const {
  const size_t total = cluster_->document_count();
  if (total == 0 || cluster_->num_nodes() == 0) return 0.0;
  const ir::TextIndex& norm = cluster_->node_index(0);
  double matched = 0.0;
  for (const std::string& word : SplitQueryWords(pred.text)) {
    const std::optional<std::string> stem = norm.NormalizeWord(word);
    if (!stem.has_value()) continue;
    // Union bound over the stems' document frequencies.
    matched += static_cast<double>(cluster_->global_df(*stem));
  }
  return std::min(1.0, matched / static_cast<double>(total));
}

Result<CandidateSet> TextBackend::EvalFilter(const Predicate& pred) const {
  DLS_RETURN_IF_ERROR(Accepts(pred));
  DLS_RETURN_IF_ERROR(CheckFrozen());
  std::vector<std::string> matched;
  for (size_t i = 0; i < cluster_->num_nodes(); ++i) {
    const ir::TextIndex& index = cluster_->node_index(i);
    std::vector<uint8_t> seen(index.document_count(), 0);
    for (const std::string& word : SplitQueryWords(pred.text)) {
      const std::optional<std::string> stem = index.NormalizeWord(word);
      if (!stem.has_value()) continue;
      const std::optional<ir::TermId> term = index.LookupTerm(*stem);
      if (!term.has_value()) continue;
      ForEachPostingDoc(index.postings(*term),
                        [&](ir::DocId d) { seen[d] = 1; });
    }
    for (ir::DocId d = 0; d < seen.size(); ++d) {
      if (seen[d] != 0) matched.emplace_back(EntityOf(index.url(d)));
    }
  }
  std::sort(matched.begin(), matched.end());
  matched.erase(std::unique(matched.begin(), matched.end()), matched.end());
  return matched;
}

ir::ClusterDocFilter TextBackend::BuildFilter(
    const CandidateSet& candidates) const {
  ir::ClusterDocFilter filter;
  filter.per_node.reserve(cluster_->num_nodes());
  for (size_t i = 0; i < cluster_->num_nodes(); ++i) {
    filter.per_node.emplace_back(cluster_->node_index(i).document_count());
  }
  // The snapshot's DocRefs and the bitmaps' universes come from
  // *different* reads of the per-node document counts; DocFilter::Set
  // drops any ref a concurrent mutation pushed past a bitmap's range
  // instead of writing out of bounds (callers gate on CheckFrozen, so
  // this only shields the race window inside one evaluation).
  for (const std::string& id : candidates) {
    const size_t e = FindEntity(id);
    if (e == static_cast<size_t>(-1)) continue;
    for (const DocRef& ref : entity_docs_[e]) {
      filter.per_node[ref.node].Set(ref.doc);
    }
  }
  return filter;
}

std::vector<std::string> TextBackend::DocsOfEntities(
    const CandidateSet& candidates) const {
  std::vector<std::string> urls;
  for (const std::string& id : candidates) {
    const size_t e = FindEntity(id);
    if (e == static_cast<size_t>(-1)) continue;
    for (const DocRef& ref : entity_docs_[e]) {
      urls.push_back(cluster_->node_index(ref.node).url(ref.doc));
    }
  }
  std::sort(urls.begin(), urls.end());
  urls.erase(std::unique(urls.begin(), urls.end()), urls.end());
  return urls;
}

Result<std::vector<ir::ClusterScoredDoc>> TextBackend::Rank(
    const std::vector<std::string>& words, size_t n, size_t max_fragments,
    const ir::RankOptions& options, const CandidateSet* filter,
    ir::ClusterQueryStats* stats) const {
  DLS_RETURN_IF_ERROR(CheckFrozen());
  if (filter == nullptr) {
    return cluster_->Query(words, n, max_fragments, stats, options);
  }
  const ir::ClusterDocFilter doc_filter = BuildFilter(*filter);
  return cluster_->Query(words, n, max_fragments, stats, options,
                         &doc_filter);
}

// ---------------------------------------------------------------------------

const FederateBackend* BackendSet::ForKind(PredKind kind) const {
  switch (kind) {
    case PredKind::kText:
      return text;
    case PredKind::kWebspace:
      return webspace;
    case PredKind::kCobra:
      return cobra;
  }
  return nullptr;
}

}  // namespace dls::federate
