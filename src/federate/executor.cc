#include "federate/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <future>
#include <optional>

namespace dls::federate {

namespace {

double NowUs() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

void CollectKinds(const QueryNode& node, bool kinds[3]) {
  if (node.kind == QueryNode::Kind::kPred) {
    kinds[static_cast<size_t>(node.pred.kind)] = true;
    return;
  }
  for (const QueryNode& child : node.children) CollectKinds(child, kinds);
}

/// "text" / "webspace" / "cobra" for a pure step, "mixed" for an OR
/// group spanning levels.
std::string StepBackendName(const QueryNode& node) {
  bool kinds[3] = {false, false, false};
  CollectKinds(node, kinds);
  const int count = kinds[0] + kinds[1] + kinds[2];
  if (count != 1) return "mixed";
  if (kinds[0]) return "text";
  if (kinds[1]) return "webspace";
  return "cobra";
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  *out += buf;
}

}  // namespace

Result<CandidateSet> Mediator::EvalNode(const QueryNode& node,
                                        bool parallel) const {
  switch (node.kind) {
    case QueryNode::Kind::kPred: {
      const FederateBackend* backend = backends_.ForKind(node.pred.kind);
      if (backend == nullptr) {
        return Status::InvalidArgument("no backend for predicate level");
      }
      return backend->EvalFilter(node.pred);
    }
    case QueryNode::Kind::kAnd: {
      // Children in source order with empty-set short-circuit (the
      // planner only reorders *top-level* conjuncts; nested groups are
      // small and source order keeps them predictable).
      std::optional<CandidateSet> running;
      for (const QueryNode& child : node.children) {
        DLS_ASSIGN_OR_RETURN(CandidateSet s, EvalNode(child, parallel));
        running = running.has_value() ? IntersectSets(*running, std::move(s))
                                      : std::move(s);
        if (running->empty()) break;
      }
      return std::move(running).value_or(CandidateSet{});
    }
    case QueryNode::Kind::kOr: {
      // Independent branches fan out on the pool; results combine in
      // child order, and set union is order-insensitive anyway, so
      // parallel and sequential execution return identical sets. Only
      // the top OR level parallelises — nested groups evaluate inline
      // in the worker, so a small pool can never deadlock on nested
      // futures.
      std::vector<Result<CandidateSet>> parts;
      if (parallel && pool_ != nullptr && node.children.size() > 1) {
        std::vector<std::future<Result<CandidateSet>>> futures;
        futures.reserve(node.children.size());
        for (const QueryNode& child : node.children) {
          futures.push_back(pool_->Submit(
              [this, &child]() { return EvalNode(child, /*parallel=*/false); }));
        }
        parts.reserve(futures.size());
        for (std::future<Result<CandidateSet>>& f : futures) {
          parts.push_back(f.get());
        }
      } else {
        parts.reserve(node.children.size());
        for (const QueryNode& child : node.children) {
          parts.push_back(EvalNode(child, parallel));
        }
      }
      CandidateSet out;
      for (Result<CandidateSet>& part : parts) {
        if (!part.ok()) return part.status();
        out = UnionSets(out, std::move(part).value());
      }
      return out;
    }
  }
  return Status::Internal("corrupt query node");
}

Result<std::vector<ir::ClusterScoredDoc>> Mediator::Execute(
    const FederatedQuery& query, size_t n, size_t max_fragments,
    const ir::RankOptions& options, FederatedStats* stats) const {
  assert(options.doc_filter == nullptr &&
         "the mediator owns candidate pushdown");
  DLS_ASSIGN_OR_RETURN(Plan plan, BuildPlan(query, backends_));
  // The text backend's entity snapshot must still match the cluster —
  // checked here (not just asserted) so live ingestion under a stale
  // mediator is a clean kUnavailable in release builds, never an
  // evaluation over dangling DocRefs.
  if (backends_.text != nullptr) {
    DLS_RETURN_IF_ERROR(backends_.text->CheckFrozen());
  }

  FederatedStats local;
  FederatedStats& out = stats != nullptr ? *stats : local;
  out = FederatedStats{};

  // Filters in plan order, intersecting as we go; once the running set
  // is empty no later filter (or the ranked leg) can resurrect a
  // candidate, so the rest short-circuits.
  std::optional<CandidateSet> running;
  for (const PlanStep& step : plan.steps) {
    StepTiming timing;
    timing.description = federate::ToString(step.node);
    timing.backend = StepBackendName(step.node);
    if (running.has_value() && running->empty()) {
      timing.skipped = true;
      out.steps.push_back(std::move(timing));
      continue;
    }
    const double start = NowUs();
    DLS_ASSIGN_OR_RETURN(CandidateSet s, EvalNode(step.node, /*parallel=*/true));
    running = running.has_value() ? IntersectSets(*running, std::move(s))
                                  : std::move(s);
    timing.elapsed_us = NowUs() - start;
    timing.candidates = running->size();
    if (timing.backend == "webspace") out.webspace_us += timing.elapsed_us;
    if (timing.backend == "cobra") out.cobra_us += timing.elapsed_us;
    if (timing.backend == "text") out.text_us += timing.elapsed_us;
    out.steps.push_back(std::move(timing));
  }
  out.filter_candidates = running.has_value() ? running->size() : 0;

  std::vector<ir::ClusterScoredDoc> results;
  if (plan.has_ranker) {
    if (backends_.text == nullptr) {
      return Status::InvalidArgument("no backend attached for level 'text'");
    }
    const std::vector<std::string> words = SplitQueryWords(plan.ranker.text);
    const double start = NowUs();
    if (running.has_value()) {
      const ir::ClusterDocFilter filter =
          backends_.text->BuildFilter(*running);
      for (const ir::DocFilter& node_bits : filter.per_node) {
        out.filter_docs += node_bits.count();
      }
      out.pushdown = true;
      results = backends_.text->cluster().Query(words, n, max_fragments,
                                                &out.text_stats, options,
                                                &filter);
    } else {
      results = backends_.text->cluster().Query(words, n, max_fragments,
                                                &out.text_stats, options);
    }
    out.text_us += NowUs() - start;
  } else {
    // Filters only: the surviving entities' documents, score 0, url
    // ascending — a deterministic boolean result set. Without a text
    // backend the entity ids themselves stand in for urls.
    std::vector<std::string> urls =
        backends_.text != nullptr ? backends_.text->DocsOfEntities(*running)
                                  : *running;
    if (urls.size() > n) urls.resize(n);
    results.reserve(urls.size());
    for (std::string& url : urls) {
      results.push_back(ir::ClusterScoredDoc{std::move(url), 0.0});
    }
  }

  // Render the executed plan with live counts — this is the string an
  // operator sees in ServeStats.
  std::string rendered;
  for (const StepTiming& timing : out.steps) {
    if (!rendered.empty()) rendered += " -> ";
    rendered += timing.description;
    if (timing.skipped) {
      rendered += "[skipped]";
    } else {
      AppendF(&rendered, "[%zu ids, %.0fus]", timing.candidates,
              timing.elapsed_us);
    }
  }
  if (plan.has_ranker) {
    if (!rendered.empty()) rendered += " -> ";
    rendered += "rank ";
    rendered += federate::ToString(plan.ranker);
    if (out.pushdown) {
      AppendF(&rendered, " with pushdown[%zu docs]", out.filter_docs);
    }
  } else {
    AppendF(&rendered, " -> collect docs[%zu]", results.size());
  }
  out.plan = std::move(rendered);
  return results;
}

Result<std::vector<ir::ClusterScoredDoc>> Mediator::ExecuteString(
    std::string_view query, size_t n, size_t max_fragments,
    const ir::RankOptions& options, FederatedStats* stats) const {
  DLS_ASSIGN_OR_RETURN(FederatedQuery parsed, ParseFederatedQuery(query));
  return Execute(parsed, n, max_fragments, options, stats);
}

}  // namespace dls::federate
