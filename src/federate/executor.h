#ifndef DLS_FEDERATE_EXECUTOR_H_
#define DLS_FEDERATE_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "federate/backend.h"
#include "federate/planner.h"
#include "federate/query_lang.h"
#include "ir/cluster.h"

namespace dls::federate {

/// Per-step execution accounting, surfaced through ServeStats so an
/// operator can see where a federated query spent its time.
struct StepTiming {
  std::string description;  ///< canonical predicate / group rendering
  std::string backend;      ///< "text", "webspace", "cobra" or "mixed"
  double elapsed_us = 0.0;
  size_t candidates = 0;  ///< surviving entities after this step
  bool skipped = false;   ///< short-circuited (running set already empty)
};

/// What one federated execution did.
struct FederatedStats {
  /// The executed plan with live counts attached, e.g.
  ///   "cobra(event=rally)[sel=0.03, 12 ids, 80us] -> rank
  ///    text(\"net play\") with pushdown[17 docs]".
  std::string plan;
  std::vector<StepTiming> steps;
  size_t filter_candidates = 0;  ///< entities surviving all filters
  size_t filter_docs = 0;        ///< bits set in the pushed-down bitmap
  bool pushdown = false;         ///< ranking ran under a candidate bitmap
  double text_us = 0.0;          ///< ranked-text wall time
  double webspace_us = 0.0;      ///< total webspace filter wall time
  double cobra_us = 0.0;         ///< total cobra filter wall time
  ir::ClusterQueryStats text_stats;
};

/// The federated query mediator: plans a parsed query over the three
/// backends and executes it — filters first (cheapest/most-selective
/// order, empty-set short-circuit, OR branches fanned out on the
/// thread pool), then ranked text evaluation with the surviving
/// candidate set pushed down as per-node bitmaps.
///
/// Exactness contract: the returned ranking is bit-identical to
/// evaluating every backend exhaustively, intersecting the candidate
/// sets, and post-filtering an exhaustive text ranking — the pushdown
/// and the step ordering are pure work-savers (tests/federate pins
/// this). Queries with no text() predicate return the candidate
/// entities' documents with score 0, url-ascending.
///
/// Thread-safe for concurrent Execute() calls: backends are read-only
/// and the pool is only used via Submit().
class Mediator {
 public:
  /// Non-owning backends; `pool` may be nullptr for fully sequential
  /// execution (OR branches then evaluate in child order inline).
  explicit Mediator(BackendSet backends, ThreadPool* pool = nullptr)
      : backends_(backends), pool_(pool) {}

  /// Executes a parsed query. `n`, `max_fragments`, `options` shape
  /// the ranked-text leg exactly as ClusterIndex::Query does;
  /// options.doc_filter must be null (the mediator owns pushdown).
  Result<std::vector<ir::ClusterScoredDoc>> Execute(
      const FederatedQuery& query, size_t n, size_t max_fragments,
      const ir::RankOptions& options = {},
      FederatedStats* stats = nullptr) const;

  /// Parse + Execute in one step (the serve-layer entry point).
  Result<std::vector<ir::ClusterScoredDoc>> ExecuteString(
      std::string_view query, size_t n, size_t max_fragments,
      const ir::RankOptions& options = {},
      FederatedStats* stats = nullptr) const;

  const BackendSet& backends() const { return backends_; }

 private:
  /// Evaluates a filter node to its sorted entity set. When `parallel`
  /// and a pool is attached, OR children run on the pool (each branch
  /// then evaluates strictly inline, so a one-worker pool cannot
  /// deadlock on nested futures); results combine by set union, which
  /// is order-insensitive, so parallel and sequential evaluation are
  /// identical. Callers of Execute() must not themselves be workers of
  /// the attached pool.
  Result<CandidateSet> EvalNode(const QueryNode& node, bool parallel) const;

  BackendSet backends_;
  ThreadPool* pool_;
};

}  // namespace dls::federate

#endif  // DLS_FEDERATE_EXECUTOR_H_
