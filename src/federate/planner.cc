#include "federate/planner.h"

#include <algorithm>
#include <cstdio>

#include "federate/query_lang.h"

namespace dls::federate {

namespace {

const char* KindName(PredKind kind) {
  switch (kind) {
    case PredKind::kText:
      return "text";
    case PredKind::kWebspace:
      return "webspace";
    case PredKind::kCobra:
      return "cobra";
  }
  return "?";
}

/// Validates every leaf predicate of `node` against its backend.
Status ValidateNode(const QueryNode& node, const BackendSet& backends) {
  if (node.kind == QueryNode::Kind::kPred) {
    const FederateBackend* backend = backends.ForKind(node.pred.kind);
    if (backend == nullptr) {
      return Status::InvalidArgument(
          std::string("no backend attached for level '") +
          KindName(node.pred.kind) + "'");
    }
    return backend->Accepts(node.pred);
  }
  for (const QueryNode& child : node.children) {
    DLS_RETURN_IF_ERROR(ValidateNode(child, backends));
  }
  return Status::Ok();
}

struct Estimate {
  double selectivity = 1.0;
  double cost = 0.0;
};

/// sel(pred) from the backend; sel(AND) = min of children (an
/// intersection is at most its smallest side); sel(OR) = capped sum
/// (a union is at most the sum). Costs add — every branch runs.
Estimate EstimateNode(const QueryNode& node, const BackendSet& backends) {
  if (node.kind == QueryNode::Kind::kPred) {
    const FederateBackend* backend = backends.ForKind(node.pred.kind);
    Estimate e;
    e.selectivity = backend->EstimateSelectivity(node.pred);
    e.cost = backend->capability().cost_per_candidate;
    return e;
  }
  Estimate e;
  e.selectivity = node.kind == QueryNode::Kind::kAnd ? 1.0 : 0.0;
  for (const QueryNode& child : node.children) {
    const Estimate c = EstimateNode(child, backends);
    if (node.kind == QueryNode::Kind::kAnd) {
      e.selectivity = std::min(e.selectivity, c.selectivity);
    } else {
      e.selectivity += c.selectivity;
    }
    e.cost += c.cost;
  }
  e.selectivity = std::min(1.0, e.selectivity);
  return e;
}

void AppendSel(std::string* out, double sel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[sel=%.3g]", sel);
  *out += buf;
}

}  // namespace

std::string Plan::ToString() const {
  std::string out;
  for (const PlanStep& step : steps) {
    if (!out.empty()) out += " -> ";
    out += federate::ToString(step.node);
    AppendSel(&out, step.selectivity);
  }
  if (has_ranker) {
    if (!out.empty()) out += " -> ";
    out += "rank ";
    out += federate::ToString(ranker);
    if (!steps.empty()) out += " with pushdown";
  } else {
    out += " -> collect docs";
  }
  return out;
}

Result<Plan> BuildPlan(const FederatedQuery& query,
                       const BackendSet& backends) {
  DLS_RETURN_IF_ERROR(ValidateNode(query.root, backends));

  // Flatten the top-level conjunction (a lone predicate or OR group is
  // a one-conjunct query).
  std::vector<const QueryNode*> conjuncts;
  if (query.root.kind == QueryNode::Kind::kAnd) {
    for (const QueryNode& child : query.root.children) {
      conjuncts.push_back(&child);
    }
  } else {
    conjuncts.push_back(&query.root);
  }

  Plan plan;
  for (const QueryNode* conjunct : conjuncts) {
    if (conjunct->kind == QueryNode::Kind::kPred &&
        conjunct->pred.kind == PredKind::kText) {
      // The unique top-level text() ranks; a second one is ambiguous
      // (which score order wins?) and is rejected rather than guessed.
      if (plan.has_ranker) {
        return Status::InvalidArgument(
            "at most one top-level text() predicate may rank; combine the "
            "words or nest the second one under parentheses to use it as a "
            "boolean filter");
      }
      plan.has_ranker = true;
      plan.ranker = conjunct->pred;
      continue;
    }
    PlanStep step;
    step.node = *conjunct;
    const Estimate e = EstimateNode(*conjunct, backends);
    step.selectivity = e.selectivity;
    step.cost = e.cost;
    plan.steps.push_back(std::move(step));
  }

  // Cheapest, most selective first; stable sort keeps source order as
  // the final tie-break so plans are deterministic.
  std::stable_sort(plan.steps.begin(), plan.steps.end(),
                   [](const PlanStep& a, const PlanStep& b) {
                     if (a.selectivity != b.selectivity) {
                       return a.selectivity < b.selectivity;
                     }
                     return a.cost < b.cost;
                   });
  return plan;
}

}  // namespace dls::federate
