#ifndef DLS_FEDERATE_QUERY_LANG_H_
#define DLS_FEDERATE_QUERY_LANG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dls::federate {

/// The structured federated query language — the one string a
/// SearchRequest carries to address all three paper levels at once:
///
///   text("tennis net play") AND webspace(class=Article,
///     author.name~"Smith") AND cobra(event=rally, min_len=5s)
///
/// Grammar (EBNF; see DESIGN.md "Federated mediation"):
///
///   query      := or_expr
///   or_expr    := and_expr { OR and_expr }
///   and_expr   := unary { AND unary }
///   unary      := predicate | '(' or_expr ')'
///   predicate  := 'text' '(' STRING ')'
///              | 'webspace' '(' constraint { ',' constraint } ')'
///              | 'cobra' '(' constraint { ',' constraint } ')'
///   constraint := path op value
///   path       := IDENT { '.' IDENT }
///   op         := '=' | '!=' | '~' | '>='
///   value      := STRING | IDENT | NUMBER [ 's' | 'ms' ]
///
/// Keywords (text/webspace/cobra/AND/OR) are case-insensitive; AND
/// binds tighter than OR. Strings are double-quoted; backslash
/// escapes a quote or a backslash. The parser is a hand-rolled lexer plus recursive-descent
/// parser with the segment-format hostility discipline: every limit
/// below is enforced before any allocation proportional to claimed
/// sizes, truncation at any byte yields a clean kParseError (fuzzed in
/// tests/federate), and no input can recurse past kMaxDepth.

/// Hostile-input bounds. A legitimate query is a human-typed line;
/// anything brushing these limits is garbage or an attack.
inline constexpr size_t kMaxQueryBytes = 64 * 1024;
inline constexpr size_t kMaxDepth = 32;          ///< '(' nesting
inline constexpr size_t kMaxPredicates = 256;    ///< per query
inline constexpr size_t kMaxConstraints = 64;    ///< per predicate

/// Which backend a predicate addresses.
enum class PredKind : uint8_t {
  kText,      ///< ranked full-text (serve::Backend / ClusterIndex)
  kWebspace,  ///< conceptual constraints over the webspace instance
  kCobra,     ///< precomputed COBRA event/object tables
};

/// Comparison operator of a webspace/cobra constraint.
enum class ConstraintOp : uint8_t {
  kEq,        ///< '='   exact attribute / key match
  kNotEq,     ///< '!='  negation within the class
  kContains,  ///< '~'   word-contains (stemmed token match)
  kAtLeast,   ///< '>='  numeric lower bound
};

/// One `path op value` inside webspace(...) or cobra(...). A one-step
/// path ("name") constrains the object's own attribute; a two-step
/// path ("author.name") follows the association named by the first
/// step and constrains the linked object's attribute.
struct Constraint {
  std::string path;
  ConstraintOp op = ConstraintOp::kEq;
  /// Raw value for string/ident values; empty for numeric ones.
  std::string value;
  /// Parsed numeric value (durations normalised to seconds).
  double number = 0.0;
  /// Source spelling of a numeric value, normalised only by stripping
  /// redundant zeros ("007.2500" -> "7.25"). ToString() renders this
  /// string verbatim, so the parse/render fixed point holds at any
  /// magnitude or precision — "%g"-style formatting would emit
  /// exponent notation ("1e+06") the grammar cannot read back and
  /// keep only 6 significant digits. Empty for programmatically-built
  /// constraints; those render from `number` in plain fixed notation.
  std::string lexeme;
  bool numeric = false;
  /// Duration unit as written: 0 none (bare number), 1 's', 2 'ms' —
  /// kept so ToString() renders the query back canonically.
  uint8_t unit = 0;

  /// Numeric value in seconds (bare numbers count as seconds).
  double seconds() const { return unit == 2 ? number / 1000.0 : number; }
};

/// One leaf predicate of the query AST.
struct Predicate {
  PredKind kind = PredKind::kText;
  std::string text;                     ///< kText: the quoted query words
  std::vector<Constraint> constraints;  ///< kWebspace / kCobra
};

/// A node of the typed AST. kAnd/kOr nodes have ≥ 2 children in
/// source order; kPred nodes hold the predicate and no children.
struct QueryNode {
  enum class Kind : uint8_t { kPred, kAnd, kOr };
  Kind kind = Kind::kPred;
  Predicate pred;
  std::vector<QueryNode> children;
};

/// A parsed federated query.
struct FederatedQuery {
  QueryNode root;
};

/// Parses and validates a federated query. Returns kParseError with a
/// position-annotated message for any syntax violation, over-limit
/// input, unknown predicate/operator, or semantically invalid
/// predicate (webspace without class=, cobra without event=, numeric
/// operator on a string, path deeper than two steps).
Result<FederatedQuery> ParseFederatedQuery(std::string_view input);

/// Canonical rendering of a query (normalised spacing, upper-case
/// connectives, minimal parentheses — children of OR under AND are
/// parenthesised). Parse(ToString(q)) reproduces the identical AST,
/// and two queries differing only in whitespace/keyword case render
/// identically — the property the serve cache keys on.
std::string ToString(const FederatedQuery& query);
std::string ToString(const QueryNode& node);
std::string ToString(const Predicate& pred);

/// Number of kPred leaves under `node` (plan sizing, tests).
size_t CountPredicates(const QueryNode& node);

}  // namespace dls::federate

#endif  // DLS_FEDERATE_QUERY_LANG_H_
