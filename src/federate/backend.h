#ifndef DLS_FEDERATE_BACKEND_H_
#define DLS_FEDERATE_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/cluster.h"
#include "ir/index.h"
#include "federate/query_lang.h"
#include "webspace/objects.h"

namespace dls::federate {

/// The unified candidate key of the mediator: the web-object id. Every
/// backend can express "which entities satisfy this predicate" as a
/// sorted, duplicate-free vector of ids, which is what makes the three
/// paper levels composable with plain set algebra. The text corpus
/// follows the core-engine convention of indexing one document per
/// object attribute under the url `<id>#<attr>` (or `<id>` for whole
/// objects), so text documents map onto the same key space.
using CandidateSet = std::vector<std::string>;

/// Sorted-set intersection/union over CandidateSets.
CandidateSet IntersectSets(const CandidateSet& a, const CandidateSet& b);
CandidateSet UnionSets(const CandidateSet& a, const CandidateSet& b);

/// Whitespace-splits a text() predicate's words (raw words — stem
/// normalisation happens inside the index, as for any text query).
std::vector<std::string> SplitQueryWords(const std::string& text);

/// What a backend advertises to the planner: how it may be used and
/// roughly what an exhaustive EvalFilter costs per stored candidate.
/// The planner multiplies cost_per_candidate by the backend's universe
/// size to order equally-selective predicates cheapest-first.
struct BackendCapability {
  std::string name;
  bool supports_ranking = false;   ///< can produce scored results
  bool supports_pushdown = false;  ///< can honour a candidate bitmap
  double cost_per_candidate = 1.0;
};

/// A federated backend: one source the mediator can plan over. All
/// implementations are read-only after construction and safe to share
/// across concurrent Execute() calls.
class FederateBackend {
 public:
  virtual ~FederateBackend() = default;

  virtual const BackendCapability& capability() const = 0;

  /// Validates that this backend can evaluate `pred` (kind matches,
  /// constraint paths/operators make sense for this source). Called by
  /// the planner before any evaluation, so executor-time failures are
  /// limited to genuine runtime trouble.
  virtual Status Accepts(const Predicate& pred) const = 0;

  /// Estimated fraction of this backend's universe satisfying `pred`,
  /// in [0, 1]. Purely advisory — used to order conjuncts — so it may
  /// be cheap and rough, but must be deterministic.
  virtual double EstimateSelectivity(const Predicate& pred) const = 0;

  /// Exhaustively evaluates `pred` to the sorted id set of satisfying
  /// entities. This is the boolean-filter path; the text backend
  /// additionally offers ranked evaluation below.
  virtual Result<CandidateSet> EvalFilter(const Predicate& pred) const = 0;
};

/// Conceptual-constraint backend over the materialized webspace
/// instance (level 1 of the paper). Evaluates the same predicate
/// algebra as webspace::query's conceptual queries — class anchor,
/// attribute comparisons, one association step — against the merged
/// WebspaceInstance view.
///
/// Semantics (documented here because tests pin them):
///   class=C       anchor; candidates are ObjectsOfClass(C).
///   attr=V        the object's own attribute text (or multimedia src)
///                 equals V exactly.
///   attr!=V       attribute missing or not equal — negation within
///                 the class.
///   attr~"w"      case-insensitive word containment: some whitespace-
///                 delimited token of the attribute text contains V.
///   attr>=N       attribute text parses as a number >= N.
///   assoc.attr OP V   some object linked via `assoc` satisfies
///                 `attr OP V` (for != : no linked object equals V).
class WebspaceBackend : public FederateBackend {
 public:
  explicit WebspaceBackend(const webspace::WebspaceInstance* instance);

  const BackendCapability& capability() const override { return cap_; }
  Status Accepts(const Predicate& pred) const override;
  double EstimateSelectivity(const Predicate& pred) const override;
  Result<CandidateSet> EvalFilter(const Predicate& pred) const override;

 private:
  const webspace::WebspaceInstance* instance_;
  BackendCapability cap_;
};

/// One row of the precomputed COBRA detection table: object `id`
/// contains an occurrence of `event` lasting `length_s` seconds. The
/// offline video/audio analysis of the paper's level 3 lands in this
/// shape; the backend only filters it.
struct CobraEvent {
  std::string id;
  std::string event;
  double length_s = 0.0;
};

/// Event-table backend (level 3). Constraints:
///   event=E      anchor; rows whose event name equals E.
///   min_len=D / min_len>=D   rows with length_s >= D (durations in
///                seconds; `ms` suffix normalised by the parser).
class CobraBackend : public FederateBackend {
 public:
  /// Sorts (and de-duplicates) the table by (id, event, length) so all
  /// derived candidate sets are deterministic.
  explicit CobraBackend(std::vector<CobraEvent> table);

  const BackendCapability& capability() const override { return cap_; }
  Status Accepts(const Predicate& pred) const override;
  double EstimateSelectivity(const Predicate& pred) const override;
  Result<CandidateSet> EvalFilter(const Predicate& pred) const override;

  const std::vector<CobraEvent>& table() const { return table_; }

 private:
  std::vector<CobraEvent> table_;
  size_t distinct_ids_ = 0;
  BackendCapability cap_;
};

/// Ranked full-text backend (level 2) over the partitioned cluster
/// index. Besides the common filter interface (a document matches a
/// text filter when it contains at least one normalised query stem),
/// it owns the entity <-> (node, doc) table the executor needs to push
/// surviving candidates down into ranking as per-node bitmaps.
///
/// The backend snapshots the cluster's entity table at construction
/// and is only valid while the cluster stays frozen: the mutation
/// epoch is captured and re-checked on every evaluation (CheckFrozen),
/// so a cluster mutated by live ingestion yields kUnavailable — in
/// release builds too — instead of evaluating against a stale
/// snapshot.
class TextBackend : public FederateBackend {
 public:
  explicit TextBackend(const ir::ClusterIndex* cluster);

  const BackendCapability& capability() const override { return cap_; }

  /// kUnavailable when the cluster's mutation epoch moved past the
  /// snapshot this backend was built from (rebuild the backend to
  /// serve the new epoch); Ok while the snapshot is still exact.
  Status CheckFrozen() const;

  Status Accepts(const Predicate& pred) const override;
  double EstimateSelectivity(const Predicate& pred) const override;
  /// Entities with at least one document containing at least one
  /// normalised stem of the predicate's words (stopword-only queries
  /// yield the empty set).
  Result<CandidateSet> EvalFilter(const Predicate& pred) const override;

  /// Ranked evaluation with optional candidate pushdown. `filter`
  /// nullptr ranks the whole cluster; otherwise only documents whose
  /// entity is in the (sorted) set are scored — bit-identical to
  /// ranking everything and discarding non-candidates (see
  /// RankOptions::doc_filter). Fails with CheckFrozen()'s status when
  /// the cluster mutated since construction.
  Result<std::vector<ir::ClusterScoredDoc>> Rank(
      const std::vector<std::string>& words, size_t n, size_t max_fragments,
      const ir::RankOptions& options, const CandidateSet* filter,
      ir::ClusterQueryStats* stats) const;

  /// Builds the per-node candidate bitmaps for a sorted entity set.
  /// Entities without any indexed document contribute no bits.
  ir::ClusterDocFilter BuildFilter(const CandidateSet& candidates) const;

  /// All documents (urls, ascending) belonging to the given entities —
  /// the result set of a federated query with no text predicate.
  std::vector<std::string> DocsOfEntities(const CandidateSet& candidates) const;

  const ir::ClusterIndex& cluster() const { return *cluster_; }

 private:
  struct DocRef {
    uint32_t node;
    ir::DocId doc;
  };

  const ir::ClusterIndex* cluster_;
  uint64_t frozen_epoch_;
  /// entity id -> documents of that entity, ascending (node, doc).
  /// Parallel sorted vectors (entity_ids_ ascending, unique).
  std::vector<std::string> entity_ids_;
  std::vector<std::vector<DocRef>> entity_docs_;
  BackendCapability cap_;

  /// Index into entity_ids_ or npos.
  size_t FindEntity(std::string_view id) const;
};

/// The three backends a mediator plans across, looked up by predicate
/// kind. Non-owning; any pointer may be nullptr, in which case queries
/// naming that level are rejected by the planner.
struct BackendSet {
  TextBackend* text = nullptr;
  WebspaceBackend* webspace = nullptr;
  CobraBackend* cobra = nullptr;

  const FederateBackend* ForKind(PredKind kind) const;
};

}  // namespace dls::federate

#endif  // DLS_FEDERATE_BACKEND_H_
