#ifndef DLS_INGEST_LIVE_INDEX_H_
#define DLS_INGEST_LIVE_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "ir/cluster.h"
#include "ir/fragments.h"
#include "ir/index.h"

namespace dls::ingest {

/// The live-ingestion subsystem: an LSM-style two-tier index that keeps
/// serving exact rankings while the corpus churns.
///
/// Layout. Documents live in immutable *parts*. Young parts ("delta")
/// are small heap indexes absorbing inserts; the active delta part is
/// rebuilt per insert and sealed at `delta_seal_docs` documents, so the
/// mutable tier stays bounded. Merge() packs every delta part's live
/// documents into one frozen *run* — written through the versioned
/// segment format (TextIndex::FlushToDisk) and served back off mmap
/// when `segment_dir` is set — and re-fragments it on descending idf
/// (FragmentedIndex). Deletes never touch postings: a global tombstone
/// set hides the document and the statistics it contributed.
///
/// Epoch pinning. Every mutation (Insert, Delete, a Merge swap)
/// installs a brand-new immutable Snapshot under the next epoch;
/// readers Pin() the current snapshot with one shared_ptr copy under a
/// dedicated snapshot mutex (held for nanoseconds — a refcount bump)
/// and never take the writer lock. A reader pinned to an old epoch
/// keeps every part it can see alive for as long as it holds the
/// handle — a background merge swaps the parts list, it never frees
/// anything a pinned reader is scanning.
///
/// Exactness. A snapshot's ranking is bit-identical to a from-scratch
/// TextIndex rebuilt over exactly the documents live at that epoch:
///   - term weights use *effective* statistics — per-stem df summed
///     over the parts minus the tombstoned documents' contributions
///     (df_minus), and the collection length minus theirs (cl_minus) —
///     which are exact integers, so TermWeight matches the rebuild bit
///     for bit;
///   - tf, doc_length and 1/doc_length of a surviving document are
///     whatever its own part computed — identical inputs to the
///     rebuild's;
///   - each part is evaluated with EvaluateTopN under the canonical
///     term order (effective df desc, query position asc — the stable
///     sort preserves the rebuild's tie order on any subset), and a
///     document lives wholly inside one part, so its contributions sum
///     in exactly the rebuild's order;
///   - each part over-fetches its top (n + tombstones-in-part): at most
///     that many tombstoned documents can precede a live one, so after
///     filtering the part's true live top-n survives, for the pruning
///     evaluators exactly as for the exhaustive scan;
///   - parts merge on (score desc, global id asc), and global ids are
///     insertion order — the rebuild's doc-id order.
struct LiveIndexOptions {
  /// Normalisation configuration of every part (stem/stop); the
  /// flush_batch member is ignored — parts flush exactly once.
  ir::TextIndex::Options node;
  /// The active delta part seals (becomes immutable until the next
  /// merge claims it) at this many documents — the bound on per-insert
  /// rebuild work and on the mutable tier's memory.
  size_t delta_seal_docs = 64;
  /// Fragmentation (descending idf) of merged runs.
  size_t num_fragments = 4;
  /// When non-empty, Merge() writes each packed run as
  /// "<segment_dir>/run-<epoch>.seg" and serves it back off the mmap
  /// (TextIndex::LoadFromSegment); empty keeps runs on the heap.
  std::string segment_dir;
  /// When > 0, a background thread merges whenever the delta tier
  /// holds at least this many documents (live or tombstoned).
  size_t auto_merge_docs = 0;
  /// Poll cadence of the background merge thread.
  int64_t merge_poll_ms = 10;
};

/// One ranked document of a live query: the immutable global id (the
/// insertion-order identity rankings tie-break on), its URL, and the
/// exact score.
struct LiveScoredDoc {
  uint64_t id;
  std::string url;
  double score;
};

/// Point-in-time counters of a LiveIndex (Stats()).
struct LiveIndexStats {
  uint64_t epoch = 0;
  size_t live_docs = 0;
  size_t total_docs = 0;  ///< including tombstoned, pre-merge
  size_t tombstones = 0;
  size_t parts = 0;
  size_t delta_parts = 0;
  size_t delta_docs = 0;  ///< documents in the mutable (unmerged) tier
  int64_t collection_length = 0;  ///< effective (live) Σ doc_length
  uint64_t merges = 0;
  size_t bytes_resident = 0;
  size_t bytes_mapped = 0;
};

class LiveIndex {
 public:
  /// One immutable document tier: a frozen TextIndex (heap or
  /// mmap-backed), its fragmentation (merged runs only), and the
  /// global id of each local document (ascending — local order is
  /// global order).
  struct Part {
    std::shared_ptr<const ir::TextIndex> index;
    std::shared_ptr<const ir::FragmentedIndex> fragments;  // runs only
    std::vector<uint64_t> global_ids;
    bool frozen = false;  ///< merged run (vs delta part)
  };

  /// An immutable epoch-pinned view. Obtained from Pin(); holding the
  /// shared_ptr keeps every referenced part alive across merges.
  class Snapshot {
   public:
    uint64_t epoch() const { return epoch_; }
    size_t live_docs() const { return total_docs_ - tombstones_->size(); }
    /// Documents physically present in the parts (live + tombstoned);
    /// merges drop tombstoned documents, so this can shrink.
    size_t total_docs() const { return total_docs_; }
    size_t tombstone_count() const { return tombstones_->size(); }
    /// Effective collection length: live documents only.
    int64_t collection_length() const;
    const std::vector<std::shared_ptr<const Part>>& parts() const {
      return parts_;
    }
    size_t delta_docs() const;

    /// Effective df of a stem: Σ over parts minus tombstoned holders.
    int32_t EffectiveDf(std::string_view stem) const;
    /// The full effective (stem -> df) table — the vocabulary a stats
    /// handshake advertises. Stems whose live df dropped to 0 are
    /// omitted, exactly as a rebuild's vocabulary would omit them.
    std::unordered_map<std::string, int32_t> EffectiveDfTable() const;

    /// Exact top-`n` over the live documents of this epoch, ordered by
    /// (score desc, global id asc) — bit-identical to a from-scratch
    /// rebuild's RankTopN at this epoch (see the class comment).
    std::vector<LiveScoredDoc> Query(const std::vector<std::string>& words,
                                     size_t n,
                                     const ir::RankOptions& options = {},
                                     ir::RankStats* stats = nullptr) const;

    /// True when `id` is hidden by a tombstone.
    bool IsDeleted(uint64_t id) const {
      return tombstones_->count(id) != 0;
    }

   private:
    friend class LiveIndex;
    std::vector<std::shared_ptr<const Part>> parts_;
    /// Tombstoned documents of part i still physically present in it.
    std::vector<uint32_t> part_tombstones_;
    std::shared_ptr<const std::unordered_set<uint64_t>> tombstones_;
    /// Per-stem df the tombstoned documents still contribute to the
    /// parts' stored statistics; subtracted to get effective df.
    std::shared_ptr<const std::unordered_map<std::string, int32_t>>
        df_minus_;
    int64_t cl_minus_ = 0;
    size_t total_docs_ = 0;
    uint64_t epoch_ = 0;
    bool stem_ = true;
    bool stop_ = true;
  };

  explicit LiveIndex(LiveIndexOptions options = {});
  ~LiveIndex();

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  /// Inserts a document and publishes the next epoch. The url must not
  /// name a live document (kAlreadyExists); re-inserting a deleted url
  /// is allowed and gets a fresh global id. Returns the global id.
  Result<uint64_t> Insert(std::string_view url, std::string_view text);

  /// Tombstones the live document named `url` and publishes the next
  /// epoch. Returns false when no live document has that url.
  bool Delete(std::string_view url);

  /// Packs every delta part's live documents into one frozen run and
  /// atomically swaps it in under the next epoch. Synchronous on the
  /// calling thread, but queries are never blocked: the writer lock is
  /// held only to claim the delta parts and to swap — the expensive
  /// rebuild runs unlocked, and inserts/deletes landing meanwhile go
  /// to fresh delta parts that simply survive the swap. Serialised
  /// against the background merge thread. Always publishes a new
  /// epoch, even when the delta tier is empty (the no-op merge is
  /// still an observable epoch for the serve layer's warm path).
  void Merge();

  /// Pins the current snapshot: a shared_ptr copy under the snapshot
  /// mutex — never the writer lock, so queries keep serving through
  /// Insert/Delete/Merge.
  std::shared_ptr<const Snapshot> Pin() const;

  /// Convenience: Pin()->Query(...).
  std::vector<LiveScoredDoc> Query(const std::vector<std::string>& words,
                                   size_t n,
                                   const ir::RankOptions& options = {},
                                   ir::RankStats* stats = nullptr) const;

  /// Current epoch (monotone; +1 per Insert/Delete/Merge).
  uint64_t epoch() const { return Pin()->epoch(); }

  uint64_t merges() const { return merges_.load(std::memory_order_relaxed); }

  LiveIndexStats Stats() const;

  const LiveIndexOptions& options() const { return options_; }

 private:
  struct StoredDoc {
    std::string url;
    std::string text;
    bool alive = true;
  };

  /// Builds a flushed TextIndex over `ids` (ascending global ids) from
  /// the document store. Caller holds mu_ or owns private copies.
  std::shared_ptr<ir::TextIndex> BuildPart(
      const std::vector<std::pair<std::string, std::string>>& docs) const;

  /// Installs `snap` as the current snapshot under the next epoch.
  /// Caller holds mu_.
  void PublishLocked(std::shared_ptr<Snapshot> snap);

  void MergeLoop();

  LiveIndexOptions options_;

  /// Writer lock: serialises Insert/Delete and the claim/swap phases
  /// of Merge. Never taken by readers.
  mutable std::mutex mu_;
  /// Serialises whole merges (foreground Merge vs background thread).
  std::mutex merge_mu_;

  /// Append-only document store indexed by global id. Entry content
  /// (url, text) is immutable once appended; `alive` flips under mu_.
  std::deque<StoredDoc> docs_;
  std::unordered_map<std::string, uint64_t> url_to_id_;
  /// Global ids of the active (unsealed) delta part, in order.
  std::vector<uint64_t> active_ids_;
  /// The writer's canonical view of the published state (mu_): the
  /// parts in order, the per-part tombstone counts, and the shared
  /// immutable tombstone/statistics structures the next snapshot will
  /// reference. Mutations copy-on-write these, never edit in place.
  std::vector<std::shared_ptr<const Part>> parts_;
  std::vector<uint32_t> part_tombstones_;
  std::shared_ptr<const std::unordered_set<uint64_t>> tombstones_;
  std::shared_ptr<const std::unordered_map<std::string, int32_t>> df_minus_;
  int64_t cl_minus_ = 0;
  uint64_t epoch_ = 0;
  std::shared_ptr<const Part> active_part_;

  /// The published snapshot; readers load, mutators store under mu_.
  /// Publication point. A dedicated mutex (not mu_: writers hold mu_
  /// for the whole mutation, readers must not wait on that) guarding a
  /// plain shared_ptr; both sides hold it only for the pointer swap /
  /// refcount bump. std::atomic<shared_ptr> would express the same
  /// thing, but libstdc++-12's lock-bit implementation trips TSan.
  mutable std::mutex snap_mu_;
  std::shared_ptr<const Snapshot> snapshot_;

  std::atomic<uint64_t> merges_{0};
  uint64_t run_seq_ = 0;  ///< distinct on-disk run file names

  std::thread merge_thread_;
  std::condition_variable merge_cv_;
  bool stop_ = false;  // guarded by mu_
};

/// Evaluates a resolved cluster ShardQuery against an epoch-pinned
/// snapshot: per-part evaluation with the query's *global* statistics,
/// tombstone over-fetch and filtering, fragment cut-off on the merged
/// runs, and a (score desc, url asc) merge — the exact contract of
/// ir::EvaluateShardQuery against a from-scratch rebuild of the
/// snapshot's live documents. Thread-safe; this is what a live
/// ShardServer node runs per query frame.
ir::ShardResult EvaluateLiveShardQuery(const LiveIndex::Snapshot& snapshot,
                                       const ir::ShardQuery& query);

/// Convenience: pins `live` and evaluates.
ir::ShardResult EvaluateLiveShardQuery(const LiveIndex& live,
                                       const ir::ShardQuery& query);

}  // namespace dls::ingest

#endif  // DLS_INGEST_LIVE_INDEX_H_
