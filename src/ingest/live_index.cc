#include "ingest/live_index.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "ir/kernel.h"
#include "ir/tokenizer.h"

namespace dls::ingest {

namespace {

/// Per-stem term counts of a document body under the index's
/// normalisation — byte-for-byte the pipeline TextIndex::AddDocument
/// runs (Tokenize + NormalizeWordAs), so the df/length bookkeeping a
/// tombstone reverses is exactly what indexing once added.
std::unordered_map<std::string, int32_t> TermCounts(std::string_view text,
                                                    bool stem, bool stop,
                                                    int64_t* length) {
  std::unordered_map<std::string, int32_t> counts;
  int64_t total = 0;
  for (const std::string& token : ir::Tokenize(text)) {
    std::optional<std::string> norm = ir::NormalizeWordAs(token, stem, stop);
    if (!norm) continue;
    ++counts[*norm];
    ++total;
  }
  if (length != nullptr) *length = total;
  return counts;
}

void AddRankStats(const ir::RankStats& from, ir::RankStats* into) {
  into->postings_touched += from.postings_touched;
  into->blocks_skipped += from.blocks_skipped;
  into->blocks_decoded += from.blocks_decoded;
  into->pivot_iterations += from.pivot_iterations;
  into->cursor_advances += from.cursor_advances;
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot

int64_t LiveIndex::Snapshot::collection_length() const {
  int64_t sum = 0;
  for (const std::shared_ptr<const Part>& p : parts_) {
    sum += p->index->collection_length();
  }
  return sum - cl_minus_;
}

size_t LiveIndex::Snapshot::delta_docs() const {
  size_t sum = 0;
  for (const std::shared_ptr<const Part>& p : parts_) {
    if (!p->frozen) sum += p->global_ids.size();
  }
  return sum;
}

int32_t LiveIndex::Snapshot::EffectiveDf(std::string_view stem) const {
  int64_t df = 0;
  for (const std::shared_ptr<const Part>& p : parts_) {
    std::optional<ir::TermId> t = p->index->LookupTerm(stem);
    if (t) df += p->index->df(*t);
  }
  auto it = df_minus_->find(std::string(stem));
  if (it != df_minus_->end()) df -= it->second;
  return static_cast<int32_t>(df);
}

std::unordered_map<std::string, int32_t>
LiveIndex::Snapshot::EffectiveDfTable() const {
  std::unordered_map<std::string, int32_t> table;
  for (const std::shared_ptr<const Part>& p : parts_) {
    const size_t vocab = p->index->vocabulary_size();
    for (ir::TermId t = 0; t < vocab; ++t) {
      table[p->index->term(t)] += p->index->df(t);
    }
  }
  for (const auto& [stem, minus] : *df_minus_) {
    auto it = table.find(stem);
    if (it == table.end()) continue;
    it->second -= minus;
    if (it->second <= 0) table.erase(it);
  }
  return table;
}

std::vector<LiveScoredDoc> LiveIndex::Snapshot::Query(
    const std::vector<std::string>& words, size_t n,
    const ir::RankOptions& options, ir::RankStats* stats) const {
  if (stats != nullptr) *stats = ir::RankStats{};
  if (n == 0) return {};

  // Normalise and de-duplicate on first occurrence — the same query
  // resolution TextIndex::ResolveQuery applies, so the canonical term
  // order below matches a rebuild's.
  std::vector<std::string> stems;
  for (const std::string& word : words) {
    std::optional<std::string> norm = ir::NormalizeWordAs(word, stem_, stop_);
    if (!norm) continue;
    if (std::find(stems.begin(), stems.end(), *norm) == stems.end()) {
      stems.push_back(std::move(*norm));
    }
  }
  if (stems.empty()) return {};

  // Resolve per part and compute effective df. Stems whose live df is
  // 0 (absent everywhere, or every holder tombstoned) are dropped —
  // the rebuild's vocabulary would not contain them either.
  const int64_t eff_cl = collection_length();
  std::vector<int32_t> eff_df(stems.size(), 0);
  std::vector<std::vector<std::optional<ir::TermId>>> resolved(
      parts_.size(), std::vector<std::optional<ir::TermId>>(stems.size()));
  for (size_t i = 0; i < stems.size(); ++i) {
    int64_t df = 0;
    for (size_t pi = 0; pi < parts_.size(); ++pi) {
      std::optional<ir::TermId> t = parts_[pi]->index->LookupTerm(stems[i]);
      resolved[pi][i] = t;
      if (t) df += parts_[pi]->index->df(*t);
    }
    auto it = df_minus_->find(stems[i]);
    if (it != df_minus_->end()) df -= it->second;
    eff_df[i] = static_cast<int32_t>(df);
  }

  // Evaluate each part independently: per-part top (n + tombstones in
  // the part) under the global effective statistics and the local
  // doc-id tie order (local order is global order within a part), then
  // filter tombstoned hits. The over-fetch makes the filter exact: at
  // most part_tombstones_ dead documents can outrank a live one.
  struct Cand {
    double score;
    uint64_t id;
    const Part* part;
    ir::DocId local;
  };
  std::vector<Cand> cands;
  for (size_t pi = 0; pi < parts_.size(); ++pi) {
    const Part& part = *parts_[pi];
    std::vector<ir::EvalTerm> terms;
    terms.reserve(stems.size());
    for (size_t i = 0; i < stems.size(); ++i) {
      if (eff_df[i] <= 0) continue;
      const std::optional<ir::TermId>& t = resolved[pi][i];
      if (!t) continue;
      terms.push_back(ir::EvalTerm{
          &part.index->postings(*t),
          ir::TermWeight(eff_df[i], eff_cl, options), eff_df[i]});
    }
    if (terms.empty()) continue;
    const size_t want = n + part_tombstones_[pi];
    ir::RankStats part_stats;
    std::vector<ir::ScoredDoc> top = ir::EvaluateTopN(
        std::move(terms), part.index->document_count(),
        part.index->inv_doc_length_data(), part.index->max_inv_doc_length(),
        want, /*initial_threshold=*/0.0, ir::DocIdTieLess{}, options,
        &part_stats);
    if (stats != nullptr) AddRankStats(part_stats, stats);
    size_t kept = 0;
    for (const ir::ScoredDoc& d : top) {
      const uint64_t id = part.global_ids[d.doc];
      if (IsDeleted(id)) continue;
      cands.push_back(Cand{d.score, id, &part, d.doc});
      if (++kept == n) break;
    }
  }

  // Merge on (score desc, global id asc): global ids are insertion
  // order, i.e. exactly a rebuild's doc-id tie order.
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (cands.size() > n) cands.resize(n);
  std::vector<LiveScoredDoc> out;
  out.reserve(cands.size());
  for (const Cand& c : cands) {
    out.push_back(LiveScoredDoc{c.id, c.part->index->url(c.local), c.score});
  }
  return out;
}

// ---------------------------------------------------------------------------
// LiveIndex

LiveIndex::LiveIndex(LiveIndexOptions options)
    : options_(std::move(options)) {
  if (options_.delta_seal_docs == 0) options_.delta_seal_docs = 1;
  tombstones_ = std::make_shared<const std::unordered_set<uint64_t>>();
  df_minus_ =
      std::make_shared<const std::unordered_map<std::string, int32_t>>();
  auto snap = std::make_shared<Snapshot>();
  snap->tombstones_ = tombstones_;
  snap->df_minus_ = df_minus_;
  snap->stem_ = options_.node.stem;
  snap->stop_ = options_.node.stop;
  {
    std::lock_guard<std::mutex> snap_lock(snap_mu_);
    snapshot_ = std::move(snap);
  }
  if (options_.auto_merge_docs > 0) {
    merge_thread_ = std::thread([this] { MergeLoop(); });
  }
}

LiveIndex::~LiveIndex() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  merge_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
}

std::shared_ptr<ir::TextIndex> LiveIndex::BuildPart(
    const std::vector<std::pair<std::string, std::string>>& docs) const {
  ir::TextIndex::Options opts = options_.node;
  opts.flush_batch = docs.size() + 1;  // one fold at the end
  auto index = std::make_shared<ir::TextIndex>(opts);
  for (const auto& [url, text] : docs) index->AddDocument(url, text);
  index->Flush();
  return index;
}

void LiveIndex::PublishLocked(std::shared_ptr<Snapshot> snap) {
  snap->parts_ = parts_;
  snap->part_tombstones_ = part_tombstones_;
  snap->tombstones_ = tombstones_;
  snap->df_minus_ = df_minus_;
  snap->cl_minus_ = cl_minus_;
  snap->total_docs_ = 0;
  for (const auto& p : parts_) snap->total_docs_ += p->global_ids.size();
  snap->epoch_ = ++epoch_;
  snap->stem_ = options_.node.stem;
  snap->stop_ = options_.node.stop;
  std::lock_guard<std::mutex> snap_lock(snap_mu_);
  snapshot_ = std::move(snap);
}

Result<uint64_t> LiveIndex::Insert(std::string_view url,
                                   std::string_view text) {
  std::unique_lock<std::mutex> lock(mu_);
  std::string key(url);
  auto it = url_to_id_.find(key);
  if (it != url_to_id_.end() && docs_[it->second].alive) {
    return Status::AlreadyExists(
        StrFormat("live document already has url '%s'", key.c_str()));
  }
  const uint64_t id = docs_.size();
  docs_.push_back(StoredDoc{key, std::string(text), true});
  url_to_id_[key] = id;
  active_ids_.push_back(id);

  // Rebuild the active delta part with the new document. The part
  // object is replaced wholesale — published snapshots keep the old
  // one, so readers never observe a mutating index.
  std::vector<std::pair<std::string, std::string>> bodies;
  bodies.reserve(active_ids_.size());
  for (uint64_t d : active_ids_) {
    bodies.emplace_back(docs_[d].url, docs_[d].text);
  }
  auto part = std::make_shared<Part>();
  part->index = BuildPart(bodies);
  part->global_ids = active_ids_;
  part->frozen = false;
  uint32_t dead = 0;
  for (uint64_t d : active_ids_) {
    if (tombstones_->count(d) != 0) ++dead;
  }
  if (active_part_ != nullptr) {
    assert(!parts_.empty() && parts_.back() == active_part_);
    parts_.back() = part;
    part_tombstones_.back() = dead;
  } else {
    parts_.push_back(part);
    part_tombstones_.push_back(dead);
  }
  active_part_ = part;
  if (active_ids_.size() >= options_.delta_seal_docs) {
    active_part_ = nullptr;  // sealed: the next insert opens a new part
    active_ids_.clear();
  }
  PublishLocked(std::make_shared<Snapshot>());

  bool wake = false;
  if (options_.auto_merge_docs > 0) {
    size_t delta = 0;
    for (const auto& p : parts_) {
      if (!p->frozen) delta += p->global_ids.size();
    }
    wake = delta >= options_.auto_merge_docs;
  }
  lock.unlock();
  if (wake) merge_cv_.notify_all();
  return id;
}

bool LiveIndex::Delete(std::string_view url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = url_to_id_.find(std::string(url));
  if (it == url_to_id_.end()) return false;
  const uint64_t id = it->second;
  if (!docs_[id].alive) return false;
  docs_[id].alive = false;

  auto tomb = std::make_shared<std::unordered_set<uint64_t>>(*tombstones_);
  tomb->insert(id);
  tombstones_ = std::move(tomb);

  // Reverse the document's statistics contribution: every part keeps
  // counting it (postings are immutable), so queries subtract it from
  // df and the collection length to score against live-only stats.
  int64_t length = 0;
  std::unordered_map<std::string, int32_t> counts = TermCounts(
      docs_[id].text, options_.node.stem, options_.node.stop, &length);
  auto minus =
      std::make_shared<std::unordered_map<std::string, int32_t>>(*df_minus_);
  for (const auto& [stem, tf] : counts) ++(*minus)[stem];
  df_minus_ = std::move(minus);
  cl_minus_ += length;

  for (size_t pi = 0; pi < parts_.size(); ++pi) {
    const std::vector<uint64_t>& ids = parts_[pi]->global_ids;
    if (std::binary_search(ids.begin(), ids.end(), id)) {
      ++part_tombstones_[pi];
      break;
    }
  }
  PublishLocked(std::make_shared<Snapshot>());
  return true;
}

void LiveIndex::Merge() {
  // One merge at a time (foreground callers vs the background thread);
  // mutations keep flowing — mu_ is held only to claim and to swap.
  std::lock_guard<std::mutex> merge_lock(merge_mu_);

  struct ClaimedDoc {
    uint64_t id;
    bool alive;
    std::string url;
    std::string text;
  };
  std::vector<std::shared_ptr<const Part>> claimed;
  std::vector<ClaimedDoc> cdocs;
  uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& p : parts_) {
      if (!p->frozen) claimed.push_back(p);
    }
    for (const auto& p : claimed) {
      for (uint64_t id : p->global_ids) {
        cdocs.push_back(
            ClaimedDoc{id, docs_[id].alive, docs_[id].url, docs_[id].text});
      }
    }
    // Seal the active part: inserts landing during the build go to a
    // fresh delta part that the swap below leaves untouched.
    active_part_ = nullptr;
    active_ids_.clear();
    seq = run_seq_++;
  }
  std::sort(cdocs.begin(), cdocs.end(),
            [](const ClaimedDoc& a, const ClaimedDoc& b) {
              return a.id < b.id;
            });

  // Build the packed run from the claimed parts' live documents —
  // outside every lock, so queries and mutations never stall on the
  // rebuild ("no stop-the-world").
  std::shared_ptr<Part> run;
  {
    std::vector<std::pair<std::string, std::string>> bodies;
    std::vector<uint64_t> ids;
    for (const ClaimedDoc& d : cdocs) {
      if (!d.alive) continue;
      bodies.emplace_back(d.url, d.text);
      ids.push_back(d.id);
    }
    if (!bodies.empty()) {
      std::shared_ptr<ir::TextIndex> index = BuildPart(bodies);
      if (!options_.segment_dir.empty()) {
        const std::string path =
            StrFormat("%s/run-%llu.seg", options_.segment_dir.c_str(),
                      static_cast<unsigned long long>(seq));
        if (index->FlushToDisk(path).ok()) {
          Result<std::unique_ptr<ir::TextIndex>> loaded =
              ir::TextIndex::LoadFromSegment(path);
          if (loaded.ok()) {
            index = std::shared_ptr<ir::TextIndex>(
                std::move(loaded).value().release());
          }
          // A failed write/load keeps the heap-built run: the merge
          // must never lose documents over an I/O error.
        }
      }
      run = std::make_shared<Part>();
      run->fragments = std::make_shared<ir::FragmentedIndex>(
          index.get(), options_.num_fragments);
      run->index = std::move(index);
      run->global_ids = std::move(ids);
      run->frozen = true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Documents tombstoned at claim time were excluded from the run:
    // they are gone physically, so their tombstones and statistics
    // corrections are reversed. Documents deleted *during* the build
    // are inside the run and keep their tombstones — still exact.
    auto tomb = std::make_shared<std::unordered_set<uint64_t>>(*tombstones_);
    auto minus = std::make_shared<std::unordered_map<std::string, int32_t>>(
        *df_minus_);
    for (const ClaimedDoc& d : cdocs) {
      if (d.alive) continue;
      tomb->erase(d.id);
      int64_t length = 0;
      std::unordered_map<std::string, int32_t> counts = TermCounts(
          d.text, options_.node.stem, options_.node.stop, &length);
      for (const auto& [stem, tf] : counts) {
        auto it = minus->find(stem);
        if (it != minus->end() && --it->second <= 0) minus->erase(it);
      }
      cl_minus_ -= length;
    }

    std::vector<std::shared_ptr<const Part>> new_parts;
    std::vector<uint32_t> new_counts;
    bool placed = false;
    auto is_claimed = [&claimed](const std::shared_ptr<const Part>& p) {
      return std::find(claimed.begin(), claimed.end(), p) != claimed.end();
    };
    for (size_t pi = 0; pi < parts_.size(); ++pi) {
      if (is_claimed(parts_[pi])) {
        if (!placed && run != nullptr) {
          uint32_t dead = 0;
          for (uint64_t id : run->global_ids) {
            if (tomb->count(id) != 0) ++dead;
          }
          new_parts.push_back(run);
          new_counts.push_back(dead);
        }
        placed = true;
        continue;
      }
      new_parts.push_back(parts_[pi]);
      new_counts.push_back(part_tombstones_[pi]);
    }
    parts_ = std::move(new_parts);
    part_tombstones_ = std::move(new_counts);
    tombstones_ = std::move(tomb);
    df_minus_ = std::move(minus);
    PublishLocked(std::make_shared<Snapshot>());
    merges_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const LiveIndex::Snapshot> LiveIndex::Pin() const {
  std::lock_guard<std::mutex> snap_lock(snap_mu_);
  return snapshot_;
}

std::vector<LiveScoredDoc> LiveIndex::Query(
    const std::vector<std::string>& words, size_t n,
    const ir::RankOptions& options, ir::RankStats* stats) const {
  return Pin()->Query(words, n, options, stats);
}

LiveIndexStats LiveIndex::Stats() const {
  std::shared_ptr<const Snapshot> snap = Pin();
  LiveIndexStats stats;
  stats.epoch = snap->epoch();
  stats.live_docs = snap->live_docs();
  stats.total_docs = snap->total_docs();
  stats.tombstones = snap->tombstone_count();
  stats.parts = snap->parts().size();
  stats.collection_length = snap->collection_length();
  stats.merges = merges_.load(std::memory_order_relaxed);
  for (const auto& p : snap->parts()) {
    if (!p->frozen) {
      ++stats.delta_parts;
      stats.delta_docs += p->global_ids.size();
    }
    stats.bytes_resident += p->index->bytes_resident();
    stats.bytes_mapped += p->index->bytes_mapped();
  }
  return stats;
}

void LiveIndex::MergeLoop() {
  const auto poll = std::chrono::milliseconds(
      options_.merge_poll_ms > 0 ? options_.merge_poll_ms : 1);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    merge_cv_.wait_for(lock, poll);
    if (stop_) break;
    size_t delta = 0;
    for (const auto& p : parts_) {
      if (!p->frozen) delta += p->global_ids.size();
    }
    if (delta < options_.auto_merge_docs) continue;
    lock.unlock();
    Merge();
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Cluster shard evaluation

ir::ShardResult EvaluateLiveShardQuery(const LiveIndex::Snapshot& snapshot,
                                       const ir::ShardQuery& query) {
  Timer timer;
  ir::ShardResult result;
  const std::vector<std::string>& stems = query.stems;
  const ir::RankOptions& options = query.options;
  result.stem_evaluated.assign(stems.size(), true);

  struct Cand {
    std::string url;
    double score;
  };
  std::vector<Cand> cands;
  const std::vector<std::shared_ptr<const LiveIndex::Part>>& parts =
      snapshot.parts();
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const LiveIndex::Part& part = *parts[pi];
    std::vector<ir::EvalTerm> terms;
    terms.reserve(stems.size());
    for (size_t i = 0; i < stems.size(); ++i) {
      std::optional<ir::TermId> t = part.index->LookupTerm(stems[i]);
      // Fragment cut-off applies to merged runs (delta parts are tiny
      // and always evaluated exactly); a skipped stem counts against
      // the a-priori quality estimate like on a frozen node.
      if (t && part.fragments != nullptr &&
          part.fragments->FragmentOf(*t) >= query.max_fragments) {
        result.stem_evaluated[i] = false;
        continue;
      }
      if (!t) continue;  // unknown in this part
      if (query.stem_global_df[i] <= 0) continue;
      terms.push_back(ir::EvalTerm{
          &part.index->postings(*t),
          ir::TermWeight(query.stem_global_df[i], query.collection_length,
                         options),
          query.stem_global_df[i]});
    }
    if (terms.empty()) continue;
    const ir::ErasedTieLess url_less{
        [](const void* ctx, ir::DocId a, ir::DocId b) {
          const ir::TextIndex& idx = *static_cast<const ir::TextIndex*>(ctx);
          return idx.url(a) < idx.url(b);
        },
        part.index.get()};
    // Over-fetch by the part's tombstone count so the post-filter
    // top-n is exact (see LiveIndex::Snapshot::Query).
    uint32_t dead = 0;
    for (uint64_t id : part.global_ids) {
      if (snapshot.IsDeleted(id)) ++dead;
    }
    ir::RankStats rank_stats;
    std::vector<ir::ScoredDoc> local = ir::EvaluateTopN(
        std::move(terms), part.index->document_count(),
        part.index->inv_doc_length_data(), part.index->max_inv_doc_length(),
        query.n + dead, query.threshold, url_less, options, &rank_stats);
    result.postings_touched += rank_stats.postings_touched;
    result.blocks_skipped += rank_stats.blocks_skipped;
    result.blocks_decoded += rank_stats.blocks_decoded;
    result.pivot_iterations += rank_stats.pivot_iterations;
    result.cursor_advances += rank_stats.cursor_advances;
    size_t kept = 0;
    for (const ir::ScoredDoc& d : local) {
      if (snapshot.IsDeleted(part.global_ids[d.doc])) continue;
      cands.push_back(Cand{part.index->url(d.doc), d.score});
      if (++kept == query.n) break;
    }
  }

  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.url < b.url;
  });
  if (cands.size() > query.n) cands.resize(query.n);
  result.top.reserve(cands.size());
  for (Cand& c : cands) {
    result.top.push_back(ir::ClusterScoredDoc{std::move(c.url), c.score});
  }
  result.elapsed_us = timer.ElapsedSeconds() * 1e6;
  return result;
}

ir::ShardResult EvaluateLiveShardQuery(const LiveIndex& live,
                                       const ir::ShardQuery& query) {
  return EvaluateLiveShardQuery(*live.Pin(), query);
}

}  // namespace dls::ingest
