#include "xml/writer.h"

#include "common/strings.h"

namespace dls::xml {
namespace {

void WriteNode(const Document& doc, NodeId id, const WriteOptions& options,
               int depth, std::string* out) {
  const Node& n = doc.node(id);
  if (n.kind == NodeKind::kText) {
    *out += XmlEscape(n.text);
    return;
  }

  auto indent = [&](int d) {
    if (options.pretty) out->append(static_cast<size_t>(d) * 2, ' ');
  };

  indent(depth);
  *out += '<';
  *out += n.name;
  for (const Attribute& attr : n.attributes) {
    *out += ' ';
    *out += attr.name;
    *out += "=\"";
    *out += XmlEscape(attr.value);
    *out += '"';
  }
  if (n.children.empty()) {
    *out += "/>";
    if (options.pretty) *out += '\n';
    return;
  }
  *out += '>';

  bool has_element_child = false;
  for (NodeId child : n.children) {
    if (doc.node(child).kind == NodeKind::kElement) {
      has_element_child = true;
      break;
    }
  }

  if (options.pretty && has_element_child) *out += '\n';
  for (NodeId child : n.children) {
    if (doc.node(child).kind == NodeKind::kText) {
      WriteNode(doc, child, options, 0, out);
    } else {
      WriteNode(doc, child, options, depth + 1, out);
    }
  }
  if (options.pretty && has_element_child) indent(depth);
  *out += "</";
  *out += n.name;
  *out += '>';
  if (options.pretty) *out += '\n';
}

}  // namespace

std::string Write(const Document& doc, const WriteOptions& options) {
  if (!doc.has_root()) return "";
  return WriteSubtree(doc, doc.root(), options);
}

std::string WriteSubtree(const Document& doc, NodeId id,
                         const WriteOptions& options) {
  std::string out;
  WriteNode(doc, id, options, 0, &out);
  return out;
}

}  // namespace dls::xml
