#ifndef DLS_XML_PARSER_H_
#define DLS_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/events.h"
#include "xml/tree.h"

namespace dls::xml {

/// Streams SAX events for `text` into `handler`.
///
/// Supported XML subset (sufficient for every document the system
/// produces or ingests): element tags with attributes (single or double
/// quoted), character data, self-closing tags, `<?...?>` processing
/// instructions, `<!-- -->` comments, `<![CDATA[...]]>` sections, and
/// the five predefined entities plus `&#NNN;` / `&#xHH;` numeric
/// references (ASCII range). DTDs are intentionally rejected: the
/// physical mapping is DTD-less by design (see DESIGN.md).
Status ParseStream(std::string_view text, ContentHandler* handler);

/// Parses `text` into a Document tree.
Result<Document> Parse(std::string_view text);

}  // namespace dls::xml

#endif  // DLS_XML_PARSER_H_
