#ifndef DLS_XML_EVENTS_H_
#define DLS_XML_EVENTS_H_

#include <string_view>
#include <vector>

#include "xml/tree.h"

namespace dls::xml {

/// SAX-style content handler. The streaming parser invokes these
/// callbacks in document order; handlers must not retain the
/// string_views past the callback.
///
/// This is the interface the Monet bulkloader consumes: it needs only
/// O(document height) state (a path stack), never a full tree — the
/// memory property the paper claims for its bulkload.
class ContentHandler {
 public:
  virtual ~ContentHandler() = default;

  /// Called once before any other event.
  virtual void StartDocument() {}
  /// Called once after all other events (only on successful parses).
  virtual void EndDocument() {}

  virtual void StartElement(std::string_view name,
                            const std::vector<Attribute>& attributes) = 0;
  virtual void EndElement(std::string_view name) = 0;
  /// Character data; may be called multiple times within one element.
  virtual void Characters(std::string_view text) = 0;
};

/// ContentHandler that materialises a full Document (the DOM path).
class TreeBuilder : public ContentHandler {
 public:
  void StartElement(std::string_view name,
                    const std::vector<Attribute>& attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;

  /// Moves the built document out. Call once, after parsing succeeds.
  Document TakeDocument() { return std::move(doc_); }

 private:
  Document doc_;
  std::vector<NodeId> stack_;
};

}  // namespace dls::xml

#endif  // DLS_XML_EVENTS_H_
