#include "xml/tree.h"

#include <cassert>

namespace dls::xml {

NodeId Document::AddNode(Node node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Document::CreateRoot(std::string_view name) {
  assert(root_ == kInvalidNode && "document already has a root");
  Node n;
  n.kind = NodeKind::kElement;
  n.name = std::string(name);
  root_ = AddNode(std::move(n));
  return root_;
}

NodeId Document::AppendElement(NodeId parent, std::string_view name) {
  assert(parent < nodes_.size());
  Node n;
  n.kind = NodeKind::kElement;
  n.name = std::string(name);
  n.parent = parent;
  NodeId id = AddNode(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId Document::AppendText(NodeId parent, std::string_view text) {
  assert(parent < nodes_.size());
  Node n;
  n.kind = NodeKind::kText;
  n.text = std::string(text);
  n.parent = parent;
  NodeId id = AddNode(std::move(n));
  nodes_[parent].children.push_back(id);
  return id;
}

void Document::SetAttribute(NodeId id, std::string_view name,
                            std::string_view value) {
  assert(id < nodes_.size());
  for (Attribute& attr : nodes_[id].attributes) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  nodes_[id].attributes.push_back(
      Attribute{std::string(name), std::string(value)});
}

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view attr) const {
  for (const Attribute& a : nodes_[id].attributes) {
    if (a.name == attr) return &a.value;
  }
  return nullptr;
}

NodeId Document::FindChild(NodeId id, std::string_view name) const {
  for (NodeId child : nodes_[id].children) {
    const Node& n = nodes_[child];
    if (n.kind == NodeKind::kElement && n.name == name) return child;
  }
  return kInvalidNode;
}

std::vector<NodeId> Document::FindChildren(NodeId id,
                                           std::string_view name) const {
  std::vector<NodeId> out;
  for (NodeId child : nodes_[id].children) {
    const Node& n = nodes_[child];
    if (n.kind == NodeKind::kElement && n.name == name) out.push_back(child);
  }
  return out;
}

std::string Document::InnerText(NodeId id) const {
  std::string out;
  // Iterative DFS preserving document order.
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    const Node& n = nodes_[cur];
    if (n.kind == NodeKind::kText) out += n.text;
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

int Document::Rank(NodeId id) const {
  NodeId parent = nodes_[id].parent;
  if (parent == kInvalidNode) return 0;
  const std::vector<NodeId>& siblings = nodes_[parent].children;
  for (size_t i = 0; i < siblings.size(); ++i) {
    if (siblings[i] == id) return static_cast<int>(i);
  }
  return -1;
}

bool Document::NodesEqual(const Document& a, NodeId na, const Document& b,
                          NodeId nb) {
  const Node& x = a.nodes_[na];
  const Node& y = b.nodes_[nb];
  if (x.kind != y.kind || x.name != y.name || x.text != y.text) return false;
  // Attribute order is insignificant in XML; compare as a set.
  if (x.attributes.size() != y.attributes.size()) return false;
  for (const Attribute& ax : x.attributes) {
    bool found = false;
    for (const Attribute& ay : y.attributes) {
      if (ax.name == ay.name) {
        if (ax.value != ay.value) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (x.children.size() != y.children.size()) return false;
  for (size_t i = 0; i < x.children.size(); ++i) {
    if (!NodesEqual(a, x.children[i], b, y.children[i])) return false;
  }
  return true;
}

bool Document::IsomorphicTo(const Document& other) const {
  if (has_root() != other.has_root()) return false;
  if (!has_root()) return true;
  return NodesEqual(*this, root_, other, other.root_);
}

}  // namespace dls::xml
