#include "xml/parser.h"

#include <cassert>

#include "common/strings.h"

namespace dls::xml {
namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < text_.size() ? text_[pos_ + offset] : '\0';
  }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool Consume(std::string_view token) {
    if (text_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  void SkipSpace() {
    while (!AtEnd() && IsSpace(Peek())) Advance();
  }

  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view Slice(size_t from, size_t to) const {
    return text_.substr(from, to - from);
  }

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("line %d: %s", line_, what.c_str()));
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Decodes entity and numeric character references in raw text.
Status DecodeText(Cursor* cur, std::string_view raw, std::string* out) {
  out->reserve(out->size() + raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out->push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return cur->Error("unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      int code = 0;
      bool ok = false;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t k = 2; k < ent.size(); ++k) {
          char c = ent[k];
          int digit;
          if (c >= '0' && c <= '9') {
            digit = c - '0';
          } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
          } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
          } else {
            return cur->Error("bad hex character reference");
          }
          code = code * 16 + digit;
          ok = true;
        }
      } else {
        for (size_t k = 1; k < ent.size(); ++k) {
          char c = ent[k];
          if (c < '0' || c > '9') {
            return cur->Error("bad decimal character reference");
          }
          code = code * 10 + (c - '0');
          ok = true;
        }
      }
      if (!ok || code <= 0 || code > 127) {
        return cur->Error("character reference out of supported ASCII range");
      }
      out->push_back(static_cast<char>(code));
    } else {
      return cur->Error("unknown entity '&" + std::string(ent) + ";'");
    }
    i = semi;
  }
  return Status::Ok();
}

Status ParseName(Cursor* cur, std::string* name) {
  if (cur->AtEnd() || !IsNameStart(cur->Peek())) {
    return cur->Error("expected a name");
  }
  size_t start = cur->pos();
  while (!cur->AtEnd() && IsNameChar(cur->Peek())) cur->Advance();
  *name = std::string(cur->Slice(start, cur->pos()));
  return Status::Ok();
}

Status ParseAttributes(Cursor* cur, std::vector<Attribute>* attrs) {
  attrs->clear();
  while (true) {
    cur->SkipSpace();
    if (cur->AtEnd()) return cur->Error("unterminated start tag");
    char c = cur->Peek();
    if (c == '>' || c == '/' || c == '?') return Status::Ok();
    Attribute attr;
    DLS_RETURN_IF_ERROR(ParseName(cur, &attr.name));
    cur->SkipSpace();
    if (cur->AtEnd() || cur->Peek() != '=') {
      return cur->Error("expected '=' after attribute name");
    }
    cur->Advance();
    cur->SkipSpace();
    if (cur->AtEnd() || (cur->Peek() != '"' && cur->Peek() != '\'')) {
      return cur->Error("expected quoted attribute value");
    }
    char quote = cur->Advance();
    size_t start = cur->pos();
    while (!cur->AtEnd() && cur->Peek() != quote) {
      if (cur->Peek() == '<') return cur->Error("'<' in attribute value");
      cur->Advance();
    }
    if (cur->AtEnd()) return cur->Error("unterminated attribute value");
    std::string_view raw = cur->Slice(start, cur->pos());
    cur->Advance();  // closing quote
    DLS_RETURN_IF_ERROR(DecodeText(cur, raw, &attr.value));
    attrs->push_back(std::move(attr));
  }
}

}  // namespace

Status ParseStream(std::string_view text, ContentHandler* handler) {
  Cursor cur(text);
  handler->StartDocument();

  std::vector<std::string> open_elements;
  bool seen_root = false;
  std::string pending_text;

  auto flush_text = [&]() {
    if (!pending_text.empty()) {
      if (!open_elements.empty()) handler->Characters(pending_text);
      pending_text.clear();
    }
  };

  while (!cur.AtEnd()) {
    if (cur.Peek() != '<') {
      size_t start = cur.pos();
      while (!cur.AtEnd() && cur.Peek() != '<') cur.Advance();
      std::string_view raw = cur.Slice(start, cur.pos());
      if (open_elements.empty()) {
        // Only whitespace is allowed outside the root element.
        if (!Trim(raw).empty()) {
          return cur.Error("character data outside the root element");
        }
        continue;
      }
      DLS_RETURN_IF_ERROR(DecodeText(&cur, raw, &pending_text));
      continue;
    }

    // Markup.
    if (cur.Consume("<!--")) {
      size_t end = text.find("-->", cur.pos());
      if (end == std::string_view::npos) {
        return cur.Error("unterminated comment");
      }
      while (cur.pos() < end + 3) cur.Advance();
      continue;
    }
    if (cur.Consume("<![CDATA[")) {
      size_t end = text.find("]]>", cur.pos());
      if (end == std::string_view::npos) {
        return cur.Error("unterminated CDATA section");
      }
      if (open_elements.empty()) {
        return cur.Error("CDATA outside the root element");
      }
      pending_text += std::string(cur.Slice(cur.pos(), end));
      while (cur.pos() < end + 3) cur.Advance();
      continue;
    }
    if (cur.PeekAt(1) == '!') {
      return cur.Error("DTD declarations are not supported (DTD-less mapping)");
    }
    if (cur.PeekAt(1) == '?') {
      size_t end = text.find("?>", cur.pos());
      if (end == std::string_view::npos) {
        return cur.Error("unterminated processing instruction");
      }
      while (cur.pos() < end + 2) cur.Advance();
      continue;
    }
    if (cur.PeekAt(1) == '/') {
      flush_text();
      cur.Advance();
      cur.Advance();
      std::string name;
      DLS_RETURN_IF_ERROR(ParseName(&cur, &name));
      cur.SkipSpace();
      if (cur.AtEnd() || cur.Advance() != '>') {
        return cur.Error("malformed end tag");
      }
      if (open_elements.empty() || open_elements.back() != name) {
        return cur.Error("mismatched end tag </" + name + ">");
      }
      open_elements.pop_back();
      handler->EndElement(name);
      continue;
    }

    // Start tag.
    flush_text();
    cur.Advance();  // '<'
    std::string name;
    DLS_RETURN_IF_ERROR(ParseName(&cur, &name));
    std::vector<Attribute> attrs;
    DLS_RETURN_IF_ERROR(ParseAttributes(&cur, &attrs));
    bool self_closing = false;
    if (cur.Peek() == '/') {
      cur.Advance();
      self_closing = true;
    }
    if (cur.AtEnd() || cur.Advance() != '>') {
      return cur.Error("malformed start tag <" + name + ">");
    }
    if (open_elements.empty() && seen_root) {
      return cur.Error("multiple root elements");
    }
    seen_root = true;
    handler->StartElement(name, attrs);
    if (self_closing) {
      handler->EndElement(name);
    } else {
      open_elements.push_back(name);
    }
  }

  flush_text();
  if (!open_elements.empty()) {
    return cur.Error("unclosed element <" + open_elements.back() + ">");
  }
  if (!seen_root) return cur.Error("no root element");
  handler->EndDocument();
  return Status::Ok();
}

Result<Document> Parse(std::string_view text) {
  TreeBuilder builder;
  Status s = ParseStream(text, &builder);
  if (!s.ok()) return s;
  return builder.TakeDocument();
}

}  // namespace dls::xml
