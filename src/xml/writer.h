#ifndef DLS_XML_WRITER_H_
#define DLS_XML_WRITER_H_

#include <string>

#include "xml/tree.h"

namespace dls::xml {

/// Serialisation options.
struct WriteOptions {
  /// Indent child elements by two spaces per depth level and put each
  /// element on its own line. Text nodes are emitted inline.
  bool pretty = false;
};

/// Serialises `doc` back to XML text. Round-trips with Parse(): for any
/// document d, Parse(Write(d)) is isomorphic to d (modulo the
/// whitespace introduced by pretty-printing, so use pretty=false when
/// round-tripping).
std::string Write(const Document& doc, const WriteOptions& options = {});

/// Serialises the subtree rooted at `id`.
std::string WriteSubtree(const Document& doc, NodeId id,
                         const WriteOptions& options = {});

}  // namespace dls::xml

#endif  // DLS_XML_WRITER_H_
