#include "xml/events.h"

namespace dls::xml {

void TreeBuilder::StartElement(std::string_view name,
                               const std::vector<Attribute>& attributes) {
  NodeId id;
  if (stack_.empty()) {
    id = doc_.CreateRoot(name);
  } else {
    id = doc_.AppendElement(stack_.back(), name);
  }
  for (const Attribute& attr : attributes) {
    doc_.SetAttribute(id, attr.name, attr.value);
  }
  stack_.push_back(id);
}

void TreeBuilder::EndElement(std::string_view /*name*/) { stack_.pop_back(); }

void TreeBuilder::Characters(std::string_view text) {
  if (!stack_.empty()) doc_.AppendText(stack_.back(), text);
}

}  // namespace dls::xml
