#ifndef DLS_XML_TREE_H_
#define DLS_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dls::xml {

/// Index of a node inside its owning Document arena.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Node kinds. Character data is a node of its own (the paper models
/// PCDATA as a special attribute of dedicated cdata nodes).
enum class NodeKind : uint8_t {
  kElement,
  kText,
};

/// One XML attribute (name="value"). Order-preserving.
struct Attribute {
  std::string name;
  std::string value;
};

/// A node of the rooted, ordered tree d = (V, E, r, labelE, labelA, rank)
/// from the paper's formal definition. `rank` is implicit in the order
/// of the `children` vector.
struct Node {
  NodeKind kind = NodeKind::kElement;
  /// Element name for kElement; empty for kText.
  std::string name;
  /// Character data for kText; empty for kElement.
  std::string text;
  std::vector<Attribute> attributes;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
};

/// An XML document: an arena of nodes plus a distinguished root.
///
/// Nodes are created through the builder methods and referenced by
/// NodeId; ids are stable for the lifetime of the document (no erase).
class Document {
 public:
  Document() = default;

  // Movable, not copyable (documents can be large; copy explicitly via
  // Clone if ever needed).
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Creates the root element. Precondition: no root exists yet.
  NodeId CreateRoot(std::string_view name);

  /// Appends a child element under `parent` and returns its id.
  NodeId AppendElement(NodeId parent, std::string_view name);

  /// Appends a text node under `parent`.
  NodeId AppendText(NodeId parent, std::string_view text);

  /// Adds an attribute to an element node.
  void SetAttribute(NodeId id, std::string_view name, std::string_view value);

  bool has_root() const { return root_ != kInvalidNode; }
  NodeId root() const { return root_; }
  size_t node_count() const { return nodes_.size(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& mutable_node(NodeId id) { return nodes_[id]; }

  /// Returns the value of `attr` on `id`, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, std::string_view attr) const;

  /// First child element of `id` named `name`, or kInvalidNode.
  NodeId FindChild(NodeId id, std::string_view name) const;

  /// All child elements of `id` named `name`.
  std::vector<NodeId> FindChildren(NodeId id, std::string_view name) const;

  /// Concatenated text of all descendant text nodes of `id`.
  std::string InnerText(NodeId id) const;

  /// 0-based position among the parent's children (the paper's rank).
  int Rank(NodeId id) const;

  /// Structural equality (names, attributes, text, order) with `other`.
  /// Whitespace-only text differences are significant; callers that
  /// want lenient comparison should normalise first.
  bool IsomorphicTo(const Document& other) const;

 private:
  NodeId AddNode(Node node);
  static bool NodesEqual(const Document& a, NodeId na, const Document& b,
                         NodeId nb);

  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
};

}  // namespace dls::xml

#endif  // DLS_XML_TREE_H_
