#include "serve/backend.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "ir/index.h"

namespace dls::serve {

std::vector<std::vector<ir::ClusterScoredDoc>> LocalBackend::QueryBatch(
    const std::vector<std::vector<std::string>>& queries, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    std::vector<ir::ClusterQueryStats>* per_query_stats,
    const ir::RankOptions& options) const {
  std::vector<std::vector<ir::ClusterScoredDoc>> results;
  results.reserve(queries.size());
  if (per_query_stats != nullptr) {
    per_query_stats->clear();
    per_query_stats->reserve(queries.size());
  }
  ir::ClusterQueryStats batch;
  batch.predicted_quality = 1.0;
  for (const std::vector<std::string>& words : queries) {
    ir::ClusterQueryStats one;
    results.push_back(cluster_->Query(words, n, max_fragments, &one, options));
    batch.messages += one.messages;
    batch.bytes_shipped += one.bytes_shipped;
    batch.postings_touched_total += one.postings_touched_total;
    batch.postings_touched_max_node = std::max(
        batch.postings_touched_max_node, one.postings_touched_max_node);
    batch.blocks_skipped += one.blocks_skipped;
    batch.predicted_quality =
        std::min(batch.predicted_quality, one.predicted_quality);
    batch.critical_path_us += one.critical_path_us;
    batch.total_cpu_us += one.total_cpu_us;
    // The local path evaluates queries one by one, so per-rider
    // attribution is just each query's own stats block.
    if (per_query_stats != nullptr) per_query_stats->push_back(one);
  }
  if (stats != nullptr) *stats = batch;
  return results;
}

std::vector<std::vector<ir::ClusterScoredDoc>> LiveBackend::QueryBatch(
    const std::vector<std::vector<std::string>>& queries, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    std::vector<ir::ClusterQueryStats>* per_query_stats,
    const ir::RankOptions& options) const {
  // One pinned snapshot for the whole batch: every rider answers from
  // the identical epoch, regardless of concurrent inserts, deletes or
  // a background merge swapping parts mid-batch.
  const std::shared_ptr<const ingest::LiveIndex::Snapshot> snapshot =
      live_->Pin();
  const bool stem = live_->options().node.stem;
  const bool stop = live_->options().node.stop;

  std::vector<std::vector<ir::ClusterScoredDoc>> results;
  results.reserve(queries.size());
  if (per_query_stats != nullptr) {
    per_query_stats->clear();
    per_query_stats->reserve(queries.size());
  }
  ir::ClusterQueryStats batch;
  batch.predicted_quality = 1.0;
  for (const std::vector<std::string>& words : queries) {
    // Central resolution against the snapshot's *effective* statistics
    // — the same pipeline ClusterIndex::Query runs against its frozen
    // global relation, so the ShardQuery is exact for this epoch.
    ir::ShardQuery request;
    request.collection_length = snapshot->collection_length();
    request.n = n;
    request.max_fragments = max_fragments;
    request.options = options;
    double idf_mass_total = 0;
    for (const std::string& word : words) {
      std::optional<std::string> norm = ir::NormalizeWordAs(word, stem, stop);
      if (!norm) continue;
      if (std::find(request.stems.begin(), request.stems.end(), *norm) !=
          request.stems.end()) {
        continue;
      }
      const int32_t df = snapshot->EffectiveDf(*norm);
      if (df <= 0) continue;  // not in this epoch's live vocabulary
      request.stems.push_back(std::move(*norm));
      request.stem_global_df.push_back(df);
      idf_mass_total += 1.0 / static_cast<double>(df);
    }

    std::vector<ir::ShardResult> responses(1);
    responses[0] = ingest::EvaluateLiveShardQuery(*snapshot, request);

    double idf_mass_read = 0;
    for (size_t i = 0; i < request.stems.size(); ++i) {
      if (responses[0].stem_evaluated[i]) {
        idf_mass_read += 1.0 / static_cast<double>(request.stem_global_df[i]);
      }
    }
    ir::ClusterQueryStats one;
    one.postings_touched_total = responses[0].postings_touched;
    one.postings_touched_max_node = responses[0].postings_touched;
    one.blocks_skipped = responses[0].blocks_skipped;
    one.blocks_decoded = responses[0].blocks_decoded;
    one.pivot_iterations = responses[0].pivot_iterations;
    one.cursor_advances = responses[0].cursor_advances;
    one.critical_path_us = responses[0].elapsed_us;
    one.total_cpu_us = responses[0].elapsed_us;
    one.predicted_quality =
        idf_mass_total > 0 ? idf_mass_read / idf_mass_total : 1.0;

    results.push_back(ir::MergeShardResults(&responses, n));

    batch.postings_touched_total += one.postings_touched_total;
    batch.postings_touched_max_node =
        std::max(batch.postings_touched_max_node, one.postings_touched_max_node);
    batch.blocks_skipped += one.blocks_skipped;
    batch.blocks_decoded += one.blocks_decoded;
    batch.pivot_iterations += one.pivot_iterations;
    batch.cursor_advances += one.cursor_advances;
    batch.predicted_quality =
        std::min(batch.predicted_quality, one.predicted_quality);
    batch.critical_path_us += one.critical_path_us;
    batch.total_cpu_us += one.total_cpu_us;
    if (per_query_stats != nullptr) per_query_stats->push_back(one);
  }
  if (stats != nullptr) *stats = batch;
  return results;
}

}  // namespace dls::serve
