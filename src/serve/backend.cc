#include "serve/backend.h"

#include <algorithm>

namespace dls::serve {

std::vector<std::vector<ir::ClusterScoredDoc>> LocalBackend::QueryBatch(
    const std::vector<std::vector<std::string>>& queries, size_t n,
    size_t max_fragments, ir::ClusterQueryStats* stats,
    std::vector<ir::ClusterQueryStats>* per_query_stats,
    const ir::RankOptions& options) const {
  std::vector<std::vector<ir::ClusterScoredDoc>> results;
  results.reserve(queries.size());
  if (per_query_stats != nullptr) {
    per_query_stats->clear();
    per_query_stats->reserve(queries.size());
  }
  ir::ClusterQueryStats batch;
  batch.predicted_quality = 1.0;
  for (const std::vector<std::string>& words : queries) {
    ir::ClusterQueryStats one;
    results.push_back(cluster_->Query(words, n, max_fragments, &one, options));
    batch.messages += one.messages;
    batch.bytes_shipped += one.bytes_shipped;
    batch.postings_touched_total += one.postings_touched_total;
    batch.postings_touched_max_node = std::max(
        batch.postings_touched_max_node, one.postings_touched_max_node);
    batch.blocks_skipped += one.blocks_skipped;
    batch.predicted_quality =
        std::min(batch.predicted_quality, one.predicted_quality);
    batch.critical_path_us += one.critical_path_us;
    batch.total_cpu_us += one.total_cpu_us;
    // The local path evaluates queries one by one, so per-rider
    // attribution is just each query's own stats block.
    if (per_query_stats != nullptr) per_query_stats->push_back(one);
  }
  if (stats != nullptr) *stats = batch;
  return results;
}

}  // namespace dls::serve
