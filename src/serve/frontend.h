#ifndef DLS_SERVE_FRONTEND_H_
#define DLS_SERVE_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/histogram.h"
#include "common/status.h"
#include "ir/cluster.h"
#include "serve/backend.h"
#include "serve/cache.h"
#include "serve/serve_stats.h"

namespace dls::federate {
class Mediator;
}  // namespace dls::federate

namespace dls::serve {

/// Tuning knobs of one Frontend. The defaults serve a small cluster
/// sensibly; the benchmark and the overload tests pick adversarial
/// values on purpose.
struct FrontendOptions {
  /// Admission bound: a Search() arriving while this many requests are
  /// queued is shed with kUnavailable (never blocks unboundedly).
  size_t max_queue = 256;

  /// Batch-evaluation workers. Each pops coalesced batches off the
  /// queue and drives one backend QueryBatch call at a time.
  size_t num_workers = 2;

  /// Dynamic batcher policy: a worker coalesces up to `max_batch`
  /// compatible queued queries, waiting at most `max_batch_wait_us`
  /// after the first for stragglers. Compatible = identical
  /// (n, effective max_fragments, RankOptions) — the batch ships under
  /// one policy.
  size_t max_batch = 8;
  int64_t max_batch_wait_us = 200;

  /// Whole-request budget for queries that don't bring their own
  /// (SearchQuery::deadline_ms == 0).
  int64_t default_deadline_ms = 1000;

  /// Result cache: total entries and lock shards.
  size_t cache_entries = 1024;
  size_t cache_shards = 8;

  /// Graceful degradation: at or above this queue depth the frontend
  /// halves the requested fragment cut-off (floor 1) before admitting,
  /// so predicted_quality degrades *before* shedding starts. 0
  /// disables degradation.
  size_t degrade_watermark = 16;

  /// Cache warming after an epoch bump (live-ingestion merges): a
  /// background warmer polls the backend epoch and, on a change,
  /// re-evaluates the `warm_top_k` hottest cache keys under the new
  /// epoch. While it runs, requests for entries still pinned to the
  /// warming-from epoch are served stale (flagged) instead of
  /// stampeding the backend cold. 0 disables the warmer — the cache
  /// then falls back to strict evict-on-mismatch.
  size_t warm_top_k = 8;
  /// Epoch poll cadence of the warmer thread.
  int64_t warm_poll_ms = 5;
  /// Serve flagged-stale answers from the warming-from epoch while the
  /// warmer is re-evaluating. Off, an epoch bump makes every cached
  /// query a miss until re-evaluated (the pre-warming behaviour).
  bool serve_stale_while_warming = true;
};

/// One client query, in raw words — the frontend normalises them with
/// the pipeline its backend advertises. `deadline_ms` 0 adopts
/// FrontendOptions::default_deadline_ms.
struct SearchQuery {
  std::vector<std::string> words;
  size_t n = 10;
  size_t max_fragments = 1;
  uint32_t deadline_ms = 0;
  ir::RankOptions options;
  /// Federated query string (src/federate query language). When
  /// non-empty, `words` is ignored and the query runs through the
  /// attached Mediator — still behind the same admission gate, queue,
  /// degradation and result cache as a plain word query.
  std::string structured;
};

/// The frontend's answer. An answered query has status kOk and a
/// ranking bit-identical to a direct cluster Query at the effective
/// (possibly degraded) cut-off; a shed one has kUnavailable (with a
/// retry-after hint) or kDeadlineExceeded and no ranking.
struct SearchResult {
  Status status = Status::Ok();
  uint32_t retry_after_ms = 0;
  bool cache_hit = false;
  bool degraded = false;
  /// Served from the warming-from epoch while the warmer re-evaluates
  /// (stale-while-warming); the ranking is exact for the *previous*
  /// epoch, not the current one.
  bool stale = false;
  double predicted_quality = 1.0;
  std::vector<ir::ClusterScoredDoc> results;
  /// Executed federation plan (federated queries only): which filters
  /// ran in which order, surviving candidate counts, and whether the
  /// ranked leg used pushdown. Cached answers reproduce the plan of
  /// the evaluation that filled the entry.
  std::string plan;
};

/// The query serving frontend: what stands between clients and a
/// cluster in the paper's deployment picture. Pipeline per Search():
///
///   degrade?  -> cache lookup -> admission gate -> queue ->
///   batcher   -> backend QueryBatch -> cache fill -> reply
///
/// - **Admission** is where load is shed: a full queue or a deadline
///   the EWMA service-time model says cannot be met rejects *now* with
///   kUnavailable + retry-after, instead of letting the request rot in
///   the queue past its budget. Requests that expire while queued are
///   answered kDeadlineExceeded without touching the backend.
/// - **Degradation** kicks in first: past the queue-depth watermark
///   the fragment cut-off halves, so answers get cheaper (lower
///   predicted_quality, honest `degraded` flag) while staying exact
///   for their cut-off — quality degrades before availability does.
/// - **Batching** coalesces compatible queued queries into one backend
///   QueryBatch (one frame per shard on the remote path). Duplicate
///   resolved queries inside a batch evaluate once.
/// - **Caching** keys on the *resolved* query (normalised, de-duped
///   stems — two spellings share an entry) plus the ranking policy,
///   and on the backend's mutation epoch: any reindex invalidates, and
///   a hit is provably bit-identical to re-evaluating.
/// - **Warming** (live backends): a background thread watches the
///   backend epoch; when a live merge or mutation bumps it, the top-K
///   hottest keys are re-evaluated under the new epoch before demand
///   arrives, and meanwhile entries from the immediately preceding
///   epoch are served flagged-stale — an epoch bump costs K warm
///   evaluations instead of a cold stampede of every cached query.
///
/// Thread-safety: Search() and Stats() are safe from any number of
/// threads; the blocking happens on the caller's thread (a server
/// wraps Search in its own connection workers, see FrontendServer).
class Frontend {
 public:
  /// `backend` is non-owning and must outlive the frontend.
  explicit Frontend(const Backend* backend, FrontendOptions options = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Attaches the federated query mediator (non-owning, must outlive
  /// the frontend). Call during setup, before serving traffic; without
  /// one, federated queries are refused with kUnsupported.
  void AttachMediator(const federate::Mediator* mediator) {
    mediator_ = mediator;
  }

  /// Answers or sheds one query; blocks the calling thread until the
  /// answer is ready (bounded by the deadline plus one batch).
  SearchResult Search(const SearchQuery& query);

  /// Point-in-time operational stats.
  ServeStats Stats() const;

  /// Drains the queue, joins the workers. Search() calls arriving
  /// after Stop() are shed with kUnavailable. Idempotent; the
  /// destructor runs it.
  void Stop();

 private:
  struct Pending {
    std::vector<std::string> words;  ///< raw words for the backend
    /// Canonical federated query (ToString of the parsed AST); empty
    /// for plain word queries. Canonicalisation happens at admission,
    /// so two spellings of one federated query share a cache entry and
    /// can ride one batch slot.
    std::string structured;
    std::string cache_key;
    size_t n = 10;
    size_t max_fragments = 1;  ///< effective (possibly degraded)
    ir::RankOptions options;
    bool degraded = false;
    Deadline deadline;
    std::chrono::steady_clock::time_point admitted_at;
    std::promise<SearchResult> promise;
  };

  /// Same batch policy? Only then can two requests ship in one
  /// backend QueryBatch call.
  static bool Compatible(const Pending& a, const Pending& b);

  /// Cache key of the resolved query + ranking policy. Kernel and
  /// prune are deliberately excluded: all kernels and both pruning
  /// modes are bit-identical by contract, so they may share entries.
  std::string CacheKey(const std::vector<std::string>& stems, size_t n,
                       size_t max_fragments,
                       const ir::RankOptions& options) const;

  /// Expected queue wait at the given depth from the EWMA batch
  /// service time (0 until the first batch completes). Called with
  /// mu_ held.
  uint32_t EstimateWaitMsLocked(size_t depth) const;

  void WorkerLoop();
  void ExecuteBatch(std::vector<std::unique_ptr<Pending>> batch);
  /// Federated leg of ExecuteBatch: one mediator evaluation answering
  /// every rider (Compatible() only coalesces identical federated
  /// queries, so the batch is one logical query).
  void ExecuteFederatedBatch(std::vector<std::unique_ptr<Pending>>& live);
  void RecordCompletion(const Pending& pending);

  /// One remembered hot cache key: everything needed to re-evaluate it
  /// through the backend after an epoch bump, plus its demand count.
  struct HotKey {
    std::string key;
    std::vector<std::string> words;  ///< raw words, re-resolved on warm
    size_t n = 10;
    size_t max_fragments = 1;
    ir::RankOptions options;
    bool degraded = false;
    uint64_t count = 0;
  };

  /// Bumps the demand counter of `key` (recorded on every Search that
  /// reaches the cache, hit or miss — the hottest keys are exactly the
  /// ones hitting). The tracker is bounded: past ~8x warm_top_k
  /// entries, counts decay by half and cold keys fall out.
  void RecordHotKey(const std::string& key, const SearchQuery& query,
                    size_t effective_fragments, bool degraded);

  /// The warmer thread: polls the backend epoch; on a bump, re-runs
  /// the hottest keys through the backend and refreshes their cache
  /// entries under the new epoch, serving stale meanwhile.
  void WarmerLoop();

  const Backend* backend_;
  const FrontendOptions options_;
  /// Federated query mediator; null until AttachMediator().
  const federate::Mediator* mediator_ = nullptr;
  mutable ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool stopping_ = false;
  /// EWMA of one backend QueryBatch wall-clock (µs); guarded by mu_.
  double ewma_batch_us_ = 0;
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  /// Replica routing events reported by the backend's batch stats
  /// (0 on local backends).
  std::atomic<uint64_t> hedges_fired_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> failovers_{0};
  /// ---- federated mediation ----------------------------------------
  std::atomic<uint64_t> federated_queries_{0};
  std::atomic<uint64_t> federated_filter_docs_{0};
  std::atomic<uint64_t> federated_text_us_{0};
  std::atomic<uint64_t> federated_webspace_us_{0};
  std::atomic<uint64_t> federated_cobra_us_{0};
  mutable std::mutex plan_mu_;
  std::string last_federated_plan_;  ///< guarded by plan_mu_
  LatencyHistogram latency_;

  /// ---- warm path (see FrontendOptions::warm_top_k) ----------------
  mutable std::mutex hot_mu_;
  std::unordered_map<std::string, HotKey> hot_;  ///< guarded by hot_mu_
  std::mutex warm_mu_;
  std::condition_variable warm_cv_;
  bool warm_stop_ = false;  ///< guarded by warm_mu_
  std::thread warmer_;
  /// True while the warmer re-evaluates hot keys; lookups may then
  /// serve entries pinned to warming_from_ flagged stale.
  std::atomic<bool> warming_{false};
  std::atomic<uint64_t> warming_from_{0};
  std::atomic<uint64_t> epoch_changes_{0};
  std::atomic<uint64_t> cache_warmed_{0};
  std::atomic<uint64_t> stale_served_{0};
};

}  // namespace dls::serve

#endif  // DLS_SERVE_FRONTEND_H_
