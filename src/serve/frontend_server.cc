#include "serve/frontend_server.h"

#include <utility>

#include "net/wire.h"

namespace dls::serve {

FrontendServer::FrontendServer(Frontend* frontend, size_t num_workers)
    : net::FrameServer(num_workers), frontend_(frontend) {}

FrontendServer::~FrontendServer() { Stop(); }

Result<std::vector<uint8_t>> FrontendServer::HandleFrame(
    const std::vector<uint8_t>& frame) const {
  net::MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  Status status = net::DecodeFrame(frame, &type, &body, &body_len);
  if (!status.ok()) return net::EncodeError(status);

  switch (type) {
    case net::MessageType::kSearchRequest: {
      Result<net::SearchRequest> request =
          net::DecodeSearchRequest(body, body_len);
      if (!request.ok()) return net::EncodeError(request.status());

      SearchQuery query;
      query.words = std::move(request.value().words);
      query.n = static_cast<size_t>(request.value().n);
      query.max_fragments = static_cast<size_t>(request.value().max_fragments);
      query.deadline_ms = request.value().deadline_ms;
      query.options = request.value().options;
      query.structured = std::move(request.value().structured);
      SearchResult answer = frontend_->Search(query);

      net::SearchResponse response;
      response.status = answer.status;
      response.retry_after_ms = answer.retry_after_ms;
      response.cache_hit = answer.cache_hit;
      response.degraded = answer.degraded;
      response.predicted_quality = answer.predicted_quality;
      response.results = std::move(answer.results);
      response.plan = std::move(answer.plan);
      Result<std::vector<uint8_t>> encoded =
          net::EncodeSearchResponse(response);
      if (!encoded.ok()) return net::EncodeError(encoded.status());
      return encoded;
    }
    case net::MessageType::kServeStatsRequest: {
      Result<net::ServeStatsRequest> request =
          net::DecodeServeStatsRequest(body, body_len);
      if (!request.ok()) return net::EncodeError(request.status());
      const ServeStats stats = frontend_->Stats();
      net::ServeStatsResponse response;
      response.submitted = stats.submitted;
      response.admitted = stats.admitted;
      response.completed = stats.completed;
      response.cache_hits = stats.cache_hits;
      response.cache_misses = stats.cache_misses;
      response.cache_evictions = stats.cache_evictions;
      response.shed_queue_full = stats.shed_queue_full;
      response.shed_deadline = stats.shed_deadline;
      response.expired_in_queue = stats.expired_in_queue;
      response.degraded = stats.degraded;
      response.batches = stats.batches;
      response.batched_queries = stats.batched_queries;
      response.queue_depth = stats.queue_depth;
      response.epoch = stats.epoch;
      response.bytes_resident = stats.bytes_resident;
      response.bytes_mapped = stats.bytes_mapped;
      response.latency_count = stats.latency.count;
      response.latency_mean_us = stats.latency.mean;
      response.latency_p50_us = stats.latency.p50;
      response.latency_p95_us = stats.latency.p95;
      response.latency_p99_us = stats.latency.p99;
      response.latency_max_us = stats.latency.max;
      response.hedges_fired = stats.hedges_fired;
      response.hedge_wins = stats.hedge_wins;
      response.failovers = stats.failovers;
      response.epoch_changes = stats.epoch_changes;
      response.cache_warmed = stats.cache_warmed;
      response.stale_served = stats.stale_served;
      response.federated_queries = stats.federated_queries;
      response.federated_filter_docs = stats.federated_filter_docs;
      response.federated_text_us = stats.federated_text_us;
      response.federated_webspace_us = stats.federated_webspace_us;
      response.federated_cobra_us = stats.federated_cobra_us;
      response.last_federated_plan = stats.last_federated_plan;
      return net::EncodeServeStatsResponse(response);
    }
    case net::MessageType::kQueryRequest:
    case net::MessageType::kStatsRequest:
    case net::MessageType::kInsertRequest:
    case net::MessageType::kDeleteRequest:
    case net::MessageType::kMergeRequest:
      return net::EncodeError(Status::Unsupported(
          "frontend server does not serve shard frames; connect to a "
          "ShardServer"));
    case net::MessageType::kQueryResponse:
    case net::MessageType::kStatsResponse:
    case net::MessageType::kSearchResponse:
    case net::MessageType::kServeStatsResponse:
    case net::MessageType::kInsertResponse:
    case net::MessageType::kDeleteResponse:
    case net::MessageType::kMergeResponse:
    case net::MessageType::kError:
      return net::EncodeError(
          Status::InvalidArgument("server received a response-type frame"));
  }
  return net::EncodeError(Status::Internal("unreachable message type"));
}

}  // namespace dls::serve
