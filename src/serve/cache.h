#ifndef DLS_SERVE_CACHE_H_
#define DLS_SERVE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/cluster.h"

namespace dls::serve {

/// What one cache entry answers with: the ranking plus the metadata a
/// cached response must reproduce (a degraded answer stays marked
/// degraded on a hit).
struct CachedResult {
  std::vector<ir::ClusterScoredDoc> results;
  double predicted_quality = 1.0;
  bool degraded = false;
  /// Executed federation plan (empty for plain word queries) — a hit
  /// reproduces the plan the original evaluation ran.
  std::string plan;
};

/// Epoch-keyed sharded-LRU result cache.
///
/// Correctness contract: a Lookup(key, epoch) hit proves the entry was
/// inserted under the same backend mutation epoch, i.e. derived from
/// the identical frozen index state — so serving it is bit-identical
/// to re-evaluating. An entry whose epoch mismatches is dead (any
/// reindex anywhere changed the cluster epoch); it is evicted on touch
/// and the lookup counts as a miss. There is no TTL: index state, not
/// time, is what invalidates a ranking.
///
/// Stale-while-warming (LookupAllowStale) is the one sanctioned
/// exception: while the frontend's warmer is re-evaluating hot keys
/// after an epoch bump, an entry still pinned to the *warming-from*
/// epoch may be served — explicitly flagged stale — instead of being
/// evicted, so a live-ingestion epoch bump does not stampede every
/// cached query onto the backend at once. Entries at any other
/// mismatched epoch still die on touch.
///
/// Concurrency: the key space is split over `num_shards` independently
/// locked LRU shards (shard = hash of key), so concurrent lookups
/// contend only within a shard. Counters are relaxed atomics; Stats
/// reads them without stopping traffic.
class ResultCache {
 public:
  /// `capacity` is the total entry budget, split evenly over the
  /// shards (each shard holds at least one entry). `num_shards` is
  /// clamped to at least 1.
  explicit ResultCache(size_t capacity, size_t num_shards = 8);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the entry into `*out`, promotes it to
  /// most-recently-used and returns true. A stale-epoch entry is
  /// evicted and reported as a miss.
  bool Lookup(const std::string& key, uint64_t epoch, CachedResult* out);

  /// Like Lookup, but an entry whose pinned epoch equals `stale_epoch`
  /// (the epoch the warmer is re-running hot keys from) is served with
  /// `*stale = true` and *kept* — the warmer will overwrite it under
  /// the new epoch shortly. A fresh hit sets `*stale = false`; any
  /// other epoch mismatch evicts as usual. Stale serves count in
  /// stale_hits(), not hits().
  bool LookupAllowStale(const std::string& key, uint64_t epoch,
                        uint64_t stale_epoch, CachedResult* out, bool* stale);

  /// Inserts (or overwrites) the entry under `epoch`, evicting the
  /// shard's least-recently-used entry when at capacity.
  void Insert(const std::string& key, uint64_t epoch, CachedResult value);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t stale_hits() const {
    return stale_hits_.load(std::memory_order_relaxed);
  }

  /// Entries currently cached (sums shard sizes; a racy but monotone-
  /// consistent snapshot).
  size_t size() const;

 private:
  struct Entry {
    std::string key;
    uint64_t epoch = 0;
    CachedResult value;
  };

  struct Shard {
    std::mutex mu;
    /// Front = most recently used; evict from the back.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key);

  const size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> stale_hits_{0};
};

}  // namespace dls::serve

#endif  // DLS_SERVE_CACHE_H_
