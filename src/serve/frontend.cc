#include "serve/frontend.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "federate/executor.h"
#include "federate/query_lang.h"
#include "ir/index.h"

namespace dls::serve {
namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t MicrosSince(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - start)
          .count());
}

}  // namespace

Frontend::Frontend(const Backend* backend, FrontendOptions options)
    : backend_(backend),
      options_(options),
      cache_(options.cache_entries, options.cache_shards) {
  workers_.reserve(std::max<size_t>(1, options_.num_workers));
  for (size_t i = 0; i < std::max<size_t>(1, options_.num_workers); ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.warm_top_k > 0) {
    warmer_ = std::thread([this] { WarmerLoop(); });
  }
}

Frontend::~Frontend() { Stop(); }

bool Frontend::Compatible(const Pending& a, const Pending& b) {
  // Federated queries only coalesce with the *same* canonical query —
  // a mediator evaluation cannot carry a second, different plan the
  // way a QueryBatch carries a second word list. Plain word queries
  // (both structured empty) batch as before.
  if (a.structured != b.structured) return false;
  return a.n == b.n && a.max_fragments == b.max_fragments &&
         a.options.lambda == b.options.lambda &&
         a.options.kernel == b.options.kernel &&
         a.options.prune == b.options.prune &&
         a.options.strategy == b.options.strategy &&
         a.options.shared_threshold == b.options.shared_threshold;
}

std::string Frontend::CacheKey(const std::vector<std::string>& stems,
                               size_t n, size_t max_fragments,
                               const ir::RankOptions& options) const {
  // Resolved stems in first-occurrence order ('\x1f'-separated — the
  // separator cannot appear in a normalised stem), then the ranking
  // policy. Two word lists that resolve to the same stem sequence
  // provably evaluate to the same ranking, so they share the entry.
  std::string key;
  for (const std::string& stem : stems) {
    key += stem;
    key += '\x1f';
  }
  key += '\x1e';
  uint64_t lambda_bits;
  std::memcpy(&lambda_bits, &options.lambda, sizeof(lambda_bits));
  key += StrFormat("%zu|%zu|%llu", n, max_fragments,
                   static_cast<unsigned long long>(lambda_bits));
  return key;
}

uint32_t Frontend::EstimateWaitMsLocked(size_t depth) const {
  if (ewma_batch_us_ <= 0) return 0;
  // Batches ahead of a request admitted at `depth`, spread over the
  // workers; +1 for the batch it will ride itself.
  const double batches_ahead =
      std::floor(static_cast<double>(depth) /
                 static_cast<double>(std::max<size_t>(1, options_.max_batch)));
  const double wait_us =
      ewma_batch_us_ * (batches_ahead + 1.0) /
      static_cast<double>(std::max<size_t>(1, options_.num_workers));
  return static_cast<uint32_t>(wait_us / 1000.0) + 1;
}

SearchResult Frontend::Search(const SearchQuery& query) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto admitted_at = SteadyClock::now();
  const int64_t budget_ms = query.deadline_ms != 0
                                ? query.deadline_ms
                                : options_.default_deadline_ms;
  Deadline deadline = Deadline::After(budget_ms);

  // Federated queries parse (and are refused) *before* they cost any
  // admission capacity; the canonical rendering of the AST keys the
  // cache, so two spellings differing in whitespace/keyword case share
  // one entry. Plain word queries resolve their cache key through the
  // backend's own normalisation pipeline (stems, de-duped,
  // first-occurrence order — mirrors what the cluster's query
  // resolution will do with the raw words).
  const bool federated = !query.structured.empty();
  std::string canonical;
  std::vector<std::string> stems;
  if (federated) {
    // A refusal here is still a definitive answer: count it completed
    // (with its latency) so submitted_ keeps reconciling with
    // completed_ + shed + expired and rejected federated queries stay
    // visible in the histogram.
    if (mediator_ == nullptr) {
      SearchResult result;
      result.status =
          Status::Unsupported("no federated mediator attached");
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_.Record(MicrosSince(admitted_at));
      return result;
    }
    Result<federate::FederatedQuery> parsed =
        federate::ParseFederatedQuery(query.structured);
    if (!parsed.ok()) {
      SearchResult result;
      result.status = parsed.status();
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_.Record(MicrosSince(admitted_at));
      return result;
    }
    canonical = federate::ToString(parsed.value());
    // '\x02' cannot appear in a normalised stem, so the pseudo-stem
    // keeps federated keys disjoint from every word-query key.
    stems.push_back("\x02federated");
    stems.push_back(canonical);
  } else {
    const bool stem = backend_->NormStem();
    const bool stop = backend_->NormStop();
    for (const std::string& word : query.words) {
      std::optional<std::string> norm = ir::NormalizeWordAs(word, stem, stop);
      if (!norm) continue;
      if (std::find(stems.begin(), stems.end(), *norm) != stems.end()) {
        continue;
      }
      stems.push_back(std::move(*norm));
    }
  }

  // Graceful degradation: past the watermark, answer cheaper (lower
  // fragment cut-off, honest predicted_quality) instead of slower.
  size_t effective_fragments = std::max<size_t>(1, query.max_fragments);
  bool degraded = false;
  if (options_.degrade_watermark > 0 && effective_fragments > 1) {
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = queue_.size();
    }
    if (depth >= options_.degrade_watermark) {
      effective_fragments = std::max<size_t>(1, effective_fragments / 2);
      degraded = true;
      degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const std::string key =
      CacheKey(stems, query.n, effective_fragments, query.options);
  // The warmer re-evaluates through Backend::QueryBatch, which cannot
  // run a federation plan — federated keys stay out of the hot set.
  if (!federated) RecordHotKey(key, query, effective_fragments, degraded);
  const uint64_t epoch = backend_->Epoch();
  CachedResult cached;
  bool stale = false;
  bool hit;
  if (options_.serve_stale_while_warming &&
      warming_.load(std::memory_order_acquire)) {
    // The warmer is re-evaluating hot keys for this very epoch bump:
    // an entry still pinned to the epoch it bumped *from* is exact for
    // that snapshot and about to be refreshed — serve it flagged stale
    // rather than stampeding the backend cold.
    hit = cache_.LookupAllowStale(
        key, epoch, warming_from_.load(std::memory_order_acquire), &cached,
        &stale);
  } else {
    hit = cache_.Lookup(key, epoch, &cached);
  }
  if (hit) {
    SearchResult result;
    result.cache_hit = true;
    result.stale = stale;
    result.degraded = cached.degraded || degraded;
    result.predicted_quality = cached.predicted_quality;
    result.results = std::move(cached.results);
    result.plan = std::move(cached.plan);
    if (stale) stale_served_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    latency_.Record(MicrosSince(admitted_at));
    return result;
  }

  // Admission gate: shed *now* anything that provably cannot be
  // answered in budget, instead of queueing it to die.
  std::future<SearchResult> future;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      SearchResult result;
      result.status = Status::Unavailable("frontend stopped");
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    if (queue_.size() >= options_.max_queue) {
      SearchResult result;
      result.retry_after_ms = EstimateWaitMsLocked(queue_.size());
      result.status = Status::Unavailable(
          StrFormat("admission queue full (%zu); retry in ~%u ms",
                    queue_.size(), result.retry_after_ms));
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    if (deadline.Expired()) {
      SearchResult result;
      result.status =
          Status::DeadlineExceeded("deadline expired before admission");
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    const uint32_t est_wait_ms = EstimateWaitMsLocked(queue_.size());
    if (static_cast<int64_t>(est_wait_ms) > budget_ms) {
      SearchResult result;
      result.retry_after_ms = est_wait_ms;
      result.status = Status::Unavailable(
          StrFormat("predicted queue wait ~%u ms exceeds the %lld ms "
                    "deadline",
                    est_wait_ms, static_cast<long long>(budget_ms)));
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      return result;
    }

    auto pending = std::make_unique<Pending>();
    pending->words = query.words;
    pending->structured = canonical;
    pending->cache_key = key;
    pending->n = query.n;
    pending->max_fragments = effective_fragments;
    pending->options = query.options;
    pending->degraded = degraded;
    pending->deadline = deadline;
    pending->admitted_at = admitted_at;
    future = pending->promise.get_future();
    queue_.push_back(std::move(pending));
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
  return future.get();
}

void Frontend::WorkerLoop() {
  while (true) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      if (queue_.empty()) continue;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();

      // Coalescing window: collect compatible queued queries, waiting
      // max_batch_wait_us after the first for stragglers. Shipping a
      // short batch early beats holding the first request hostage.
      const auto window_end =
          SteadyClock::now() +
          std::chrono::microseconds(options_.max_batch_wait_us);
      while (batch.size() < options_.max_batch && !stopping_) {
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < options_.max_batch;) {
          if (Compatible(*batch.front(), **it)) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
        if (batch.size() >= options_.max_batch) break;
        if (SteadyClock::now() >= window_end) break;
        cv_.wait_until(lock, window_end);
      }
    }
    cv_.notify_all();  // leftovers may suit another worker
    ExecuteBatch(std::move(batch));
  }
}

void Frontend::RecordCompletion(const Pending& pending) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(MicrosSince(pending.admitted_at));
}

void Frontend::RecordHotKey(const std::string& key, const SearchQuery& query,
                            size_t effective_fragments, bool degraded) {
  if (options_.warm_top_k == 0) return;
  std::lock_guard<std::mutex> lock(hot_mu_);
  auto [it, inserted] = hot_.try_emplace(key);
  if (inserted) {
    it->second.key = key;
    it->second.words = query.words;
    it->second.n = query.n;
    it->second.max_fragments = effective_fragments;
    it->second.options = query.options;
    it->second.degraded = degraded;
  }
  it->second.count += 1;

  // Bounded tracker: on overflow, decay every count by half and drop
  // the keys that reach zero — sustained demand survives the halving,
  // one-off queries age out. (Approximates heavy-hitters well enough
  // for a warm set.)
  const size_t bound = std::max<size_t>(64, 8 * options_.warm_top_k);
  if (hot_.size() > bound) {
    for (auto hot_it = hot_.begin(); hot_it != hot_.end();) {
      hot_it->second.count /= 2;
      if (hot_it->second.count == 0) {
        hot_it = hot_.erase(hot_it);
      } else {
        ++hot_it;
      }
    }
  }
}

void Frontend::WarmerLoop() {
  uint64_t last_epoch = backend_->Epoch();
  while (true) {
    {
      std::unique_lock<std::mutex> lock(warm_mu_);
      warm_cv_.wait_for(lock,
                        std::chrono::milliseconds(
                            std::max<int64_t>(1, options_.warm_poll_ms)),
                        [this] { return warm_stop_; });
      if (warm_stop_) return;
    }
    const uint64_t current = backend_->Epoch();
    if (current == last_epoch) continue;
    epoch_changes_.fetch_add(1, std::memory_order_relaxed);

    // The hottest keys by demand count, snapshotted outside the
    // evaluation loop (new traffic keeps recording meanwhile).
    std::vector<HotKey> top;
    {
      std::lock_guard<std::mutex> lock(hot_mu_);
      top.reserve(hot_.size());
      for (const auto& [key, hk] : hot_) top.push_back(hk);
    }
    std::sort(top.begin(), top.end(), [](const HotKey& a, const HotKey& b) {
      return a.count != b.count ? a.count > b.count : a.key < b.key;
    });
    if (top.size() > options_.warm_top_k) top.resize(options_.warm_top_k);

    // Stale-while-warming window: only entries pinned to the epoch we
    // are warming *from* qualify — anything older stays dead. The flag
    // drops before last_epoch advances, so the window closes the
    // moment the warm set is refreshed.
    warming_from_.store(last_epoch, std::memory_order_release);
    warming_.store(true, std::memory_order_release);
    for (const HotKey& hk : top) {
      // Epoch before evaluation, exactly like ExecuteBatch: results
      // derive from at least this epoch's state, so caching under it
      // can only under-serve, never serve a stale ranking as fresh.
      const uint64_t epoch = backend_->Epoch();
      ir::ClusterQueryStats stats;
      std::vector<ir::ClusterQueryStats> per_query;
      std::vector<std::vector<ir::ClusterScoredDoc>> rankings =
          backend_->QueryBatch({hk.words}, hk.n, hk.max_fragments, &stats,
                               &per_query, hk.options);
      if (rankings.empty()) continue;
      CachedResult entry;
      entry.results = std::move(rankings[0]);
      entry.predicted_quality = per_query.empty()
                                    ? stats.predicted_quality
                                    : per_query[0].predicted_quality;
      entry.degraded = hk.degraded;
      cache_.Insert(hk.key, epoch, std::move(entry));
      cache_warmed_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(warm_mu_);
        if (warm_stop_) break;  // Stop() must not wait out a long warm
      }
    }
    warming_.store(false, std::memory_order_release);
    last_epoch = current;
  }
}

void Frontend::ExecuteBatch(std::vector<std::unique_ptr<Pending>> batch) {
  // A request that expired while queued is answered without touching
  // the backend — its client already gave up; evaluating it would
  // steal capacity from requests that can still make their deadline.
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (std::unique_ptr<Pending>& pending : batch) {
    if (pending->deadline.Expired()) {
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      SearchResult result;
      result.status = Status::DeadlineExceeded("expired while queued");
      pending->promise.set_value(std::move(result));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  if (!live.front()->structured.empty()) {
    ExecuteFederatedBatch(live);
    return;
  }

  // Duplicate resolved queries inside the batch evaluate once.
  std::vector<size_t> slot(live.size());
  std::vector<size_t> unique;
  std::unordered_map<std::string, size_t> by_key;
  for (size_t i = 0; i < live.size(); ++i) {
    auto [it, inserted] = by_key.try_emplace(live[i]->cache_key, unique.size());
    if (inserted) unique.push_back(i);
    slot[i] = it->second;
  }
  std::vector<std::vector<std::string>> queries;
  queries.reserve(unique.size());
  for (size_t u : unique) queries.push_back(live[u]->words);

  // The epoch is read *before* the evaluation: the results are derived
  // from at least this epoch's state, so caching them under it can
  // only under-serve (a concurrent reindex bumps the epoch and the
  // entries die), never serve stale rankings.
  const uint64_t epoch = backend_->Epoch();
  const Pending& policy = *live.front();
  ir::ClusterQueryStats stats;
  std::vector<ir::ClusterQueryStats> per_query;
  const auto eval_start = SteadyClock::now();
  std::vector<std::vector<ir::ClusterScoredDoc>> rankings =
      backend_->QueryBatch(queries, policy.n, policy.max_fragments, &stats,
                           &per_query, policy.options);
  const uint64_t eval_us = MicrosSince(eval_start);

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(live.size(), std::memory_order_relaxed);
  hedges_fired_.fetch_add(stats.hedges_fired, std::memory_order_relaxed);
  hedge_wins_.fetch_add(stats.hedge_wins, std::memory_order_relaxed);
  failovers_.fetch_add(stats.failovers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ewma_batch_us_ = ewma_batch_us_ <= 0
                         ? static_cast<double>(eval_us)
                         : 0.8 * ewma_batch_us_ + 0.2 * eval_us;
  }

  // Per-rider quality attribution: each unique query carries its own
  // stats block, so two riders sharing a batch no longer share one
  // batch-aggregate figure (the fallback stays the aggregate for
  // backends that don't fill the vector).
  auto rider_quality = [&](size_t u) {
    return u < per_query.size() ? per_query[u].predicted_quality
                                : stats.predicted_quality;
  };
  for (size_t u = 0; u < unique.size(); ++u) {
    CachedResult entry;
    entry.results = rankings[u];
    entry.predicted_quality = rider_quality(u);
    entry.degraded = live[unique[u]]->degraded;
    cache_.Insert(live[unique[u]]->cache_key, epoch, std::move(entry));
  }
  for (size_t i = 0; i < live.size(); ++i) {
    SearchResult result;
    result.degraded = live[i]->degraded;
    result.predicted_quality = rider_quality(slot[i]);
    result.results = rankings[slot[i]];
    RecordCompletion(*live[i]);
    live[i]->promise.set_value(std::move(result));
  }
}

void Frontend::ExecuteFederatedBatch(
    std::vector<std::unique_ptr<Pending>>& live) {
  // Compatible() admits only identical canonical queries under one
  // policy into a federated batch, so one mediator evaluation answers
  // every rider (the in-batch analogue of the duplicate-key dedup on
  // the word path).
  const Pending& policy = *live.front();
  const uint64_t epoch = backend_->Epoch();
  federate::FederatedStats fstats;
  const auto eval_start = SteadyClock::now();
  Result<std::vector<ir::ClusterScoredDoc>> ranked =
      mediator_->ExecuteString(policy.structured, policy.n,
                               policy.max_fragments, policy.options, &fstats);
  const uint64_t eval_us = MicrosSince(eval_start);

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_queries_.fetch_add(live.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ewma_batch_us_ = ewma_batch_us_ <= 0
                         ? static_cast<double>(eval_us)
                         : 0.8 * ewma_batch_us_ + 0.2 * eval_us;
  }

  if (!ranked.ok()) {
    // Failed riders still completed their trip through the queue:
    // record them so the latency histogram sees federated failures and
    // submitted_ reconciles with completed_ + shed.
    for (std::unique_ptr<Pending>& pending : live) {
      SearchResult result;
      result.status = ranked.status();
      RecordCompletion(*pending);
      pending->promise.set_value(std::move(result));
    }
    return;
  }

  federated_queries_.fetch_add(live.size(), std::memory_order_relaxed);
  federated_filter_docs_.fetch_add(fstats.filter_docs,
                                   std::memory_order_relaxed);
  federated_text_us_.fetch_add(static_cast<uint64_t>(fstats.text_us),
                               std::memory_order_relaxed);
  federated_webspace_us_.fetch_add(static_cast<uint64_t>(fstats.webspace_us),
                                   std::memory_order_relaxed);
  federated_cobra_us_.fetch_add(static_cast<uint64_t>(fstats.cobra_us),
                                std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    last_federated_plan_ = fstats.plan;
  }

  CachedResult entry;
  entry.results = ranked.value();
  entry.predicted_quality = fstats.text_stats.predicted_quality;
  entry.degraded = policy.degraded;
  entry.plan = fstats.plan;
  cache_.Insert(policy.cache_key, epoch, std::move(entry));

  for (std::unique_ptr<Pending>& pending : live) {
    SearchResult result;
    result.degraded = pending->degraded;
    result.predicted_quality = fstats.text_stats.predicted_quality;
    result.results = ranked.value();
    result.plan = fstats.plan;
    RecordCompletion(*pending);
    pending->promise.set_value(std::move(result));
  }
}

ServeStats Frontend::Stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_evictions = cache_.evictions();
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  stats.hedges_fired = hedges_fired_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.epoch_changes = epoch_changes_.load(std::memory_order_relaxed);
  stats.cache_warmed = cache_warmed_.load(std::memory_order_relaxed);
  stats.stale_served = stale_served_.load(std::memory_order_relaxed);
  stats.federated_queries =
      federated_queries_.load(std::memory_order_relaxed);
  stats.federated_filter_docs =
      federated_filter_docs_.load(std::memory_order_relaxed);
  stats.federated_text_us =
      federated_text_us_.load(std::memory_order_relaxed);
  stats.federated_webspace_us =
      federated_webspace_us_.load(std::memory_order_relaxed);
  stats.federated_cobra_us =
      federated_cobra_us_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    stats.last_federated_plan = last_federated_plan_;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.epoch = backend_->Epoch();
  stats.bytes_resident = backend_->BytesResident();
  stats.bytes_mapped = backend_->BytesMapped();
  stats.latency = latency_.TakeSnapshot();
  return stats;
}

void Frontend::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(warm_mu_);
    warm_stop_ = true;
  }
  warm_cv_.notify_all();
  // Workers drain the queue before exiting, so every admitted request
  // still gets its answer.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (warmer_.joinable()) warmer_.join();
}

}  // namespace dls::serve
