#ifndef DLS_SERVE_SERVE_STATS_H_
#define DLS_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace dls::serve {

/// Operational counters of one Frontend, sampled by Frontend::Stats().
/// Monotone counters since construction plus the instantaneous queue
/// depth and a latency snapshot; net/wire projects this onto the
/// ServeStatsResponse frame (type 9) byte-for-byte, so a remote
/// operator reads the same block an in-process caller does.
struct ServeStats {
  // ---- admission ----------------------------------------------------
  uint64_t submitted = 0;  ///< Search() calls, before any gate
  uint64_t admitted = 0;   ///< entered the queue (not shed, not cached)
  uint64_t completed = 0;  ///< answered with a ranking (cache or backend)

  // ---- cache --------------------------------------------------------
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;  ///< capacity + stale-epoch evictions

  // ---- shedding -----------------------------------------------------
  uint64_t shed_queue_full = 0;    ///< kUnavailable: queue at max_queue
  uint64_t shed_deadline = 0;      ///< kUnavailable/kDeadlineExceeded at
                                   ///< admission (budget provably blown)
  uint64_t expired_in_queue = 0;   ///< admitted but expired before eval

  // ---- degradation / batching --------------------------------------
  uint64_t degraded = 0;         ///< answered with a lowered cut-off
  uint64_t batches = 0;          ///< backend QueryBatch calls
  uint64_t batched_queries = 0;  ///< queries carried by those calls

  // ---- replica routing (remote backends; 0 in-process) -------------
  uint64_t hedges_fired = 0;  ///< shard calls hedged past the budget
  uint64_t hedge_wins = 0;    ///< hedged calls whose answer won
  uint64_t failovers = 0;     ///< failed attempts moved to another replica

  // ---- live warm path (epoch-bump handling; 0 with the warmer off) --
  uint64_t epoch_changes = 0;  ///< backend epoch bumps the warmer saw
  uint64_t cache_warmed = 0;   ///< hot keys re-evaluated under a new epoch
  uint64_t stale_served = 0;   ///< answers served from the warming-from
                               ///< epoch while the warmer ran

  // ---- federated mediation (0 / empty without a mediator) -----------
  uint64_t federated_queries = 0;     ///< answered through the mediator
  uint64_t federated_filter_docs = 0; ///< bitmap bits pushed into ranking
  uint64_t federated_text_us = 0;     ///< ranked-text wall time
  uint64_t federated_webspace_us = 0; ///< webspace filter wall time
  uint64_t federated_cobra_us = 0;    ///< cobra filter wall time
  std::string last_federated_plan;    ///< most recent executed plan

  // ---- instantaneous ------------------------------------------------
  uint64_t queue_depth = 0;  ///< queued requests at sample time
  uint64_t epoch = 0;        ///< backend mutation epoch at sample time

  // ---- index footprint (Backend::BytesResident/BytesMapped) --------
  uint64_t bytes_resident = 0;  ///< heap bytes of the backing index
  uint64_t bytes_mapped = 0;    ///< mmap'd segment bytes (0 = heap-built)

  /// Admission-to-completion latency of completed requests
  /// (microseconds; shed requests are not recorded — shedding is the
  /// mechanism that keeps this distribution bounded).
  LatencyHistogram::Snapshot latency;
};

}  // namespace dls::serve

#endif  // DLS_SERVE_SERVE_STATS_H_
