#include "serve/cache.h"

#include <algorithm>
#include <functional>

namespace dls::serve {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : per_shard_capacity_(
          std::max<size_t>(1, capacity / std::max<size_t>(1, num_shards))) {
  shards_.reserve(std::max<size_t>(1, num_shards));
  for (size_t i = 0; i < std::max<size_t>(1, num_shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ResultCache::Lookup(const std::string& key, uint64_t epoch,
                         CachedResult* out) {
  bool stale = false;
  // stale_epoch == epoch degenerates to the strict contract: the only
  // epoch an entry may be served under is the current one.
  return LookupAllowStale(key, epoch, epoch, out, &stale);
}

bool ResultCache::LookupAllowStale(const std::string& key, uint64_t epoch,
                                   uint64_t stale_epoch, CachedResult* out,
                                   bool* stale) {
  *stale = false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->epoch != epoch && it->second->epoch != stale_epoch) {
    // The index mutated since this ranking was computed and no warmer
    // claims the entry's epoch: it can never be served again (epochs
    // are monotone), so reclaim the slot now instead of waiting for
    // LRU pressure.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->value;
  if (it->second->epoch == epoch) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    *stale = true;
    stale_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ResultCache::Insert(const std::string& key, uint64_t epoch,
                         CachedResult value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->epoch = epoch;
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.push_front(Entry{key, epoch, std::move(value)});
  shard.index[key] = shard.lru.begin();
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace dls::serve
