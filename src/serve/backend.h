#ifndef DLS_SERVE_BACKEND_H_
#define DLS_SERVE_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/live_index.h"
#include "ir/cluster.h"
#include "net/remote_cluster.h"

namespace dls::serve {

/// What the serving frontend needs from an index cluster, and nothing
/// more: batched evaluation, the mutation epoch its result cache keys
/// on, and the normalisation pipeline it must mirror when building
/// cache keys. Both concrete clusters — in-process ir::ClusterIndex
/// and out-of-process net::RemoteClusterIndex — satisfy it through the
/// adapters below, which is what lets tests/serve hold the frontend to
/// bit-identity against either backend.
///
/// Implementations must tolerate concurrent QueryBatch() calls (both
/// clusters do once frozen/connected).
class Backend {
 public:
  virtual ~Backend() = default;

  /// Cluster-wide mutation epoch — the cache invalidation key. Any
  /// reindex anywhere in the cluster must change it.
  virtual uint64_t Epoch() const = 0;

  /// Normalisation pipeline the backend resolves queries with; the
  /// frontend builds cache keys through the identical pipeline so two
  /// spellings of one resolved query share a cache entry.
  virtual bool NormStem() const = 0;
  virtual bool NormStop() const = 0;

  /// Evaluates a batch of queries under one (n, max_fragments,
  /// options) policy; results are per query, in input order, each
  /// identical to a direct single-query evaluation. `stats`, when
  /// given, aggregates over the batch; `per_query_stats`, when given,
  /// is filled with one entry per query attributing that rider's own
  /// work, latency and quality (wire traffic and replica routing
  /// events are batch-level and stay in the aggregate).
  virtual std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats,
      std::vector<ir::ClusterQueryStats>* per_query_stats,
      const ir::RankOptions& options) const = 0;

  /// Index footprint split (ir::ClusterIndex::bytes_resident/_mapped):
  /// heap bytes vs mmap'd segment bytes. Defaults to 0/0 for backends
  /// that cannot see their index memory (a remote cluster's footprint
  /// lives in the shard processes).
  virtual uint64_t BytesResident() const { return 0; }
  virtual uint64_t BytesMapped() const { return 0; }
};

/// Adapter over the in-process cluster. Batches evaluate as a
/// sequential loop of ClusterIndex::Query (per-query node fan-out
/// still parallelises through the cluster's executor); batch stats
/// sum the work counters, take the conservative minimum of the
/// per-query quality estimates, and sum critical paths (the queries
/// really do run back to back).
class LocalBackend final : public Backend {
 public:
  /// Non-owning; `cluster` must outlive the backend and be finalized.
  explicit LocalBackend(const ir::ClusterIndex* cluster)
      : cluster_(cluster) {}

  uint64_t Epoch() const override { return cluster_->mutation_epoch(); }
  bool NormStem() const override {
    return cluster_->node_index(0).options().stem;
  }
  bool NormStop() const override {
    return cluster_->node_index(0).options().stop;
  }

  std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats,
      std::vector<ir::ClusterQueryStats>* per_query_stats,
      const ir::RankOptions& options) const override;

  uint64_t BytesResident() const override {
    return cluster_->bytes_resident();
  }
  uint64_t BytesMapped() const override { return cluster_->bytes_mapped(); }

 private:
  const ir::ClusterIndex* cluster_;
};

/// Adapter over the remote cluster: QueryBatch ships the whole batch
/// in one frame per shard, which is exactly the amortisation the
/// frontend's dynamic batcher exists to exploit. The epoch is the one
/// aggregated at Connect() time — observing a reindexed shard takes a
/// re-Connect, which is the remote deployment's epoch-bump event.
class RemoteBackend final : public Backend {
 public:
  /// Non-owning; `cluster` must outlive the backend and be connected.
  explicit RemoteBackend(const net::RemoteClusterIndex* cluster)
      : cluster_(cluster) {}

  uint64_t Epoch() const override { return cluster_->cluster_epoch(); }
  bool NormStem() const override { return cluster_->norm_stem(); }
  bool NormStop() const override { return cluster_->norm_stop(); }

  std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats,
      std::vector<ir::ClusterQueryStats>* per_query_stats,
      const ir::RankOptions& options) const override {
    return cluster_->QueryBatch(queries, n, max_fragments, stats, options,
                                per_query_stats);
  }

 private:
  const net::RemoteClusterIndex* cluster_;
};

/// Adapter over a live-ingestion index (ingest::LiveIndex): the
/// backend whose epoch actually moves while serving. One snapshot is
/// pinned per QueryBatch — every query in the batch answers from the
/// identical epoch, and a concurrent insert/delete/merge never tears a
/// batch. Epoch() is the live epoch, which bumps on every mutation;
/// that is exactly the signal the frontend's warmer watches to re-run
/// hot keys after a merge.
class LiveBackend final : public Backend {
 public:
  /// Non-owning; `live` must outlive the backend.
  explicit LiveBackend(const ingest::LiveIndex* live) : live_(live) {}

  uint64_t Epoch() const override { return live_->epoch(); }
  bool NormStem() const override { return live_->options().node.stem; }
  bool NormStop() const override { return live_->options().node.stop; }

  std::vector<std::vector<ir::ClusterScoredDoc>> QueryBatch(
      const std::vector<std::vector<std::string>>& queries, size_t n,
      size_t max_fragments, ir::ClusterQueryStats* stats,
      std::vector<ir::ClusterQueryStats>* per_query_stats,
      const ir::RankOptions& options) const override;

  uint64_t BytesResident() const override {
    return live_->Stats().bytes_resident;
  }
  uint64_t BytesMapped() const override { return live_->Stats().bytes_mapped; }

 private:
  const ingest::LiveIndex* live_;
};

}  // namespace dls::serve

#endif  // DLS_SERVE_BACKEND_H_
