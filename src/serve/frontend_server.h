#ifndef DLS_SERVE_FRONTEND_SERVER_H_
#define DLS_SERVE_FRONTEND_SERVER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "net/frame_server.h"
#include "serve/frontend.h"

namespace dls::serve {

/// The wire endpoint of a Frontend: clients speak SearchRequest /
/// ServeStatsRequest frames (net/wire types 6 and 8) to this server
/// the same way the cluster's centre speaks QueryRequest to a
/// ShardServer — same framing, same Error-frame failure semantics,
/// same FrameServer transport mechanics underneath.
///
/// A shed query is a *successful* exchange whose SearchResponse
/// carries kUnavailable/kDeadlineExceeded and a retry-after hint; the
/// connection stays up. Error frames are reserved for requests the
/// server cannot parse or does not serve (shard-protocol frames get a
/// redirect-shaped kUnsupported).
///
/// Each connection worker blocks inside Frontend::Search for its
/// in-flight request (bounded by the request deadline), so
/// `num_workers` bounds concurrently *served connections*, while the
/// frontend's admission queue bounds the requests behind them.
class FrontendServer : public net::FrameServer {
 public:
  /// `frontend` is non-owning and must outlive the server.
  explicit FrontendServer(Frontend* frontend, size_t num_workers = 8);
  ~FrontendServer() override;

  Result<std::vector<uint8_t>> HandleFrame(
      const std::vector<uint8_t>& frame) const override;

 private:
  Frontend* frontend_;
};

}  // namespace dls::serve

#endif  // DLS_SERVE_FRONTEND_SERVER_H_
