#ifndef DLS_FG_MIRROR_H_
#define DLS_FG_MIRROR_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "fg/fde.h"
#include "fg/fds.h"

namespace dls::fg {

/// Work counters of the Mirror baseline (experiment E9).
struct MirrorStats {
  size_t get_work_queries = 0;  ///< one per daemon per round
  size_t objects_scanned = 0;   ///< objects inspected by get_work scans
  size_t work_items = 0;        ///< re-runs actually performed
  size_t rounds = 0;            ///< polling rounds until fixpoint
};

/// A Mirror-style daemon maintenance scheduler — the baseline the
/// paper contrasts feature grammars against ([VEK98, Vri99]).
///
/// In Mirror every extraction algorithm is wrapped in a daemon that
/// pulls its own work: a `get_work` query scans the stored objects for
/// instances it should (re)process, runs the algorithm, and commits
/// with `finish_work`. All pipeline context lives inside each daemon's
/// get_work query ("each new daemon in the pipe has to check if all
/// the previous daemons have already been executed"); there is no
/// shared dependency graph, so after any change the system converges
/// only by repeated polling rounds in which *every* daemon re-scans
/// *every* object.
///
/// This implementation is functionally equivalent to the FDS (it
/// converges to the same parse trees — a test asserts this) but pays
/// the polling cost the paper criticises, which experiment E9
/// measures: get_work scans are O(daemons × objects × rounds) versus
/// the FDS's dependency-directed task list.
class MirrorScheduler {
 public:
  /// Daemons are derived from the grammar: one per declared detector.
  MirrorScheduler(const Grammar* grammar, DetectorRegistry* registry,
                  ParseTreeStore* store, Fde* fde);

  /// Installs a new implementation (like Fds::UpdateDetector) — but no
  /// scheduling happens here; the daemons discover the change through
  /// their next get_work poll.
  Status UpdateDaemon(std::string_view name, DetectorFn fn,
                      DetectorVersion version);

  /// Runs polling rounds until no daemon finds work (or the round cap
  /// is hit, which returns kInternal).
  Status RunToFixpoint(size_t max_rounds = 64);

  const MirrorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MirrorStats(); }

 private:
  /// get_work for one daemon: scan every object, pick those whose
  /// instances are stale. Returns object keys with work.
  std::vector<std::string> GetWork(const std::string& daemon);

  const Grammar* grammar_;
  DetectorRegistry* registry_;
  ParseTreeStore* store_;
  Fde* fde_;
  std::vector<std::string> daemons_;

  uint64_t round_clock_ = 1;
  /// object -> round in which its tree last changed.
  std::map<std::string, uint64_t> modified_at_;
  /// (daemon, object) -> round of the daemon's last run there.
  std::map<std::pair<std::string, std::string>, uint64_t> last_run_;
  MirrorStats stats_;
};

}  // namespace dls::fg

#endif  // DLS_FG_MIRROR_H_
