#include "fg/mirror.h"

namespace dls::fg {

MirrorScheduler::MirrorScheduler(const Grammar* grammar,
                                 DetectorRegistry* registry,
                                 ParseTreeStore* store, Fde* fde)
    : grammar_(grammar), registry_(registry), store_(store), fde_(fde) {
  for (const auto& [name, decl] : grammar_->detectors()) {
    daemons_.push_back(name);
  }
}

Status MirrorScheduler::UpdateDaemon(std::string_view name, DetectorFn fn,
                                     DetectorVersion version) {
  if (grammar_->FindDetector(name) == nullptr) {
    return Status::NotFound("daemon '" + std::string(name) +
                            "' is not a grammar detector");
  }
  registry_->Register(name, std::move(fn), version);
  return Status::Ok();
}

std::vector<std::string> MirrorScheduler::GetWork(const std::string& daemon) {
  ++stats_.get_work_queries;
  std::vector<std::string> work;
  Result<DetectorVersion> current = registry_->VersionOf(daemon);
  for (const std::string& key : store_->Keys()) {
    ++stats_.objects_scanned;
    ParseTree* tree = store_->Find(key);
    std::vector<PtNodeId> instances = tree->FindAll(daemon);
    if (instances.empty()) continue;

    bool stale = false;
    // (a) Implementation changed since the stored run.
    if (current.ok()) {
      for (PtNodeId node : instances) {
        if (!(tree->node(node).version == current.value())) {
          stale = true;
          break;
        }
      }
    }
    // (b) The object's tree changed since this daemon last ran here —
    //     the "did my predecessors run" context check every Mirror
    //     daemon must embed in its get_work query.
    auto it = last_run_.find({daemon, key});
    uint64_t ran_at = it == last_run_.end() ? 0 : it->second;
    auto mod = modified_at_.find(key);
    if (mod != modified_at_.end() && mod->second > ran_at) stale = true;

    if (stale) work.push_back(key);
  }
  return work;
}

Status MirrorScheduler::RunToFixpoint(size_t max_rounds) {
  for (size_t round = 0; round < max_rounds; ++round) {
    ++stats_.rounds;
    bool any_work = false;
    for (const std::string& daemon : daemons_) {
      std::vector<std::string> work = GetWork(daemon);
      for (const std::string& key : work) {
        ParseTree* tree = store_->Find(key);
        bool changed = false;
        for (PtNodeId node : tree->FindAll(daemon)) {
          std::string before = tree->SubtreeSignature(node);
          // finish_work: the daemon reprocesses its instance in place.
          Status s = fde_->ReparseDetectorNode(tree, node);
          ++stats_.work_items;
          if (!s.ok()) continue;  // a Mirror daemon just skips failures
          if (tree->SubtreeSignature(node) != before) changed = true;
        }
        if (changed) {
          modified_at_[key] = ++round_clock_;
        }
        // finish_work commits after the daemon's own writes, so a
        // daemon does not re-trigger on its own change — but every
        // OTHER daemon will, by polling.
        last_run_[{daemon, key}] = round_clock_;
        any_work = true;
      }
    }
    if (!any_work) return Status::Ok();
  }
  return Status::Internal("Mirror polling did not reach a fixpoint");
}

}  // namespace dls::fg
