#include <cassert>
#include <cstdlib>

#include "common/strings.h"
#include "fg/grammar.h"

namespace dls::fg {
namespace {

/// Lexical token kinds of the feature-grammar DSL.
enum class LexKind : uint8_t {
  kIdent,
  kDirective,  ///< %start, %detector, %atom
  kNumber,
  kString,
  kPunct,      ///< one of : ; ( ) [ ] , . ? * + & |
  kCmpOp,      ///< == != <= >= < >
  kColonColon,
  kEof,
};

struct Lexeme {
  LexKind kind;
  std::string text;
  int line;
  bool is_float = false;  // for kNumber
};

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9') || c == '-';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

/// Tokenises the whole grammar text up front (grammar files are small).
Status Lex(std::string_view text, std::vector<Lexeme>* out) {
  size_t i = 0;
  int line = 1;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < text.size() && text[i + 1] == '/')) {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '%') {
      size_t start = ++i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      out->push_back({LexKind::kDirective,
                      std::string(text.substr(start, i - start)), line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      out->push_back({LexKind::kIdent,
                      std::string(text.substr(start, i - start)), line});
      continue;
    }
    if (IsDigit(c) || (c == '-' && i + 1 < text.size() && IsDigit(text[i + 1]))) {
      size_t start = i;
      if (c == '-') ++i;
      while (i < text.size() && IsDigit(text[i])) ++i;
      bool is_float = false;
      if (i + 1 < text.size() && text[i] == '.' && IsDigit(text[i + 1])) {
        is_float = true;
        ++i;
        while (i < text.size() && IsDigit(text[i])) ++i;
      }
      Lexeme lex{LexKind::kNumber, std::string(text.substr(start, i - start)),
                 line};
      lex.is_float = is_float;
      out->push_back(std::move(lex));
      continue;
    }
    if (c == '"') {
      size_t start = ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i >= text.size()) {
        return Status::ParseError(
            StrFormat("line %d: unterminated string literal", line));
      }
      out->push_back({LexKind::kString,
                      std::string(text.substr(start, i - start)), line});
      ++i;
      continue;
    }
    if (c == ':' && i + 1 < text.size() && text[i + 1] == ':') {
      out->push_back({LexKind::kColonColon, "::", line});
      i += 2;
      continue;
    }
    if ((c == '=' || c == '!' || c == '<' || c == '>')) {
      if (i + 1 < text.size() && text[i + 1] == '=') {
        out->push_back({LexKind::kCmpOp, std::string(text.substr(i, 2)), line});
        i += 2;
        continue;
      }
      if (c == '<' || c == '>') {
        out->push_back({LexKind::kCmpOp, std::string(1, c), line});
        ++i;
        continue;
      }
      return Status::ParseError(StrFormat("line %d: stray '%c'", line, c));
    }
    if (std::string_view(":;()[],.?*+&|").find(c) != std::string_view::npos) {
      out->push_back({LexKind::kPunct, std::string(1, c), line});
      ++i;
      continue;
    }
    return Status::ParseError(
        StrFormat("line %d: unexpected character '%c'", line, c));
  }
  out->push_back({LexKind::kEof, "", line});
  return Status::Ok();
}

AtomType AtomTypeFor(const std::string& name,
                     const std::set<std::string>& adts) {
  AtomType type;
  if (ParseAtomType(name, &type)) return type;
  // User-declared ADTs are stored as strings at the physical level.
  (void)adts;
  return AtomType::kStr;
}

}  // namespace

/// Recursive-descent parser over the lexeme stream, accumulating into a
/// Grammar. Friended by Grammar for direct member access.
class GrammarParser {
 public:
  explicit GrammarParser(std::vector<Lexeme> lexemes)
      : lexemes_(std::move(lexemes)) {}

  Result<Grammar> Run() {
    while (!At(LexKind::kEof)) {
      if (At(LexKind::kDirective)) {
        DLS_RETURN_IF_ERROR(ParseDirective());
      } else if (At(LexKind::kIdent)) {
        DLS_RETURN_IF_ERROR(ParseRule());
      } else {
        return Error("expected a declaration or a production rule");
      }
    }
    DLS_RETURN_IF_ERROR(grammar_.Validate());
    return std::move(grammar_);
  }

 private:
  const Lexeme& Cur() const { return lexemes_[pos_]; }
  bool At(LexKind kind) const { return Cur().kind == kind; }
  bool AtPunct(char c) const {
    return Cur().kind == LexKind::kPunct && Cur().text[0] == c;
  }
  void Next() { if (!At(LexKind::kEof)) ++pos_; }

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StrFormat("line %d: %s (near '%s')", Cur().line, what.c_str(),
                  Cur().text.c_str()));
  }

  Status ExpectPunct(char c) {
    if (!AtPunct(c)) return Error(StrFormat("expected '%c'", c));
    Next();
    return Status::Ok();
  }

  Status ExpectIdent(std::string* out) {
    if (!At(LexKind::kIdent)) return Error("expected an identifier");
    *out = Cur().text;
    Next();
    return Status::Ok();
  }

  Status ParsePath(Path* out) {
    out->clear();
    std::string segment;
    DLS_RETURN_IF_ERROR(ExpectIdent(&segment));
    out->push_back(segment);
    while (AtPunct('.')) {
      Next();
      DLS_RETURN_IF_ERROR(ExpectIdent(&segment));
      out->push_back(segment);
    }
    return Status::Ok();
  }

  Status ParsePathList(std::vector<Path>* out) {
    out->clear();
    if (AtPunct(')')) return Status::Ok();
    Path path;
    DLS_RETURN_IF_ERROR(ParsePath(&path));
    out->push_back(std::move(path));
    while (AtPunct(',')) {
      Next();
      DLS_RETURN_IF_ERROR(ParsePath(&path));
      out->push_back(std::move(path));
    }
    return Status::Ok();
  }

  Status ParseDirective() {
    std::string directive = Cur().text;
    Next();
    if (directive == "start") return ParseStart();
    if (directive == "atom") return ParseAtom();
    if (directive == "detector") return ParseDetector();
    return Error("unknown directive '%" + directive + "'");
  }

  Status ParseStart() {
    DLS_RETURN_IF_ERROR(ExpectIdent(&grammar_.start_symbol_));
    DLS_RETURN_IF_ERROR(ExpectPunct('('));
    DLS_RETURN_IF_ERROR(ParsePathList(&grammar_.start_args_));
    DLS_RETURN_IF_ERROR(ExpectPunct(')'));
    return ExpectPunct(';');
  }

  Status ParseAtom() {
    std::string first;
    DLS_RETURN_IF_ERROR(ExpectIdent(&first));
    if (AtPunct(';')) {
      // `%atom url;` — declares a new ADT.
      Next();
      grammar_.adts_.insert(first);
      return Status::Ok();
    }
    // `%atom type name1,name2,...;` — terminal declarations.
    AtomType type = AtomTypeFor(first, grammar_.adts_);
    {
      AtomType builtin;
      if (!ParseAtomType(first, &builtin) &&
          grammar_.adts_.find(first) == grammar_.adts_.end()) {
        return Error("unknown atom type '" + first + "'");
      }
    }
    std::string name;
    DLS_RETURN_IF_ERROR(ExpectIdent(&name));
    grammar_.atoms_[name] = type;
    while (AtPunct(',')) {
      Next();
      DLS_RETURN_IF_ERROR(ExpectIdent(&name));
      grammar_.atoms_[name] = type;
    }
    return ExpectPunct(';');
  }

  Status ParseDetector() {
    std::string name;
    DLS_RETURN_IF_ERROR(ExpectIdent(&name));

    DetectorProtocol protocol = DetectorProtocol::kLinked;
    if (At(LexKind::kColonColon)) {
      if (name == "xml-rpc") {
        protocol = DetectorProtocol::kXmlRpc;
      } else if (name == "corba") {
        protocol = DetectorProtocol::kCorba;
      } else if (name == "system") {
        protocol = DetectorProtocol::kSystem;
      } else {
        return Error("unknown detector protocol '" + name + "'");
      }
      Next();
      DLS_RETURN_IF_ERROR(ExpectIdent(&name));
    }

    // Special lifecycle declaration: `header.init();`
    if (AtPunct('.')) {
      Next();
      std::string phase;
      DLS_RETURN_IF_ERROR(ExpectIdent(&phase));
      DLS_RETURN_IF_ERROR(ExpectPunct('('));
      DLS_RETURN_IF_ERROR(ExpectPunct(')'));
      DLS_RETURN_IF_ERROR(ExpectPunct(';'));
      DetectorDecl& decl = grammar_.detectors_[name];
      decl.name = name;
      if (phase == "init") {
        decl.has_init = true;
      } else if (phase == "final") {
        decl.has_final = true;
      } else if (phase == "begin") {
        decl.has_begin = true;
      } else if (phase == "end") {
        decl.has_end = true;
      } else {
        return Error("unknown special detector phase '" + phase + "'");
      }
      return Status::Ok();
    }

    DetectorDecl decl;
    decl.name = name;
    decl.protocol = protocol;

    if (AtPunct('(')) {
      // Blackbox: `header(location);`
      Next();
      DLS_RETURN_IF_ERROR(ParsePathList(&decl.inputs));
      DLS_RETURN_IF_ERROR(ExpectPunct(')'));
    } else {
      // Whitebox: a predicate, possibly quantified.
      auto pred = std::make_unique<PredExpr>();
      DLS_RETURN_IF_ERROR(ParsePredicate(pred.get()));
      decl.predicate = std::move(pred);
    }
    DLS_RETURN_IF_ERROR(ExpectPunct(';'));

    // Merge with any earlier special-phase declarations for this name.
    auto it = grammar_.detectors_.find(name);
    if (it != grammar_.detectors_.end()) {
      decl.has_init = it->second.has_init;
      decl.has_final = it->second.has_final;
      decl.has_begin = it->second.has_begin;
      decl.has_end = it->second.has_end;
    }
    grammar_.detectors_[name] = std::move(decl);
    return Status::Ok();
  }

  bool AtQuantifier() const {
    if (!At(LexKind::kIdent)) return false;
    const std::string& t = Cur().text;
    if (t != "some" && t != "all" && t != "one") return false;
    return pos_ + 1 < lexemes_.size() &&
           lexemes_[pos_ + 1].kind == LexKind::kPunct &&
           lexemes_[pos_ + 1].text[0] == '[';
  }

  Status ParsePredicate(PredExpr* out) { return ParseOr(out); }

  Status ParseOr(PredExpr* out) {
    auto first = std::make_unique<PredExpr>();
    DLS_RETURN_IF_ERROR(ParseAnd(first.get()));
    if (!(At(LexKind::kIdent) && Cur().text == "or")) {
      *out = std::move(*first);
      return Status::Ok();
    }
    out->kind = PredExpr::Kind::kOr;
    out->children.push_back(std::move(first));
    while (At(LexKind::kIdent) && Cur().text == "or") {
      Next();
      auto child = std::make_unique<PredExpr>();
      DLS_RETURN_IF_ERROR(ParseAnd(child.get()));
      out->children.push_back(std::move(child));
    }
    return Status::Ok();
  }

  Status ParseAnd(PredExpr* out) {
    auto first = std::make_unique<PredExpr>();
    DLS_RETURN_IF_ERROR(ParseUnary(first.get()));
    if (!(At(LexKind::kIdent) && Cur().text == "and")) {
      *out = std::move(*first);
      return Status::Ok();
    }
    out->kind = PredExpr::Kind::kAnd;
    out->children.push_back(std::move(first));
    while (At(LexKind::kIdent) && Cur().text == "and") {
      Next();
      auto child = std::make_unique<PredExpr>();
      DLS_RETURN_IF_ERROR(ParseUnary(child.get()));
      out->children.push_back(std::move(child));
    }
    return Status::Ok();
  }

  Status ParseUnary(PredExpr* out) {
    if (At(LexKind::kIdent) && Cur().text == "not") {
      Next();
      out->kind = PredExpr::Kind::kNot;
      auto child = std::make_unique<PredExpr>();
      DLS_RETURN_IF_ERROR(ParseUnary(child.get()));
      out->children.push_back(std::move(child));
      return Status::Ok();
    }
    if (AtQuantifier()) {
      const std::string& q = Cur().text;
      out->kind = PredExpr::Kind::kQuantified;
      out->quant = q == "some"  ? Quantifier::kSome
                   : q == "all" ? Quantifier::kAll
                                : Quantifier::kOne;
      Next();
      DLS_RETURN_IF_ERROR(ExpectPunct('['));
      DLS_RETURN_IF_ERROR(ParsePath(&out->binding));
      DLS_RETURN_IF_ERROR(ExpectPunct(']'));
      DLS_RETURN_IF_ERROR(ExpectPunct('('));
      auto child = std::make_unique<PredExpr>();
      DLS_RETURN_IF_ERROR(ParsePredicate(child.get()));
      DLS_RETURN_IF_ERROR(ExpectPunct(')'));
      out->children.push_back(std::move(child));
      return Status::Ok();
    }
    if (AtPunct('(')) {
      Next();
      DLS_RETURN_IF_ERROR(ParsePredicate(out));
      return ExpectPunct(')');
    }
    return ParseCompare(out);
  }

  Status ParseCompare(PredExpr* out) {
    out->kind = PredExpr::Kind::kCompare;
    DLS_RETURN_IF_ERROR(ParsePath(&out->path));
    if (!At(LexKind::kCmpOp)) return Error("expected a comparison operator");
    const std::string& op = Cur().text;
    if (op == "==") {
      out->op = CmpOp::kEq;
    } else if (op == "!=") {
      out->op = CmpOp::kNe;
    } else if (op == "<") {
      out->op = CmpOp::kLt;
    } else if (op == "<=") {
      out->op = CmpOp::kLe;
    } else if (op == ">") {
      out->op = CmpOp::kGt;
    } else {
      out->op = CmpOp::kGe;
    }
    Next();
    return ParseLiteralValue(&out->literal);
  }

  Status ParseLiteralValue(Token* out) {
    if (At(LexKind::kString)) {
      *out = Token::Str(Cur().text);
      Next();
      return Status::Ok();
    }
    if (At(LexKind::kNumber)) {
      if (Cur().is_float) {
        *out = Token::Flt(std::strtod(Cur().text.c_str(), nullptr));
      } else {
        *out = Token::Int(std::strtoll(Cur().text.c_str(), nullptr, 10));
      }
      Next();
      return Status::Ok();
    }
    if (At(LexKind::kIdent) && (Cur().text == "true" || Cur().text == "false")) {
      *out = Token::Bit(Cur().text == "true");
      Next();
      return Status::Ok();
    }
    return Error("expected a literal value");
  }

  Status ParseRule() {
    std::string lhs;
    DLS_RETURN_IF_ERROR(ExpectIdent(&lhs));
    DLS_RETURN_IF_ERROR(ExpectPunct(':'));

    std::vector<RhsElement> rhs;
    auto flush = [&]() {
      grammar_.rules_by_lhs_[lhs].push_back(grammar_.rules_.size());
      grammar_.rules_.push_back(Rule{lhs, std::move(rhs)});
      rhs.clear();
    };

    while (!AtPunct(';')) {
      if (AtPunct('|')) {
        Next();
        flush();
        continue;
      }
      RhsElement element;
      if (At(LexKind::kString)) {
        element.kind = RhsElement::Kind::kLiteral;
        element.literal = Cur().text;
        Next();
      } else if (AtPunct('&')) {
        Next();
        element.kind = RhsElement::Kind::kReference;
        DLS_RETURN_IF_ERROR(ExpectIdent(&element.name));
      } else if (At(LexKind::kIdent)) {
        element.kind = RhsElement::Kind::kSymbol;
        element.name = Cur().text;
        Next();
      } else {
        return Error("expected a rule element");
      }
      if (AtPunct('?')) {
        element.repeat = Repeat::kOptional;
        Next();
      } else if (AtPunct('*')) {
        element.repeat = Repeat::kStar;
        Next();
      } else if (AtPunct('+')) {
        element.repeat = Repeat::kPlus;
        Next();
      }
      rhs.push_back(std::move(element));
    }
    Next();  // ';'
    flush();
    return Status::Ok();
  }

  std::vector<Lexeme> lexemes_;
  size_t pos_ = 0;
  Grammar grammar_;
};

Result<Grammar> ParseGrammar(std::string_view text) {
  std::vector<Lexeme> lexemes;
  Status s = Lex(text, &lexemes);
  if (!s.ok()) return s;
  GrammarParser parser(std::move(lexemes));
  return parser.Run();
}

}  // namespace dls::fg
