#ifndef DLS_FG_PARSE_TREE_H_
#define DLS_FG_PARSE_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fg/grammar.h"
#include "fg/token.h"
#include "xml/tree.h"

namespace dls::fg {

using PtNodeId = uint32_t;
inline constexpr PtNodeId kInvalidPtNode = 0xffffffffu;

/// Detector implementation version: major.minor.revision, the paper's
/// three change classes (major = stored data unusable, minor = data
/// still answerable while revalidation is pending, revision = no
/// invalidation at all).
struct DetectorVersion {
  int major = 1;
  int minor = 0;
  int revision = 0;

  bool operator==(const DetectorVersion&) const = default;
  std::string ToString() const;
};

/// Change classes derived from a version bump.
enum class ChangeClass : uint8_t { kRevision, kMinor, kMajor };

ChangeClass ClassifyChange(const DetectorVersion& from,
                           const DetectorVersion& to);

/// A node of an FDE parse tree.
struct PtNode {
  enum class Kind : uint8_t {
    kVariable,
    kDetector,
    kTerminal,
    kLiteral,
    kReference,
  };
  Kind kind = Kind::kVariable;
  std::string symbol;
  /// Terminal value; whitebox detectors with a bit atom also store
  /// their outcome here.
  Token value;
  /// Reference key (&symbol) — the token that identifies the target.
  std::string ref_key;
  /// Version of the detector implementation that produced this subtree.
  DetectorVersion version;
  /// Cleared by the FDS when the subtree is awaiting revalidation.
  bool valid = true;

  PtNodeId parent = kInvalidPtNode;
  std::vector<PtNodeId> children;
};

/// The parse tree produced by the FDE: every token in its hierarchical
/// grammar context. Nodes live in an arena; node ids created during a
/// backtracked attempt are reclaimed by truncation before any external
/// reference can exist.
class ParseTree {
 public:
  ParseTree() = default;
  ParseTree(ParseTree&&) = default;
  ParseTree& operator=(ParseTree&&) = default;
  ParseTree(const ParseTree&) = delete;
  ParseTree& operator=(const ParseTree&) = delete;

  PtNodeId CreateRoot(std::string_view symbol, PtNode::Kind kind);
  PtNodeId AppendChild(PtNodeId parent, std::string_view symbol,
                       PtNode::Kind kind);

  bool has_root() const { return root_ != kInvalidPtNode; }
  PtNodeId root() const { return root_; }
  size_t node_count() const { return nodes_.size(); }

  const PtNode& node(PtNodeId id) const { return nodes_[id]; }
  PtNode& mutable_node(PtNodeId id) { return nodes_[id]; }

  /// Arena mark for backtracking: everything at or above `mark` is
  /// discarded and detached from its parent.
  size_t Mark() const { return nodes_.size(); }
  void RollbackTo(size_t mark);

  /// Detaches all children of `id` (FDS incremental re-parse). The
  /// detached arena slots are tombstoned, not reused.
  void ClearChildren(PtNodeId id);

  /// All live descendants of `id` (excluding `id`) in document order.
  std::vector<PtNodeId> Descendants(PtNodeId id) const;

  /// Live descendants of `id` with the given symbol, document order.
  std::vector<PtNodeId> FindDescendants(PtNodeId id,
                                        std::string_view symbol) const;

  /// All live nodes with the given symbol anywhere in the tree.
  std::vector<PtNodeId> FindAll(std::string_view symbol) const;

  /// Resolves a dotted path relative to `context` per the feature
  /// grammar scoping rule: walk from `context` up through its
  /// ancestors; at the first anchor from which the full path matches
  /// (the anchor itself or a descendant naming path[0], then successive
  /// descendants), return the matched nodes. `all_matches` controls
  /// whether every match of the final segment is returned (quantifier
  /// bindings) or just the first (detector inputs).
  std::vector<PtNodeId> ResolvePath(PtNodeId context, const Path& path,
                                    bool all_matches) const;

  /// The token value of a node: terminals/whitebox bits answer
  /// directly; variable/detector nodes answer with their single
  /// terminal descendant if unambiguous. Returns false if no value.
  bool ValueOf(PtNodeId id, Token* out) const;

  /// Serialises the (live part of the) tree as an XML document:
  /// symbols become elements, terminal values text content, detector
  /// versions and validity attributes. This is the form handed to the
  /// physical level.
  xml::Document ToXml() const;

  /// A content signature of the subtree at `id` (symbols + values),
  /// used by the FDS to detect whether a re-run changed anything.
  std::string SubtreeSignature(PtNodeId id) const;

  /// Inverse of ToXml(): rebuilds a parse tree from its XML dump,
  /// using `grammar` to restore node kinds and typed terminal values.
  /// Enables restarting a search engine from the persisted meta
  /// database with full FDS maintenance capability.
  static Result<ParseTree> FromXml(const Grammar& grammar,
                                   const xml::Document& doc);

 private:
  bool MatchPathFrom(PtNodeId base, const Path& path, size_t index,
                     bool all_matches, std::vector<PtNodeId>* out) const;

  std::vector<PtNode> nodes_;
  PtNodeId root_ = kInvalidPtNode;
};

}  // namespace dls::fg

#endif  // DLS_FG_PARSE_TREE_H_
