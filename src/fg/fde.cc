#include "fg/fde.h"

#include <cassert>

#include "common/strings.h"

namespace dls::fg {
namespace {

/// Three-way comparison semantics for whitebox predicates.
bool CompareTokens(const Token& value, CmpOp op, const Token& literal) {
  bool numeric = literal.type() == AtomType::kInt ||
                 literal.type() == AtomType::kFlt ||
                 value.type() == AtomType::kInt ||
                 value.type() == AtomType::kFlt;
  if (literal.type() == AtomType::kBit || value.type() == AtomType::kBit) {
    bool equal = value.AsBit() == literal.AsBit();
    if (op == CmpOp::kEq) return equal;
    if (op == CmpOp::kNe) return !equal;
    return false;  // ordering on bits is meaningless
  }
  if (numeric) {
    double a = value.type() == AtomType::kInt
                   ? static_cast<double>(value.AsInt())
                   : value.AsFlt();
    // Non-numeric value text against a numeric literal: parse the text.
    if (value.type() == AtomType::kStr || value.type() == AtomType::kUrl) {
      a = std::strtod(value.text().c_str(), nullptr);
    }
    double b = literal.type() == AtomType::kInt
                   ? static_cast<double>(literal.AsInt())
                   : literal.type() == AtomType::kFlt
                         ? literal.AsFlt()
                         : std::strtod(literal.text().c_str(), nullptr);
    switch (op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return a < b;
      case CmpOp::kLe: return a <= b;
      case CmpOp::kGt: return a > b;
      case CmpOp::kGe: return a >= b;
    }
  }
  int cmp = value.text().compare(literal.text());
  switch (op) {
    case CmpOp::kEq: return cmp == 0;
    case CmpOp::kNe: return cmp != 0;
    case CmpOp::kLt: return cmp < 0;
    case CmpOp::kLe: return cmp <= 0;
    case CmpOp::kGt: return cmp > 0;
    case CmpOp::kGe: return cmp >= 0;
  }
  return false;
}

}  // namespace

Fde::Fde(const Grammar* grammar, DetectorRegistry* registry,
         FdeOptions options)
    : grammar_(grammar), registry_(registry), options_(options) {}

Result<ParseTree> Fde::Parse(std::vector<Token> initial_tokens) {
  ParseTree tree;
  TokenStack stack(options_.share_suffixes, &stats_.stack);
  // First declared token must surface first: push in reverse.
  for (auto it = initial_tokens.rbegin(); it != initial_tokens.rend(); ++it) {
    stack.Push(std::move(*it));
  }
  references_.clear();
  inited_.clear();
  budget_exceeded_ = false;

  bool ok = ParseSymbol(&tree, kInvalidPtNode, grammar_->start_symbol(),
                        &stack);
  if (budget_exceeded_) {
    return Status::Internal("FDE step budget exceeded");
  }
  if (!ok) {
    return Status::DetectorFailure("object is not in L(G): start symbol '" +
                                   grammar_->start_symbol() + "' invalid");
  }
  if (!stack.empty()) {
    return Status::DetectorFailure(
        StrFormat("parse left %zu unconsumed token(s); first: '%s'",
                  stack.size(), stack.Top().text().c_str()));
  }

  // Run final hooks of every detector whose init ran.
  for (const std::string& name : inited_) {
    DetectorContext context;
    context.tree = &tree;
    context.env = options_.env;
    Status s = registry_->InvokeFinal(name, context);
    if (!s.ok()) return s;
  }
  return tree;
}

bool Fde::ParseSymbol(ParseTree* tree, PtNodeId parent,
                      const std::string& name, TokenStack* stack) {
  if (++stats_.steps > options_.max_steps) {
    budget_exceeded_ = true;
    return false;
  }
  if (budget_exceeded_) return false;

  SymbolKind kind = grammar_->KindOf(name);
  size_t mark = tree->Mark();
  TokenStack::Snapshot snap = stack->Save();

  auto fail = [&]() {
    tree->RollbackTo(mark);
    stack->Restore(snap);
    ++stats_.backtracks;
    return false;
  };

  switch (kind) {
    case SymbolKind::kTerminal: {
      if (stack->empty()) return fail();
      const Token& token = stack->Top();
      if (!token.Matches(grammar_->atom_type(name))) return fail();
      PtNodeId node =
          parent == kInvalidPtNode
              ? tree->CreateRoot(name, PtNode::Kind::kTerminal)
              : tree->AppendChild(parent, name, PtNode::Kind::kTerminal);
      tree->mutable_node(node).value = token;
      stack->Pop();
      return true;
    }

    case SymbolKind::kDetector: {
      PtNodeId node =
          parent == kInvalidPtNode
              ? tree->CreateRoot(name, PtNode::Kind::kDetector)
              : tree->AppendChild(parent, name, PtNode::Kind::kDetector);
      const DetectorDecl* decl = grammar_->FindDetector(name);
      assert(decl != nullptr);
      if (!ExecuteDetector(tree, node, *decl, stack)) return fail();
      // Detector rules (if any) consume the tokens it produced.
      if (!grammar_->RulesFor(name).empty()) {
        if (!ParseAlternatives(tree, node, name, stack)) return fail();
      }
      if (registry_->HasEnd(name)) {
        DetectorContext context;
        context.tree = tree;
        context.node = node;
        context.env = options_.env;
        if (!registry_->InvokeEnd(name, context).ok()) return fail();
      }
      return true;
    }

    case SymbolKind::kVariable: {
      PtNodeId node =
          parent == kInvalidPtNode
              ? tree->CreateRoot(name, PtNode::Kind::kVariable)
              : tree->AppendChild(parent, name, PtNode::Kind::kVariable);
      if (!ParseAlternatives(tree, node, name, stack)) return fail();
      return true;
    }

    case SymbolKind::kUnknown:
      return fail();
  }
  return fail();
}

bool Fde::ParseAlternatives(ParseTree* tree, PtNodeId self,
                            const std::string& lhs, TokenStack* stack) {
  for (const Rule* rule : grammar_->RulesFor(lhs)) {
    size_t mark = tree->Mark();
    TokenStack::Snapshot snap = stack->Save();
    if (ParseRuleBody(tree, self, *rule, stack)) return true;
    tree->RollbackTo(mark);
    stack->Restore(snap);
    ++stats_.backtracks;
  }
  return false;
}

bool Fde::ParseRuleBody(ParseTree* tree, PtNodeId self, const Rule& rule,
                        TokenStack* stack) {
  for (const RhsElement& element : rule.rhs) {
    if (!ParseElement(tree, self, element, stack)) return false;
  }
  return true;
}

bool Fde::ParseElement(ParseTree* tree, PtNodeId parent,
                       const RhsElement& element, TokenStack* stack) {
  switch (element.repeat) {
    case Repeat::kOne:
      return ParseElementOnce(tree, parent, element, stack);
    case Repeat::kOptional: {
      size_t mark = tree->Mark();
      TokenStack::Snapshot snap = stack->Save();
      if (!ParseElementOnce(tree, parent, element, stack)) {
        tree->RollbackTo(mark);
        stack->Restore(snap);
        ++stats_.backtracks;
      }
      return true;
    }
    case Repeat::kStar:
    case Repeat::kPlus: {
      size_t count = 0;
      while (true) {
        size_t mark = tree->Mark();
        TokenStack::Snapshot snap = stack->Save();
        if (!ParseElementOnce(tree, parent, element, stack)) {
          tree->RollbackTo(mark);
          stack->Restore(snap);
          ++stats_.backtracks;
          break;
        }
        ++count;
        if (budget_exceeded_) return false;
      }
      return element.repeat == Repeat::kStar || count >= 1;
    }
  }
  return false;
}

bool Fde::ParseElementOnce(ParseTree* tree, PtNodeId parent,
                           const RhsElement& element, TokenStack* stack) {
  switch (element.kind) {
    case RhsElement::Kind::kSymbol:
      return ParseSymbol(tree, parent, element.name, stack);
    case RhsElement::Kind::kLiteral: {
      if (stack->empty()) return false;
      const Token& token = stack->Top();
      if (token.text() != element.literal) return false;
      PtNodeId node =
          tree->AppendChild(parent, element.literal, PtNode::Kind::kLiteral);
      tree->mutable_node(node).value = Token::Str(element.literal);
      stack->Pop();
      return true;
    }
    case RhsElement::Kind::kReference: {
      if (stack->empty()) return false;
      const Token& token = stack->Top();
      // Strict type gate: a reference list stops at the first token
      // that is not keyed like the referenced symbol.
      std::optional<AtomType> key_type =
          grammar_->ReferenceKeyType(element.name);
      if (key_type.has_value() && token.type() != *key_type) return false;
      PtNodeId node =
          tree->AppendChild(parent, element.name, PtNode::Kind::kReference);
      tree->mutable_node(node).ref_key = token.text();
      references_.push_back(ParsedReference{node, element.name, token.text()});
      stack->Pop();
      return true;
    }
  }
  return false;
}

bool Fde::ExecuteDetector(ParseTree* tree, PtNodeId node,
                          const DetectorDecl& decl, TokenStack* stack) {
  DetectorContext context;
  context.tree = tree;
  context.node = node;
  context.env = options_.env;

  // init runs the first time the parser encounters the symbol.
  if (registry_->HasInit(decl.name) && inited_.count(decl.name) == 0) {
    if (!registry_->InvokeInit(decl.name, context).ok()) return false;
    inited_.insert(decl.name);
  }
  if (registry_->HasBegin(decl.name)) {
    if (!registry_->InvokeBegin(decl.name, context).ok()) return false;
  }

  // Record the implementation version on the node for the FDS.
  if (Result<DetectorVersion> v = registry_->VersionOf(decl.name); v.ok()) {
    tree->mutable_node(node).version = v.value();
  }

  if (decl.IsWhitebox()) {
    bool outcome = EvalPredicate(*tree, node, *decl.predicate);
    if (grammar_->IsAtom(decl.name) &&
        grammar_->atom_type(decl.name) == AtomType::kBit) {
      // A bit-typed whitebox detector stores its outcome as data; the
      // parse succeeds either way (netplay in Fig. 7).
      tree->mutable_node(node).value = Token::Bit(outcome);
      return true;
    }
    // Pure guard (video_type in Fig. 6): failure backtracks.
    return outcome;
  }

  // Blackbox: resolve the declared input paths against the tree.
  for (const Path& path : decl.inputs) {
    std::vector<PtNodeId> matches = tree->ResolvePath(node, path, false);
    Token value;
    if (matches.empty() || !tree->ValueOf(matches.front(), &value)) {
      return false;  // required input unavailable
    }
    context.inputs.push_back(std::move(value));
  }

  if (decl.protocol != DetectorProtocol::kLinked) {
    // Simulated RPC boundary: count the call and the serialised
    // argument bytes; optionally inject a transport failure.
    ++stats_.rpc_calls;
    for (const Token& t : context.inputs) {
      stats_.rpc_bytes += t.text().size();
    }
    if (options_.rpc_failure_every > 0 &&
        stats_.rpc_calls % options_.rpc_failure_every == 0) {
      return false;
    }
  }

  std::vector<Token> outputs;
  if (!registry_->Invoke(decl.name, context, &outputs).ok()) return false;
  if (decl.protocol != DetectorProtocol::kLinked) {
    for (const Token& t : outputs) stats_.rpc_bytes += t.text().size();
  }
  stats_.tokens_pushed += outputs.size();
  for (auto it = outputs.rbegin(); it != outputs.rend(); ++it) {
    stack->Push(std::move(*it));
  }
  return true;
}

bool Fde::EvalPredicate(const ParseTree& tree, PtNodeId context,
                        const PredExpr& expr) {
  switch (expr.kind) {
    case PredExpr::Kind::kCompare: {
      std::vector<PtNodeId> matches =
          tree.ResolvePath(context, expr.path, false);
      if (matches.empty()) return false;
      Token value;
      if (!tree.ValueOf(matches.front(), &value)) return false;
      return CompareTokens(value, expr.op, expr.literal);
    }
    case PredExpr::Kind::kAnd:
      for (const auto& child : expr.children) {
        if (!EvalPredicate(tree, context, *child)) return false;
      }
      return true;
    case PredExpr::Kind::kOr:
      for (const auto& child : expr.children) {
        if (EvalPredicate(tree, context, *child)) return true;
      }
      return false;
    case PredExpr::Kind::kNot:
      return !EvalPredicate(tree, context, *expr.children.front());
    case PredExpr::Kind::kQuantified: {
      std::vector<PtNodeId> bindings =
          tree.ResolvePath(context, expr.binding, true);
      size_t hits = 0;
      for (PtNodeId bound : bindings) {
        if (EvalPredicate(tree, bound, *expr.children.front())) ++hits;
      }
      switch (expr.quant) {
        case Quantifier::kSome: return hits >= 1;
        case Quantifier::kAll: return hits == bindings.size();
        case Quantifier::kOne: return hits == 1;
      }
      return false;
    }
  }
  return false;
}

Status Fde::ReparseDetectorNode(ParseTree* tree, PtNodeId node) {
  // Note: node references into the arena are invalidated by appends;
  // copy what we need up front.
  if (tree->node(node).kind != PtNode::Kind::kDetector) {
    return Status::InvalidArgument("node is not a detector instance");
  }
  const std::string symbol = tree->node(node).symbol;
  const DetectorDecl* decl = grammar_->FindDetector(symbol);
  if (decl == nullptr) {
    return Status::NotFound("detector '" + symbol + "' not in grammar");
  }

  tree->ClearChildren(node);
  tree->mutable_node(node).valid = true;
  tree->mutable_node(node).value = Token();
  budget_exceeded_ = false;

  size_t mark = tree->Mark();
  TokenStack stack(options_.share_suffixes, &stats_.stack);
  if (!ExecuteDetector(tree, node, *decl, &stack) ||
      (!grammar_->RulesFor(symbol).empty() &&
       !ParseAlternatives(tree, node, symbol, &stack)) ||
      !stack.empty()) {
    tree->RollbackTo(mark);
    tree->ClearChildren(node);
    tree->mutable_node(node).valid = false;
    return Status::DetectorFailure("incremental parse of '" + symbol +
                                   "' failed");
  }
  return Status::Ok();
}

}  // namespace dls::fg
