#ifndef DLS_FG_DEPGRAPH_H_
#define DLS_FG_DEPGRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "fg/grammar.h"

namespace dls::fg {

/// Edge kinds of the grammar dependency graph (Fig. 8).
enum class DepKind : uint8_t {
  kSibling,    ///< symbols sharing a rule's right-hand side (undirected)
  kRule,       ///< lhs depends on the last obligatory rhs symbol
  kParameter,  ///< detector depends on its input/predicate paths
};

struct DepEdge {
  std::string from;
  std::string to;
  DepKind kind;

  bool operator==(const DepEdge&) const = default;
  bool operator<(const DepEdge& other) const {
    if (from != other.from) return from < other.from;
    if (to != other.to) return to < other.to;
    return kind < other.kind;
  }
};

/// The dependency graph the FDS schedules from. Nodes are grammar
/// symbols; edges are derived mechanically from the production rules
/// and detector declarations:
///  1. sibling — every pair of symbols co-occurring in one RHS (stored
///     once, lexicographically ordered, semantics undirected);
///  2. rule — lhs -> the last obligatory (lower bound > 0) non-literal
///     symbol of each alternative;
///  3. parameter — detector -> final segment of each declared input
///     path and of each path inside a whitebox predicate.
class DependencyGraph {
 public:
  static DependencyGraph Build(const Grammar& grammar);

  const std::set<DepEdge>& edges() const { return edges_; }

  bool HasEdge(std::string_view from, std::string_view to,
               DepKind kind) const;

  /// Detectors whose parameter edges point at `symbol` — the set to
  /// revalidate when a value of `symbol` changes.
  std::vector<std::string> ParameterDependents(std::string_view symbol) const;

  /// Symbols reachable from `symbol` by following rule edges downward
  /// (from lhs to rhs) plus the sibling closure — the partial parse
  /// trees invalidated when `symbol`'s detector changes.
  std::vector<std::string> DownwardClosure(std::string_view symbol,
                                           const Grammar& grammar) const;

  /// Graphviz rendering (node shapes by symbol kind, edge styles by
  /// dependency kind) — reproduces Fig. 8 mechanically.
  std::string ToDot(const Grammar& grammar) const;

 private:
  std::set<DepEdge> edges_;
};

}  // namespace dls::fg

#endif  // DLS_FG_DEPGRAPH_H_
