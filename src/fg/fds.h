#ifndef DLS_FG_FDS_H_
#define DLS_FG_FDS_H_

#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "common/status.h"
#include "fg/depgraph.h"
#include "fg/fde.h"

namespace dls::fg {

/// The meta-index: parse trees of all analysed objects, keyed by the
/// object identifier (usually the URL from the start token set).
class ParseTreeStore {
 public:
  void Put(std::string key, ParseTree tree) {
    trees_[std::move(key)] = std::move(tree);
  }
  bool Has(const std::string& key) const { return trees_.count(key) > 0; }
  ParseTree* Find(const std::string& key) {
    auto it = trees_.find(key);
    return it == trees_.end() ? nullptr : &it->second;
  }
  const ParseTree* Find(const std::string& key) const {
    auto it = trees_.find(key);
    return it == trees_.end() ? nullptr : &it->second;
  }
  void Erase(const std::string& key) { trees_.erase(key); }
  size_t size() const { return trees_.size(); }
  std::vector<std::string> Keys() const;

 private:
  std::map<std::string, ParseTree> trees_;
};

/// Priorities of scheduled revalidations. Major revisions make the
/// stored data unusable and go first; minor revisions leave the data
/// answerable while the backlog drains.
enum class FdsPriority : uint8_t { kHigh = 0, kLow = 1 };

/// One scheduled incremental parse.
struct FdsTask {
  FdsPriority priority;
  std::string object_key;
  std::string detector;  ///< symbol whose instances to revalidate
  uint64_t seq;          ///< FIFO order within a priority class
};

/// Work counters (experiment E5).
struct FdsStats {
  size_t tasks_scheduled = 0;
  size_t tasks_run = 0;
  size_t nodes_invalidated = 0;
  size_t subtrees_unchanged = 0;  ///< re-runs whose output was identical
  size_t cascades = 0;            ///< parameter-dependency follow-ups
  size_t full_reparses = 0;       ///< source-data changes
};

/// The Feature Detector Scheduler: demand-driven index maintenance.
///
/// The FDS owns no analysis logic; it owns the *dependency reasoning*:
/// given "detector X changed from version A to B" it classifies the
/// change (revision / minor / major), localises the affected partial
/// parse trees through the dependency graph, schedules incremental
/// parses with the right priority, and cascades to parameter-dependent
/// detectors whose inputs actually changed.
class Fds {
 public:
  Fds(const Grammar* grammar, DetectorRegistry* registry,
      ParseTreeStore* store, Fde* fde);

  /// Installs a new implementation of `detector` and schedules the
  /// consequences. Returns the classified change.
  Result<ChangeClass> UpdateDetector(std::string_view detector, DetectorFn fn,
                                     DetectorVersion new_version);

  /// Signals that the source object behind `key` changed; per the
  /// paper a special probe associated with the start symbol decides
  /// whether the whole stored parse tree is stale. `probe` returns
  /// true if the stored tree is still valid. A full regeneration needs
  /// the object's initial token set, supplied by `initial_tokens`.
  Status OnSourceChanged(const std::string& key,
                         const std::function<bool(const ParseTree&)>& probe,
                         std::vector<Token> initial_tokens);

  size_t pending() const { return queue_.size(); }

  /// Drains the queue in priority order, running incremental parses.
  Status RunPending();

  const FdsStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FdsStats(); }

 private:
  struct TaskOrder {
    bool operator()(const FdsTask& a, const FdsTask& b) const {
      if (a.priority != b.priority) return a.priority > b.priority;  // min-heap
      return a.seq > b.seq;
    }
  };

  void Schedule(FdsPriority priority, const std::string& key,
                const std::string& detector);
  Status RunTask(const FdsTask& task);

  const Grammar* grammar_;
  DetectorRegistry* registry_;
  ParseTreeStore* store_;
  Fde* fde_;
  DependencyGraph graph_;
  std::priority_queue<FdsTask, std::vector<FdsTask>, TaskOrder> queue_;
  uint64_t next_seq_ = 0;
  FdsStats stats_;
};

}  // namespace dls::fg

#endif  // DLS_FG_FDS_H_
