#include "fg/depgraph.h"

#include <algorithm>

namespace dls::fg {

DependencyGraph DependencyGraph::Build(const Grammar& grammar) {
  DependencyGraph graph;

  for (const Rule& rule : grammar.rules()) {
    // Sibling edges: all pairs of non-literal RHS symbols, stored with
    // lexicographically smaller name first (undirected).
    std::vector<std::string> symbols;
    for (const RhsElement& element : rule.rhs) {
      if (element.kind != RhsElement::Kind::kLiteral) {
        symbols.push_back(element.name);
      }
    }
    for (size_t i = 0; i < symbols.size(); ++i) {
      for (size_t j = i + 1; j < symbols.size(); ++j) {
        if (symbols[i] == symbols[j]) continue;
        const std::string& a = std::min(symbols[i], symbols[j]);
        const std::string& b = std::max(symbols[i], symbols[j]);
        graph.edges_.insert(DepEdge{a, b, DepKind::kSibling});
      }
    }

    // Rule edge: lhs -> last obligatory non-literal symbol; if none is
    // obligatory, fall back to the last non-literal symbol.
    const std::string* target = nullptr;
    const std::string* last_any = nullptr;
    for (const RhsElement& element : rule.rhs) {
      if (element.kind == RhsElement::Kind::kLiteral) continue;
      last_any = &element.name;
      if (IsObligatory(element.repeat)) target = &element.name;
    }
    if (target == nullptr) target = last_any;
    if (target != nullptr && *target != rule.lhs) {
      graph.edges_.insert(DepEdge{rule.lhs, *target, DepKind::kRule});
    }
  }

  // Parameter edges.
  for (const auto& [name, decl] : grammar.detectors()) {
    std::vector<Path> paths = decl.inputs;
    if (decl.predicate != nullptr) {
      CollectPredicatePaths(*decl.predicate, &paths);
    }
    for (const Path& path : paths) {
      if (path.empty()) continue;
      const std::string& target = path.back();
      if (target != name) {
        graph.edges_.insert(DepEdge{name, target, DepKind::kParameter});
      }
    }
  }
  return graph;
}

bool DependencyGraph::HasEdge(std::string_view from, std::string_view to,
                              DepKind kind) const {
  DepEdge probe{std::string(from), std::string(to), kind};
  if (kind == DepKind::kSibling && probe.from > probe.to) {
    std::swap(probe.from, probe.to);
  }
  return edges_.find(probe) != edges_.end();
}

std::vector<std::string> DependencyGraph::ParameterDependents(
    std::string_view symbol) const {
  std::vector<std::string> out;
  for (const DepEdge& edge : edges_) {
    if (edge.kind == DepKind::kParameter && edge.to == symbol) {
      out.push_back(edge.from);
    }
  }
  return out;
}

std::vector<std::string> DependencyGraph::DownwardClosure(
    std::string_view symbol, const Grammar& grammar) const {
  // Downward = through the production rules: everything derivable from
  // `symbol`, i.e. the contents of partial parse trees rooted at it.
  std::set<std::string> seen;
  std::vector<std::string> frontier{std::string(symbol)};
  seen.insert(std::string(symbol));
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.back());
    frontier.pop_back();
    for (const Rule* rule : grammar.RulesFor(cur)) {
      for (const RhsElement& element : rule->rhs) {
        if (element.kind == RhsElement::Kind::kLiteral) continue;
        if (seen.insert(element.name).second) {
          frontier.push_back(element.name);
        }
      }
    }
  }
  return std::vector<std::string>(seen.begin(), seen.end());
}

std::string DependencyGraph::ToDot(const Grammar& grammar) const {
  std::string out = "digraph dependencies {\n";
  for (const std::string& symbol : grammar.AllSymbols()) {
    const char* shape = "ellipse";
    switch (grammar.KindOf(symbol)) {
      case SymbolKind::kDetector:
        shape = "diamond";
        break;
      case SymbolKind::kTerminal:
        shape = "box";
        break;
      default:
        break;
    }
    out += "  \"" + symbol + "\" [shape=" + shape + "];\n";
  }
  for (const DepEdge& edge : edges_) {
    const char* style = "";
    switch (edge.kind) {
      case DepKind::kSibling:
        style = " [dir=none, style=dashed, label=\"sibling\"]";
        break;
      case DepKind::kRule:
        style = " [label=\"rule\"]";
        break;
      case DepKind::kParameter:
        style = " [style=dotted, label=\"parameter\"]";
        break;
    }
    out += "  \"" + edge.from + "\" -> \"" + edge.to + "\"" + style + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace dls::fg
