#include "fg/parse_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace dls::fg {

std::string DetectorVersion::ToString() const {
  return StrFormat("%d.%d.%d", major, minor, revision);
}

ChangeClass ClassifyChange(const DetectorVersion& from,
                           const DetectorVersion& to) {
  if (from.major != to.major) return ChangeClass::kMajor;
  if (from.minor != to.minor) return ChangeClass::kMinor;
  return ChangeClass::kRevision;
}

PtNodeId ParseTree::CreateRoot(std::string_view symbol, PtNode::Kind kind) {
  assert(root_ == kInvalidPtNode);
  PtNode n;
  n.kind = kind;
  n.symbol = std::string(symbol);
  nodes_.push_back(std::move(n));
  root_ = 0;
  return root_;
}

PtNodeId ParseTree::AppendChild(PtNodeId parent, std::string_view symbol,
                                PtNode::Kind kind) {
  PtNode n;
  n.kind = kind;
  n.symbol = std::string(symbol);
  n.parent = parent;
  nodes_.push_back(std::move(n));
  PtNodeId id = static_cast<PtNodeId>(nodes_.size() - 1);
  nodes_[parent].children.push_back(id);
  return id;
}

void ParseTree::RollbackTo(size_t mark) {
  for (size_t i = mark; i < nodes_.size(); ++i) {
    PtNodeId parent = nodes_[i].parent;
    if (parent != kInvalidPtNode && parent < mark) {
      auto& siblings = nodes_[parent].children;
      siblings.erase(
          std::remove(siblings.begin(), siblings.end(),
                      static_cast<PtNodeId>(i)),
          siblings.end());
    }
  }
  nodes_.resize(mark);
  if (root_ != kInvalidPtNode && root_ >= mark) root_ = kInvalidPtNode;
}

void ParseTree::ClearChildren(PtNodeId id) {
  // Detached subtrees become unreachable; the arena slots are
  // tombstones (traversals start at the root, so they are never seen).
  nodes_[id].children.clear();
}

std::vector<PtNodeId> ParseTree::Descendants(PtNodeId id) const {
  std::vector<PtNodeId> out;
  std::vector<PtNodeId> stack(nodes_[id].children.rbegin(),
                              nodes_[id].children.rend());
  while (!stack.empty()) {
    PtNodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& children = nodes_[cur].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<PtNodeId> ParseTree::FindDescendants(
    PtNodeId id, std::string_view symbol) const {
  std::vector<PtNodeId> out;
  for (PtNodeId d : Descendants(id)) {
    if (nodes_[d].symbol == symbol) out.push_back(d);
  }
  return out;
}

std::vector<PtNodeId> ParseTree::FindAll(std::string_view symbol) const {
  std::vector<PtNodeId> out;
  if (root_ == kInvalidPtNode) return out;
  if (nodes_[root_].symbol == symbol) out.push_back(root_);
  for (PtNodeId d : Descendants(root_)) {
    if (nodes_[d].symbol == symbol) out.push_back(d);
  }
  return out;
}

bool ParseTree::MatchPathFrom(PtNodeId base, const Path& path, size_t index,
                              bool all_matches,
                              std::vector<PtNodeId>* out) const {
  if (index == path.size()) {
    out->push_back(base);
    return true;
  }
  bool matched = false;
  for (PtNodeId d : FindDescendants(base, path[index])) {
    matched |= MatchPathFrom(d, path, index + 1, all_matches, out);
    if (matched && !all_matches) return true;
  }
  return matched;
}

std::vector<PtNodeId> ParseTree::ResolvePath(PtNodeId context,
                                             const Path& path,
                                             bool all_matches) const {
  if (path.empty()) return {};
  for (PtNodeId anchor = context; anchor != kInvalidPtNode;
       anchor = nodes_[anchor].parent) {
    std::vector<PtNodeId> out;
    if (nodes_[anchor].symbol == path[0]) {
      MatchPathFrom(anchor, path, 1, all_matches, &out);
    } else {
      for (PtNodeId base : FindDescendants(anchor, path[0])) {
        bool matched = MatchPathFrom(base, path, 1, all_matches, &out);
        if (matched && !all_matches) break;
      }
    }
    if (!out.empty()) return out;
  }
  return {};
}

bool ParseTree::ValueOf(PtNodeId id, Token* out) const {
  const PtNode& n = nodes_[id];
  switch (n.kind) {
    case PtNode::Kind::kTerminal:
    case PtNode::Kind::kLiteral:
      *out = n.value;
      return true;
    case PtNode::Kind::kReference:
      *out = Token::Str(n.ref_key);
      return true;
    case PtNode::Kind::kDetector:
      if (!n.value.text().empty() || n.value.type() == AtomType::kBit) {
        *out = n.value;
        return true;
      }
      [[fallthrough]];
    case PtNode::Kind::kVariable: {
      // A composite node answers with its single terminal descendant.
      const PtNode* found = nullptr;
      for (PtNodeId d : Descendants(id)) {
        if (nodes_[d].kind == PtNode::Kind::kTerminal) {
          if (found != nullptr) return false;  // ambiguous
          found = &nodes_[d];
        }
      }
      if (found == nullptr) return false;
      *out = found->value;
      return true;
    }
  }
  return false;
}

namespace {

void DumpNode(const ParseTree& tree, PtNodeId id, xml::Document* doc,
              xml::NodeId parent) {
  const PtNode& n = tree.node(id);
  std::string name = n.kind == PtNode::Kind::kLiteral ? "literal" : n.symbol;
  xml::NodeId self = parent == xml::kInvalidNode
                         ? doc->CreateRoot(name)
                         : doc->AppendElement(parent, name);
  if (n.kind == PtNode::Kind::kDetector) {
    doc->SetAttribute(self, "version", n.version.ToString());
    if (!n.valid) doc->SetAttribute(self, "valid", "false");
  }
  if (n.kind == PtNode::Kind::kReference) {
    doc->SetAttribute(self, "ref", n.ref_key);
    return;
  }
  if (n.kind == PtNode::Kind::kTerminal || n.kind == PtNode::Kind::kLiteral ||
      (n.kind == PtNode::Kind::kDetector && !n.value.text().empty())) {
    if (!n.value.text().empty()) doc->AppendText(self, n.value.text());
  }
  for (PtNodeId child : n.children) DumpNode(tree, child, doc, self);
}

void SignatureNode(const ParseTree& tree, PtNodeId id, std::string* out) {
  const PtNode& n = tree.node(id);
  *out += n.symbol;
  *out += '=';
  *out += n.value.text();
  if (!n.ref_key.empty()) {
    *out += '&';
    *out += n.ref_key;
  }
  *out += '(';
  for (PtNodeId child : n.children) SignatureNode(tree, child, out);
  *out += ')';
}

}  // namespace

xml::Document ParseTree::ToXml() const {
  xml::Document doc;
  if (root_ != kInvalidPtNode) {
    DumpNode(*this, root_, &doc, xml::kInvalidNode);
  }
  return doc;
}

std::string ParseTree::SubtreeSignature(PtNodeId id) const {
  std::string out;
  SignatureNode(*this, id, &out);
  return out;
}

namespace {

/// Parses "M.m.r" back into a DetectorVersion; tolerant of absence.
DetectorVersion VersionFromString(const std::string& text) {
  DetectorVersion v;
  std::sscanf(text.c_str(), "%d.%d.%d", &v.major, &v.minor, &v.revision);
  return v;
}

Token TokenForTerminal(const Grammar& grammar, const std::string& symbol,
                       const std::string& text) {
  switch (grammar.atom_type(symbol)) {
    case AtomType::kInt:
      return Token::Int(std::strtoll(text.c_str(), nullptr, 10));
    case AtomType::kFlt:
      return Token::Flt(std::strtod(text.c_str(), nullptr));
    case AtomType::kBit:
      return Token::Bit(text == "true");
    case AtomType::kUrl:
      return Token::Url(text);
    case AtomType::kStr:
      return Token::Str(text);
  }
  return Token::Str(text);
}

Status RebuildNode(const Grammar& grammar, const xml::Document& doc,
                   xml::NodeId src, ParseTree* tree, PtNodeId parent) {
  const xml::Node& n = doc.node(src);
  std::string inner = doc.InnerText(src);

  PtNode::Kind kind = PtNode::Kind::kVariable;
  const std::string* ref = doc.FindAttribute(src, "ref");
  if (ref != nullptr) {
    kind = PtNode::Kind::kReference;
  } else if (n.name == "literal") {
    kind = PtNode::Kind::kLiteral;
  } else {
    switch (grammar.KindOf(n.name)) {
      case SymbolKind::kDetector:
        kind = PtNode::Kind::kDetector;
        break;
      case SymbolKind::kTerminal:
        kind = PtNode::Kind::kTerminal;
        break;
      case SymbolKind::kVariable:
        kind = PtNode::Kind::kVariable;
        break;
      case SymbolKind::kUnknown:
        return Status::InvalidArgument("meta document element <" + n.name +
                                       "> is not a grammar symbol");
    }
  }

  PtNodeId self = parent == kInvalidPtNode
                      ? tree->CreateRoot(n.name, kind)
                      : tree->AppendChild(parent, n.name, kind);
  PtNode& node = tree->mutable_node(self);
  if (kind == PtNode::Kind::kReference) {
    node.ref_key = *ref;
    return Status::Ok();
  }
  if (kind == PtNode::Kind::kLiteral) {
    node.value = Token::Str(inner);
    return Status::Ok();
  }
  if (kind == PtNode::Kind::kTerminal) {
    node.value = TokenForTerminal(grammar, n.name, inner);
    return Status::Ok();
  }
  if (kind == PtNode::Kind::kDetector) {
    if (const std::string* version = doc.FindAttribute(src, "version")) {
      node.version = VersionFromString(*version);
    }
    if (const std::string* valid = doc.FindAttribute(src, "valid")) {
      node.valid = *valid != "false";
    }
    // A bit-typed whitebox detector stores its outcome as text content.
    if (grammar.IsAtom(n.name) &&
        grammar.atom_type(n.name) == AtomType::kBit) {
      tree->mutable_node(self).value = Token::Bit(inner == "true");
    }
  }
  for (xml::NodeId child : n.children) {
    if (doc.node(child).kind != xml::NodeKind::kElement) continue;
    DLS_RETURN_IF_ERROR(RebuildNode(grammar, doc, child, tree, self));
  }
  return Status::Ok();
}

}  // namespace

Result<ParseTree> ParseTree::FromXml(const Grammar& grammar,
                                     const xml::Document& doc) {
  if (!doc.has_root()) {
    return Status::InvalidArgument("empty meta document");
  }
  ParseTree tree;
  DLS_RETURN_IF_ERROR(
      RebuildNode(grammar, doc, doc.root(), &tree, kInvalidPtNode));
  return tree;
}

}  // namespace dls::fg
