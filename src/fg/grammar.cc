#include "fg/grammar.h"

#include "common/strings.h"

namespace dls::fg {

std::string PathToString(const Path& path) {
  std::string out;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) out += '.';
    out += path[i];
  }
  return out;
}

void CollectPredicatePaths(const PredExpr& expr, std::vector<Path>* out) {
  switch (expr.kind) {
    case PredExpr::Kind::kCompare:
      out->push_back(expr.path);
      break;
    case PredExpr::Kind::kQuantified:
      out->push_back(expr.binding);
      for (const auto& child : expr.children) {
        CollectPredicatePaths(*child, out);
      }
      break;
    default:
      for (const auto& child : expr.children) {
        CollectPredicatePaths(*child, out);
      }
  }
}

SymbolKind Grammar::KindOf(std::string_view symbol) const {
  std::string key(symbol);
  if (detectors_.find(key) != detectors_.end()) return SymbolKind::kDetector;
  if (atoms_.find(key) != atoms_.end()) return SymbolKind::kTerminal;
  if (rules_by_lhs_.find(key) != rules_by_lhs_.end()) {
    return SymbolKind::kVariable;
  }
  return SymbolKind::kUnknown;
}

const DetectorDecl* Grammar::FindDetector(std::string_view name) const {
  auto it = detectors_.find(std::string(name));
  return it == detectors_.end() ? nullptr : &it->second;
}

std::vector<const Rule*> Grammar::RulesFor(std::string_view lhs) const {
  std::vector<const Rule*> out;
  auto it = rules_by_lhs_.find(std::string(lhs));
  if (it == rules_by_lhs_.end()) return out;
  out.reserve(it->second.size());
  for (size_t index : it->second) out.push_back(&rules_[index]);
  return out;
}

std::set<std::string> Grammar::AllSymbols() const {
  std::set<std::string> out;
  for (const auto& [name, decl] : detectors_) out.insert(name);
  for (const auto& [name, type] : atoms_) out.insert(name);
  for (const Rule& rule : rules_) {
    out.insert(rule.lhs);
    for (const RhsElement& element : rule.rhs) {
      if (element.kind != RhsElement::Kind::kLiteral) out.insert(element.name);
    }
  }
  if (!start_symbol_.empty()) out.insert(start_symbol_);
  return out;
}

std::optional<AtomType> Grammar::ReferenceKeyType(
    std::string_view symbol) const {
  if (IsAtom(symbol)) return atom_type(symbol);
  std::vector<const Rule*> rules = RulesFor(symbol);
  if (rules.empty() || rules.front()->rhs.empty()) return std::nullopt;
  const RhsElement& first = rules.front()->rhs.front();
  if (first.kind == RhsElement::Kind::kSymbol && IsAtom(first.name)) {
    return atom_type(first.name);
  }
  return std::nullopt;
}

Status Grammar::Validate() const {
  if (start_symbol_.empty()) {
    return Status::InvalidArgument("grammar has no %start declaration");
  }
  if (KindOf(start_symbol_) == SymbolKind::kUnknown) {
    return Status::InvalidArgument("start symbol '" + start_symbol_ +
                                   "' is not defined");
  }
  for (const Rule& rule : rules_) {
    // An atom is a terminal: it cannot also appear as a rule LHS unless
    // it is a detector (whitebox detectors may both compute and store a
    // value, like `netplay`).
    if (IsAtom(rule.lhs) && detectors_.find(rule.lhs) == detectors_.end()) {
      return Status::InvalidArgument("atom '" + rule.lhs +
                                     "' cannot have production rules");
    }
    for (const RhsElement& element : rule.rhs) {
      if (element.kind == RhsElement::Kind::kLiteral) continue;
      if (KindOf(element.name) == SymbolKind::kUnknown) {
        return Status::InvalidArgument("symbol '" + element.name +
                                       "' in rule for '" + rule.lhs +
                                       "' is not defined");
      }
    }
  }
  for (const auto& [name, decl] : detectors_) {
    for (const Path& path : decl.inputs) {
      if (path.empty()) {
        return Status::InvalidArgument("detector '" + name +
                                       "' has an empty input path");
      }
      for (const std::string& segment : path) {
        if (KindOf(segment) == SymbolKind::kUnknown) {
          return Status::InvalidArgument(
              "detector '" + name + "' input path segment '" + segment +
              "' is not a known symbol");
        }
      }
    }
  }
  // Whitebox detectors with a stored value must be bit atoms.
  for (const auto& [name, decl] : detectors_) {
    if (decl.IsWhitebox() && IsAtom(name) &&
        atom_type(name) != AtomType::kBit) {
      return Status::InvalidArgument("whitebox detector '" + name +
                                     "' must have atom type bit");
    }
  }
  return Status::Ok();
}

}  // namespace dls::fg
