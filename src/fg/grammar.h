#ifndef DLS_FG_GRAMMAR_H_
#define DLS_FG_GRAMMAR_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fg/token.h"

namespace dls::fg {

/// Repetition marker on a right-hand-side element (regular right part
/// grammar notation, [LaL77]).
enum class Repeat : uint8_t {
  kOne,       ///< exactly one
  kOptional,  ///< ?
  kStar,      ///< *
  kPlus,      ///< +
};

/// True if the element must occur at least once (lower bound > 0).
inline bool IsObligatory(Repeat r) {
  return r == Repeat::kOne || r == Repeat::kPlus;
}

/// One element of a production rule's right-hand side.
struct RhsElement {
  enum class Kind : uint8_t {
    kSymbol,     ///< variable / detector / terminal
    kLiteral,    ///< "quoted" token text that must match
    kReference,  ///< &symbol — a link to another parse tree (Fig. 14)
  };
  Kind kind = Kind::kSymbol;
  std::string name;     ///< symbol or reference target
  std::string literal;  ///< literal text for kLiteral
  Repeat repeat = Repeat::kOne;
};

/// A production rule `lhs : rhs ;`. Alternatives are separate Rule
/// entries sharing the lhs, tried in declaration order.
struct Rule {
  std::string lhs;
  std::vector<RhsElement> rhs;
};

/// A dotted parse-tree path such as `begin.frameNo`. Paths refer to
/// preceding symbols relative to the referencing node.
using Path = std::vector<std::string>;

/// Renders "begin.frameNo".
std::string PathToString(const Path& path);

/// Comparison operators of whitebox predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Quantifiers of whitebox predicates.
enum class Quantifier : uint8_t { kSome, kAll, kOne };

/// Whitebox predicate expression tree.
struct PredExpr {
  enum class Kind : uint8_t {
    kCompare,     ///< path op literal
    kAnd,
    kOr,
    kNot,
    kQuantified,  ///< quant[binding path]( child )
  };
  Kind kind = Kind::kCompare;

  // kCompare:
  Path path;
  CmpOp op = CmpOp::kEq;
  Token literal;

  // kQuantified:
  Quantifier quant = Quantifier::kSome;
  Path binding;

  // kAnd/kOr: two or more; kNot/kQuantified: exactly one.
  std::vector<std::unique_ptr<PredExpr>> children;
};

/// Collects the final segment of every path mentioned in `expr`
/// (parameter dependencies of a whitebox detector).
void CollectPredicatePaths(const PredExpr& expr, std::vector<Path>* out);

/// How a detector implementation is reached.
enum class DetectorProtocol : uint8_t {
  kLinked,   ///< compiled into the parser (the Fig. 6 `header` case)
  kXmlRpc,   ///< external process via XML-RPC (`xml-rpc::segment`)
  kCorba,    ///< external via CORBA
  kSystem,   ///< plain system call
};

/// Declaration of a detector symbol.
struct DetectorDecl {
  std::string name;
  DetectorProtocol protocol = DetectorProtocol::kLinked;
  /// Blackbox input paths; empty for whitebox detectors.
  std::vector<Path> inputs;
  /// Whitebox predicate; null for blackbox detectors.
  std::unique_ptr<PredExpr> predicate;
  /// Special lifecycle hooks declared via name.init() etc.
  bool has_init = false;
  bool has_final = false;
  bool has_begin = false;
  bool has_end = false;

  bool IsWhitebox() const { return predicate != nullptr; }
};

/// Symbol classification within a grammar.
enum class SymbolKind : uint8_t {
  kVariable,
  kDetector,
  kTerminal,
  kUnknown,
};

/// A parsed and validated feature grammar: the quintuple
/// G = (V, D, T, S, P) plus atom typing and detector declarations.
class Grammar {
 public:
  Grammar() = default;
  Grammar(Grammar&&) = default;
  Grammar& operator=(Grammar&&) = default;
  Grammar(const Grammar&) = delete;
  Grammar& operator=(const Grammar&) = delete;

  const std::string& start_symbol() const { return start_symbol_; }
  /// Minimum initial token set (paths; usually plain names).
  const std::vector<Path>& start_args() const { return start_args_; }

  SymbolKind KindOf(std::string_view symbol) const;

  bool IsAtom(std::string_view symbol) const {
    return atoms_.find(std::string(symbol)) != atoms_.end();
  }
  AtomType atom_type(std::string_view symbol) const {
    return atoms_.at(std::string(symbol));
  }

  const DetectorDecl* FindDetector(std::string_view name) const;

  /// Alternatives for `lhs`, in declaration order (may be empty: e.g.
  /// whitebox detectors and terminals have no rules).
  std::vector<const Rule*> RulesFor(std::string_view lhs) const;

  const std::vector<Rule>& rules() const { return rules_; }
  const std::map<std::string, DetectorDecl>& detectors() const {
    return detectors_;
  }
  const std::map<std::string, AtomType>& atoms() const { return atoms_; }

  /// All symbols mentioned anywhere (for the dependency graph).
  std::set<std::string> AllSymbols() const;

  /// The atom type identifying instances of `symbol` when referenced
  /// via `&symbol`: the symbol's own type if it is a terminal,
  /// otherwise the type of the first terminal element of its first
  /// rule (e.g. &MMO is keyed by MMO's leading `location` url).
  /// nullopt if no identifying terminal can be derived — references to
  /// such symbols consume any token. Reference matching is strict (no
  /// int->flt or str<->url widening) so that reference lists in rules
  /// like `body : &keyword+; anchor : &MMO embedded;` terminate at the
  /// type boundary.
  std::optional<AtomType> ReferenceKeyType(std::string_view symbol) const;

  /// Structural validation: every RHS symbol resolvable, start symbol
  /// defined, atoms have no rules, detector paths well-formed.
  Status Validate() const;

 private:
  friend class GrammarParser;

  std::string start_symbol_;
  std::vector<Path> start_args_;
  std::map<std::string, DetectorDecl> detectors_;
  std::map<std::string, AtomType> atoms_;
  std::set<std::string> adts_;  ///< user-declared ADTs (`%atom url;`)
  std::vector<Rule> rules_;
  std::map<std::string, std::vector<size_t>> rules_by_lhs_;
};

/// Parses feature-grammar text (the language of Figs. 6/7/14).
/// See grammars/*.fg for complete examples.
Result<Grammar> ParseGrammar(std::string_view text);

}  // namespace dls::fg

#endif  // DLS_FG_GRAMMAR_H_
