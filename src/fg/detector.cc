#include "fg/detector.h"

namespace dls::fg {

std::optional<DetectorVersion> DetectorRegistry::Register(
    std::string_view name, DetectorFn fn, DetectorVersion version) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    DetectorVersion old = it->second.version;
    it->second.fn = std::move(fn);
    it->second.version = version;
    return old;
  }
  Entry entry;
  entry.fn = std::move(fn);
  entry.version = version;
  entries_.emplace(std::string(name), std::move(entry));
  return std::nullopt;
}

void DetectorRegistry::RegisterInit(std::string_view name, HookFn fn) {
  entries_[std::string(name)].init = std::move(fn);
}
void DetectorRegistry::RegisterFinal(std::string_view name, HookFn fn) {
  entries_[std::string(name)].final = std::move(fn);
}
void DetectorRegistry::RegisterBegin(std::string_view name, HookFn fn) {
  entries_[std::string(name)].begin = std::move(fn);
}
void DetectorRegistry::RegisterEnd(std::string_view name, HookFn fn) {
  entries_[std::string(name)].end = std::move(fn);
}

bool DetectorRegistry::Has(std::string_view name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.fn != nullptr;
}

Result<DetectorVersion> DetectorRegistry::VersionOf(
    std::string_view name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("detector '" + std::string(name) + "'");
  }
  return it->second.version;
}

Status DetectorRegistry::Invoke(std::string_view name,
                                const DetectorContext& context,
                                std::vector<Token>* out) {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.fn == nullptr) {
    return Status::NotFound("no implementation for detector '" +
                            std::string(name) + "'");
  }
  ++it->second.calls;
  return it->second.fn(context, out);
}

namespace {
Status InvokeHook(const HookFn& hook, const DetectorContext& context) {
  if (!hook) return Status::Ok();
  return hook(context);
}
}  // namespace

Status DetectorRegistry::InvokeInit(std::string_view name,
                                    const DetectorContext& context) {
  auto it = entries_.find(name);
  return it == entries_.end() ? Status::Ok()
                              : InvokeHook(it->second.init, context);
}
Status DetectorRegistry::InvokeFinal(std::string_view name,
                                     const DetectorContext& context) {
  auto it = entries_.find(name);
  return it == entries_.end() ? Status::Ok()
                              : InvokeHook(it->second.final, context);
}
Status DetectorRegistry::InvokeBegin(std::string_view name,
                                     const DetectorContext& context) {
  auto it = entries_.find(name);
  return it == entries_.end() ? Status::Ok()
                              : InvokeHook(it->second.begin, context);
}
Status DetectorRegistry::InvokeEnd(std::string_view name,
                                   const DetectorContext& context) {
  auto it = entries_.find(name);
  return it == entries_.end() ? Status::Ok()
                              : InvokeHook(it->second.end, context);
}

bool DetectorRegistry::HasInit(std::string_view name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.init != nullptr;
}
bool DetectorRegistry::HasFinal(std::string_view name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.final != nullptr;
}
bool DetectorRegistry::HasBegin(std::string_view name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.begin != nullptr;
}
bool DetectorRegistry::HasEnd(std::string_view name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.end != nullptr;
}

size_t DetectorRegistry::CallCount(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.calls;
}

size_t DetectorRegistry::TotalCallCount() const {
  size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry.calls;
  return total;
}

void DetectorRegistry::ResetCallCounts() {
  for (auto& [name, entry] : entries_) entry.calls = 0;
}

}  // namespace dls::fg
