#ifndef DLS_FG_DETECTOR_H_
#define DLS_FG_DETECTOR_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fg/parse_tree.h"
#include "fg/token.h"

namespace dls::fg {

/// Everything a blackbox detector implementation may look at: its
/// resolved input values (one Token per declared input path, in
/// declaration order) and read access to the parse tree built so far.
struct DetectorContext {
  std::vector<Token> inputs;
  const ParseTree* tree = nullptr;
  PtNodeId node = kInvalidPtNode;
  /// Opaque environment pointer supplied to the FDE (e.g. the
  /// VirtualWeb or the video store); detectors downcast it.
  void* env = nullptr;
};

/// A blackbox detector implementation. On success it appends its
/// output tokens (in production order) to `out`; a non-OK status means
/// the detector rejects the object and the enclosing rule fails.
using DetectorFn =
    std::function<Status(const DetectorContext&, std::vector<Token>* out)>;

/// Lifecycle hook (init/final/begin/end). Failures of init abort the
/// parse; begin/end failures fail the enclosing symbol.
using HookFn = std::function<Status(const DetectorContext&)>;

/// Registry binding detector symbols to implementations and versions.
///
/// External detectors (xml-rpc:: / corba:: / system:: in the grammar)
/// register exactly like linked ones; the FDE routes their calls
/// through a simulated RPC boundary that serialises arguments and can
/// inject failures (see FdeOptions::rpc_failure_every).
class DetectorRegistry {
 public:
  DetectorRegistry() = default;

  /// Registers (or replaces) an implementation. Returns the previous
  /// version if the detector existed.
  std::optional<DetectorVersion> Register(std::string_view name, DetectorFn fn,
                                          DetectorVersion version = {});

  void RegisterInit(std::string_view name, HookFn fn);
  void RegisterFinal(std::string_view name, HookFn fn);
  void RegisterBegin(std::string_view name, HookFn fn);
  void RegisterEnd(std::string_view name, HookFn fn);

  bool Has(std::string_view name) const;
  Result<DetectorVersion> VersionOf(std::string_view name) const;

  /// Invokes the detector, counting the call.
  Status Invoke(std::string_view name, const DetectorContext& context,
                std::vector<Token>* out);

  Status InvokeInit(std::string_view name, const DetectorContext& context);
  Status InvokeFinal(std::string_view name, const DetectorContext& context);
  Status InvokeBegin(std::string_view name, const DetectorContext& context);
  Status InvokeEnd(std::string_view name, const DetectorContext& context);
  bool HasInit(std::string_view name) const;
  bool HasFinal(std::string_view name) const;
  bool HasBegin(std::string_view name) const;
  bool HasEnd(std::string_view name) const;

  /// Total Invoke() count per detector since construction or
  /// ResetCallCounts() — the work metric of experiment E5.
  size_t CallCount(std::string_view name) const;
  size_t TotalCallCount() const;
  void ResetCallCounts();

 private:
  struct Entry {
    DetectorFn fn;
    DetectorVersion version;
    HookFn init, final, begin, end;
    size_t calls = 0;
  };
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace dls::fg

#endif  // DLS_FG_DETECTOR_H_
