#include "fg/fds.h"

#include <set>

namespace dls::fg {

std::vector<std::string> ParseTreeStore::Keys() const {
  std::vector<std::string> out;
  out.reserve(trees_.size());
  for (const auto& [key, tree] : trees_) out.push_back(key);
  return out;
}

Fds::Fds(const Grammar* grammar, DetectorRegistry* registry,
         ParseTreeStore* store, Fde* fde)
    : grammar_(grammar),
      registry_(registry),
      store_(store),
      fde_(fde),
      graph_(DependencyGraph::Build(*grammar)) {}

void Fds::Schedule(FdsPriority priority, const std::string& key,
                   const std::string& detector) {
  queue_.push(FdsTask{priority, key, detector, next_seq_++});
  ++stats_.tasks_scheduled;
}

Result<ChangeClass> Fds::UpdateDetector(std::string_view detector,
                                        DetectorFn fn,
                                        DetectorVersion new_version) {
  DLS_ASSIGN_OR_RETURN(DetectorVersion old_version,
                       registry_->VersionOf(detector));
  registry_->Register(detector, std::move(fn), new_version);
  ChangeClass change = ClassifyChange(old_version, new_version);
  if (change == ChangeClass::kRevision) {
    // Correction revision: stored parse trees stay valid, nothing to do.
    return change;
  }

  FdsPriority priority = change == ChangeClass::kMajor ? FdsPriority::kHigh
                                                       : FdsPriority::kLow;
  std::string name(detector);
  for (const std::string& key : store_->Keys()) {
    ParseTree* tree = store_->Find(key);
    std::vector<PtNodeId> instances = tree->FindAll(name);
    if (instances.empty()) continue;
    if (change == ChangeClass::kMajor) {
      // Major: the stored data below each instance is unusable NOW.
      // Invalidation follows the rule+sibling dependencies downward,
      // which in tree terms is the whole partial parse tree.
      for (PtNodeId node : instances) {
        tree->mutable_node(node).valid = false;
        stats_.nodes_invalidated += 1 + tree->Descendants(node).size();
      }
    }
    Schedule(priority, key, name);
  }
  return change;
}

Status Fds::OnSourceChanged(
    const std::string& key,
    const std::function<bool(const ParseTree&)>& probe,
    std::vector<Token> initial_tokens) {
  ParseTree* tree = store_->Find(key);
  if (tree == nullptr) {
    return Status::NotFound("no stored parse tree for '" + key + "'");
  }
  if (probe(*tree)) return Status::Ok();  // still valid
  // The whole parse tree is regenerated.
  ++stats_.full_reparses;
  Result<ParseTree> reparsed = fde_->Parse(std::move(initial_tokens));
  if (!reparsed.ok()) {
    store_->Erase(key);  // object no longer in L(G)
    return reparsed.status();
  }
  store_->Put(key, std::move(reparsed).value());
  return Status::Ok();
}

Status Fds::RunTask(const FdsTask& task) {
  ParseTree* tree = store_->Find(task.object_key);
  if (tree == nullptr) return Status::Ok();  // object vanished meanwhile

  std::vector<PtNodeId> instances = tree->FindAll(task.detector);
  for (PtNodeId node : instances) {
    std::string before = tree->SubtreeSignature(node);
    Status s = fde_->ReparseDetectorNode(tree, node);
    ++stats_.tasks_run;
    if (!s.ok()) {
      // Step 3 of the paper's procedure: the subtree is invalid; follow
      // the dependencies upward to the first enclosing detector (or the
      // start symbol) and revalidate that instead.
      ++stats_.nodes_invalidated;
      PtNodeId up = tree->node(node).parent;
      while (up != kInvalidPtNode &&
             tree->node(up).kind != PtNode::Kind::kDetector) {
        up = tree->node(up).parent;
      }
      if (up != kInvalidPtNode) {
        Schedule(task.priority, task.object_key, tree->node(up).symbol);
      }
      continue;
    }
    std::string after = tree->SubtreeSignature(node);
    if (after == before) {
      // Step 2: subtree unchanged — parameter dependents keep their
      // validity, nothing cascades.
      ++stats_.subtrees_unchanged;
      continue;
    }
    // The detector's output changed: detectors whose parameters read
    // symbols produced underneath it must be revalidated.
    std::set<std::string> produced;
    produced.insert(task.detector);
    for (PtNodeId d : tree->Descendants(node)) {
      produced.insert(tree->node(d).symbol);
    }
    std::set<std::string> dependents;
    for (const std::string& symbol : produced) {
      for (const std::string& dependent :
           graph_.ParameterDependents(symbol)) {
        if (dependent != task.detector) dependents.insert(dependent);
      }
    }
    for (const std::string& dependent : dependents) {
      if (!tree->FindAll(dependent).empty()) {
        ++stats_.cascades;
        Schedule(task.priority, task.object_key, dependent);
      }
    }
  }
  return Status::Ok();
}

Status Fds::RunPending() {
  // Deduplicate (key, detector) pairs that were scheduled repeatedly
  // before being run.
  std::set<std::pair<std::string, std::string>> done;
  while (!queue_.empty()) {
    FdsTask task = queue_.top();
    queue_.pop();
    if (!done.insert({task.object_key, task.detector}).second) continue;
    DLS_RETURN_IF_ERROR(RunTask(task));
  }
  return Status::Ok();
}

}  // namespace dls::fg
