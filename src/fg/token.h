#ifndef DLS_FG_TOKEN_H_
#define DLS_FG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dls::fg {

/// Abstract data types of feature-grammar atoms (`%atom` declarations).
/// `url` is the new ADT the paper's Fig. 6 introduces; the physical
/// level treats it as a string with URL semantics.
enum class AtomType : uint8_t {
  kStr,
  kInt,
  kFlt,
  kBit,
  kUrl,
};

/// Returns the declaration keyword ("str", "int", ...).
const char* AtomTypeName(AtomType type);

/// Parses a declaration keyword. Returns false on unknown names.
bool ParseAtomType(std::string_view name, AtomType* out);

/// A token on the FDE's token stack: a typed value produced by a
/// detector (or provided in the initial token set) and consumed by the
/// parser when it matches a terminal.
class Token {
 public:
  Token() : type_(AtomType::kStr) {}

  static Token Str(std::string v) { return Token(AtomType::kStr, std::move(v)); }
  static Token Url(std::string v) { return Token(AtomType::kUrl, std::move(v)); }
  static Token Int(int64_t v);
  static Token Flt(double v);
  static Token Bit(bool v);

  AtomType type() const { return type_; }
  /// Canonical text of the value (what the parse tree stores).
  const std::string& text() const { return text_; }

  int64_t AsInt() const { return int_; }
  double AsFlt() const { return flt_; }
  bool AsBit() const { return bit_; }

  /// True if this token can bind a terminal of the given atom type.
  /// Ints widen to flt; str and url are interchangeable textually.
  bool Matches(AtomType terminal_type) const;

 private:
  Token(AtomType type, std::string text) : type_(type), text_(std::move(text)) {}

  AtomType type_;
  std::string text_;
  int64_t int_ = 0;
  double flt_ = 0;
  bool bit_ = false;
};

}  // namespace dls::fg

#endif  // DLS_FG_TOKEN_H_
