#include "fg/token.h"

#include "common/strings.h"

namespace dls::fg {

const char* AtomTypeName(AtomType type) {
  switch (type) {
    case AtomType::kStr:
      return "str";
    case AtomType::kInt:
      return "int";
    case AtomType::kFlt:
      return "flt";
    case AtomType::kBit:
      return "bit";
    case AtomType::kUrl:
      return "url";
  }
  return "?";
}

bool ParseAtomType(std::string_view name, AtomType* out) {
  if (name == "str") {
    *out = AtomType::kStr;
  } else if (name == "int") {
    *out = AtomType::kInt;
  } else if (name == "flt") {
    *out = AtomType::kFlt;
  } else if (name == "bit") {
    *out = AtomType::kBit;
  } else if (name == "url") {
    *out = AtomType::kUrl;
  } else {
    return false;
  }
  return true;
}

Token Token::Int(int64_t v) {
  Token t(AtomType::kInt, StrFormat("%lld", static_cast<long long>(v)));
  t.int_ = v;
  t.flt_ = static_cast<double>(v);
  return t;
}

Token Token::Flt(double v) {
  Token t(AtomType::kFlt, StrFormat("%g", v));
  t.flt_ = v;
  return t;
}

Token Token::Bit(bool v) {
  Token t(AtomType::kBit, v ? "true" : "false");
  t.bit_ = v;
  return t;
}

bool Token::Matches(AtomType terminal_type) const {
  if (type_ == terminal_type) return true;
  // int widens to flt.
  if (type_ == AtomType::kInt && terminal_type == AtomType::kFlt) return true;
  // str and url are textually interchangeable.
  if ((type_ == AtomType::kStr && terminal_type == AtomType::kUrl) ||
      (type_ == AtomType::kUrl && terminal_type == AtomType::kStr)) {
    return true;
  }
  return false;
}

}  // namespace dls::fg
