#ifndef DLS_FG_FDE_H_
#define DLS_FG_FDE_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "fg/detector.h"
#include "fg/grammar.h"
#include "fg/parse_tree.h"
#include "fg/token_stack.h"

namespace dls::fg {

/// FDE configuration.
struct FdeOptions {
  /// Use the shared-suffix (Tomita-style) token stack; false selects
  /// the naive copying stack (ablation E6).
  bool share_suffixes = true;
  /// Hard cap on parse steps, guarding against pathological grammars.
  size_t max_steps = 50'000'000;
  /// Opaque environment handed to every detector invocation.
  void* env = nullptr;
  /// If > 0, every Nth external (xml-rpc/corba/system) call fails with
  /// a simulated transport error — exercises the error path the real
  /// system gets from daemon crashes.
  size_t rpc_failure_every = 0;
};

/// Work counters for one or more Parse() runs.
struct FdeStats {
  size_t steps = 0;            ///< symbols attempted
  size_t backtracks = 0;       ///< failed alternatives / repetitions
  size_t tokens_pushed = 0;    ///< tokens produced by detectors
  size_t rpc_calls = 0;        ///< external detector invocations
  size_t rpc_bytes = 0;        ///< serialised argument/result traffic
  TokenStackStats stack;
};

/// A reference (&symbol) encountered during a parse: the link structure
/// of Fig. 14, through which the parse tree becomes a graph.
struct ParsedReference {
  PtNodeId node;
  std::string symbol;  ///< target start symbol (e.g. MMO, keyword)
  std::string key;     ///< identifying token (e.g. the URL)
};

/// The Feature Detector Engine: a recursive-descent parser with
/// backtracking over detector-produced token streams.
///
/// The FDE proves the start symbol by walking the production rules
/// top-down and left-to-right, executing detector symbols as it meets
/// them; their output tokens are pushed on the (versioned) token stack
/// and consumed by the terminal symbols of the detector's own rules.
class Fde {
 public:
  Fde(const Grammar* grammar, DetectorRegistry* registry,
      FdeOptions options = FdeOptions());

  /// Parses one multimedia object. `initial_tokens` is the minimum
  /// token set of the %start declaration, in declaration order.
  Result<ParseTree> Parse(std::vector<Token> initial_tokens);

  /// Incremental parse for the FDS: re-executes the detector at `node`
  /// in an existing tree and re-parses its subtree in place. On failure
  /// the node is marked invalid and kDetectorFailure returned.
  Status ReparseDetectorNode(ParseTree* tree, PtNodeId node);

  /// References collected by the most recent Parse().
  const std::vector<ParsedReference>& last_references() const {
    return references_;
  }

  const FdeStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FdeStats(); }

 private:
  bool ParseSymbol(ParseTree* tree, PtNodeId parent, const std::string& name,
                   TokenStack* stack);
  bool ParseAlternatives(ParseTree* tree, PtNodeId self,
                         const std::string& lhs, TokenStack* stack);
  bool ParseRuleBody(ParseTree* tree, PtNodeId self, const Rule& rule,
                     TokenStack* stack);
  bool ParseElementOnce(ParseTree* tree, PtNodeId parent,
                        const RhsElement& element, TokenStack* stack);
  bool ParseElement(ParseTree* tree, PtNodeId parent,
                    const RhsElement& element, TokenStack* stack);
  bool ExecuteDetector(ParseTree* tree, PtNodeId node,
                       const DetectorDecl& decl, TokenStack* stack);
  bool EvalPredicate(const ParseTree& tree, PtNodeId context,
                     const PredExpr& expr);

  const Grammar* grammar_;
  DetectorRegistry* registry_;
  FdeOptions options_;
  FdeStats stats_;
  std::vector<ParsedReference> references_;
  std::set<std::string> inited_;
  bool budget_exceeded_ = false;
};

}  // namespace dls::fg

#endif  // DLS_FG_FDE_H_
