#ifndef DLS_FG_TOKEN_STACK_H_
#define DLS_FG_TOKEN_STACK_H_

#include <cassert>
#include <memory>
#include <vector>

#include "fg/token.h"

namespace dls::fg {

/// Resource counters for the two stack strategies (experiment E6).
struct TokenStackStats {
  size_t cells_allocated = 0;   ///< shared mode: cons cells created
  size_t tokens_copied = 0;     ///< copy mode: tokens duplicated by Save()
  size_t snapshots = 0;
};

/// The FDE token stack with snapshot/restore for backtracking.
///
/// Two strategies, selected at construction:
///  - shared=true: a persistent cons-list. Saving is O(1) — versions
///    share suffixes, the paper's Tomita-style stack reuse.
///  - shared=false: a plain vector; every Save() copies the whole
///    stack — the naive baseline whose "high burden on both memory
///    consumption and CPU time" motivates the shared design.
class TokenStack {
 public:
  /// Opaque snapshot handle valid for the stack that produced it.
  struct Snapshot {
    std::shared_ptr<void> shared;  // shared mode: the top cell
    size_t shared_size = 0;
    std::vector<Token> copy;       // copy mode: full contents
    bool is_shared = false;
  };

  explicit TokenStack(bool shared, TokenStackStats* stats = nullptr)
      : shared_(shared), stats_(stats) {}

  ~TokenStack() { ReleaseChain(std::move(top_)); }

  TokenStack(const TokenStack&) = delete;
  TokenStack& operator=(const TokenStack&) = delete;

  bool empty() const { return shared_ ? top_ == nullptr : vec_.empty(); }

  /// Number of tokens currently on the stack (O(1) in both modes).
  size_t size() const { return shared_ ? shared_size_ : vec_.size(); }

  const Token& Top() const {
    assert(!empty());
    return shared_ ? top_->token : vec_.back();
  }

  void Push(Token token) {
    if (shared_) {
      top_ = std::make_shared<Cell>(Cell{std::move(token), top_});
      ++shared_size_;
      if (stats_ != nullptr) ++stats_->cells_allocated;
    } else {
      vec_.push_back(std::move(token));
    }
  }

  void Pop() {
    assert(!empty());
    if (shared_) {
      // `old` keeps a reference to the rest of the chain via top_, so
      // destroying it cannot recurse.
      std::shared_ptr<Cell> old = std::move(top_);
      top_ = old->next;
      --shared_size_;
    } else {
      vec_.pop_back();
    }
  }

  Snapshot Save() const {
    if (stats_ != nullptr) ++stats_->snapshots;
    Snapshot snap;
    snap.is_shared = shared_;
    if (shared_) {
      snap.shared = top_;
      snap.shared_size = shared_size_;
    } else {
      snap.copy = vec_;
      if (stats_ != nullptr) stats_->tokens_copied += vec_.size();
    }
    return snap;
  }

  void Restore(const Snapshot& snap) {
    assert(snap.is_shared == shared_);
    if (shared_) {
      std::shared_ptr<Cell> target =
          std::static_pointer_cast<Cell>(snap.shared);
      if (target != top_) {
        ReleaseChain(std::move(top_));
        top_ = std::move(target);
      }
      shared_size_ = snap.shared_size;
    } else {
      vec_ = snap.copy;
    }
  }

 private:
  struct Cell {
    Token token;
    std::shared_ptr<Cell> next;
  };

  /// Iteratively unlinks a uniquely-owned prefix so that dropping a
  /// long chain cannot overflow the C++ call stack through recursive
  /// shared_ptr destruction.
  static void ReleaseChain(std::shared_ptr<Cell> cell) {
    while (cell != nullptr && cell.use_count() == 1) {
      std::shared_ptr<Cell> next = std::move(cell->next);
      cell = std::move(next);
    }
  }

  bool shared_;
  TokenStackStats* stats_;
  std::shared_ptr<Cell> top_;
  size_t shared_size_ = 0;
  std::vector<Token> vec_;
};

}  // namespace dls::fg

#endif  // DLS_FG_TOKEN_STACK_H_
