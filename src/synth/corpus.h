#ifndef DLS_SYNTH_CORPUS_H_
#define DLS_SYNTH_CORPUS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dls::synth {

/// Shape of a deterministic synthetic text corpus. Everything derives
/// from `seed`, so CI regenerates the corpus from five numbers instead
/// of storing a multi-hundred-megabyte artifact — the million-doc
/// scale bench_segment runs at exists only transiently.
struct CorpusSpec {
  uint64_t seed = 42;
  size_t documents = 1'000'000;
  size_t words_per_doc = 40;   ///< exact count, not a mean
  size_t vocabulary = 2'000;   ///< distinct words, Zipf-ranked
  double zipf_theta = 1.1;     ///< natural-language frequency skew
};

/// A deterministic synthetic corpus, addressable by document id.
///
/// Each document's words are drawn from a per-document RNG seeded by
/// (spec.seed, doc), so document `d` has identical contents whether the
/// corpus is streamed front to back, sharded across builders, or a
/// single document is regenerated in isolation — the property that
/// lets a test re-derive exactly what a million-doc build indexed.
///
/// Doubles as the open-loop load generator of bench_serve: Query()
/// draws deterministic query term sets from the same vocabulary with
/// an id-seeded RNG, so an offered-load schedule is reproducible too.
class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(const CorpusSpec& spec);

  const CorpusSpec& spec() const { return spec_; }

  /// Canonical URL of document `doc`.
  std::string Url(size_t doc) const;

  /// Body of document `doc`: spec.words_per_doc space-separated words.
  std::string Body(size_t doc) const;

  /// Streams documents [begin, end) through `fn(doc, url, body)` —
  /// the indexing loop of bench_segment without materialising
  /// hundreds of megabytes of text.
  void ForEach(size_t begin, size_t end,
               const std::function<void(size_t, const std::string&,
                                        const std::string&)>& fn) const;

  /// Deterministic query `id`: `terms` distinct words, Zipf-drawn from
  /// the corpus vocabulary (so query skew matches document skew).
  std::vector<std::string> Query(uint64_t id, size_t terms) const;

  const std::string& word(size_t rank) const { return words_[rank]; }

 private:
  Rng DocRng(size_t doc) const;

  CorpusSpec spec_;
  std::vector<std::string> words_;  ///< rank-ordered vocabulary
  ZipfSampler sampler_;
};

}  // namespace dls::synth

#endif  // DLS_SYNTH_CORPUS_H_
