#include "synth/corpus.h"

#include <cassert>

#include "common/strings.h"

namespace dls::synth {

SyntheticCorpus::SyntheticCorpus(const CorpusSpec& spec)
    : spec_(spec), sampler_(spec.vocabulary, spec.zipf_theta) {
  assert(spec.vocabulary > 0);
  words_.reserve(spec_.vocabulary);
  for (size_t r = 0; r < spec_.vocabulary; ++r) {
    // Stable, stem/stop-neutral tokens: "tNNNNN" lower-cases to itself
    // and survives the Porter stemmer unchanged, so the indexed
    // vocabulary equals the generated one under any normalisation.
    words_.push_back(StrFormat("t%05zu", r));
  }
}

Rng SyntheticCorpus::DocRng(size_t doc) const {
  // Seed-mixing keeps per-document streams independent of iteration
  // order (splitmix inside Rng decorrelates nearby seeds).
  return Rng(spec_.seed * 0x9e3779b97f4a7c15ULL + doc);
}

std::string SyntheticCorpus::Url(size_t doc) const {
  return StrFormat("synth://corpus/%llu/%zu",
                   static_cast<unsigned long long>(spec_.seed), doc);
}

std::string SyntheticCorpus::Body(size_t doc) const {
  Rng rng = DocRng(doc);
  std::string body;
  body.reserve(spec_.words_per_doc * 8);
  for (size_t w = 0; w < spec_.words_per_doc; ++w) {
    if (w > 0) body.push_back(' ');
    body += words_[sampler_.Sample(&rng)];
  }
  return body;
}

void SyntheticCorpus::ForEach(
    size_t begin, size_t end,
    const std::function<void(size_t, const std::string&, const std::string&)>&
        fn) const {
  for (size_t doc = begin; doc < end; ++doc) {
    fn(doc, Url(doc), Body(doc));
  }
}

std::vector<std::string> SyntheticCorpus::Query(uint64_t id,
                                                size_t terms) const {
  // A distinct seed stream from the documents' (offset by a constant),
  // so query ids never alias document contents.
  Rng rng(spec_.seed * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL + id);
  std::vector<std::string> query;
  query.reserve(terms);
  while (query.size() < terms && query.size() < spec_.vocabulary) {
    const std::string& word = words_[sampler_.Sample(&rng)];
    bool seen = false;
    for (const std::string& q : query) seen = seen || q == word;
    if (!seen) query.push_back(word);
  }
  return query;
}

}  // namespace dls::synth
