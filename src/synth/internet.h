#ifndef DLS_SYNTH_INTERNET_H_
#define DLS_SYNTH_INTERNET_H_

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"

namespace dls::synth {

/// A synthetic HTML page for the Internet-scale grammar of Fig. 14:
/// title, keyword list (its body after stopping/stemming) and anchors,
/// some of which embed images.
struct WebPage {
  struct Anchor {
    std::string href;
    bool embedded = false;  ///< <img> embed vs plain link
  };
  std::string url;
  std::string title;
  std::vector<std::string> keywords;
  std::vector<Anchor> anchors;
};

struct InternetOptions {
  uint64_t seed = 7;
  int num_pages = 30;
  int num_images = 20;
  size_t vocabulary = 800;
  size_t keywords_per_page = 40;
  int links_per_page = 3;
  /// Fraction of pages on the "champion" topic (they contain the
  /// topical words and tend to embed portraits).
  double champion_fraction = 0.3;
  /// Fraction of images that are portraits (vs graphics).
  double portrait_fraction = 0.5;
};

/// A synthetic unlimited-domain web: pages plus image resources with
/// ground-truth classification ("portrait" / "graphic").
struct InternetSite {
  std::vector<WebPage> pages;
  std::map<std::string, std::string> images;  ///< url -> kind
  /// Ground truth for the Fig. 14 demo query: portrait images embedded
  /// in champion-topic pages.
  std::vector<std::string> champion_portraits;
};

InternetSite GenerateInternet(const InternetOptions& options);

}  // namespace dls::synth

#endif  // DLS_SYNTH_INTERNET_H_
