#include "synth/site.h"

#include "common/strings.h"
#include "synth/text.h"
#include "webspace/docgen.h"

namespace dls::synth {

const char kAustralianOpenSchema[] = R"schema(
webspace AustralianOpen;

class Player {
  name: varchar(50);
  gender: varchar(10);
  country: varchar(30);
  plays: varchar(10);
  history: Hypertext;
  picture: Image;
}

class Profile {
  document: Uri;
  video: Video;
  interview: Audio;
}

class Article {
  name: varchar(100);
  body: Hypertext;
}

association Is_covered_in(Player, Profile);
association About(Article, Player);
)schema";

namespace {

using webspace::AttrValue;
using webspace::DocumentView;
using webspace::WebObject;

std::string PlayerHistory(const TextModel& text, Rng* rng,
                          const SiteOptions& options, const std::string& name,
                          bool winner) {
  std::string history = name + " turned professional and ";
  history += text.MakeBody(rng, options.history_words,
                           {"tennis", "match", "tournament", "season"});
  if (winner) {
    int year = 1991 + static_cast<int>(rng->Uniform(10));
    history += StrFormat(
        " Winner of the Australian Open %d after a straight sets final.",
        year);
  } else {
    history += " Reached the quarter finals twice.";
  }
  return history;
}

cobra::VideoScript MakeMatchVideo(Rng* rng, const SiteOptions& options,
                                  uint64_t video_seed, bool* has_netplay) {
  cobra::VideoScript script;
  script.seed = video_seed;
  script.palette = cobra::CourtPalette::kHard;
  *has_netplay = false;
  for (int s = 0; s < options.video_shots; ++s) {
    cobra::ShotScript shot;
    double roll = rng->NextDouble();
    if (roll < 0.55) {
      shot.type = cobra::ShotClass::kTennis;
      double troll = rng->NextDouble();
      shot.trajectory = troll < 0.5
                            ? cobra::TrajectoryKind::kBaselineRally
                            : troll < 0.85
                                  ? cobra::TrajectoryKind::kApproachNet
                                  : cobra::TrajectoryKind::kServeVolley;
      if (shot.trajectory != cobra::TrajectoryKind::kBaselineRally) {
        *has_netplay = true;
      }
    } else if (roll < 0.75) {
      shot.type = cobra::ShotClass::kCloseup;
    } else if (roll < 0.9) {
      shot.type = cobra::ShotClass::kAudience;
    } else {
      shot.type = cobra::ShotClass::kOther;
    }
    shot.num_frames = options.video_frames_per_shot +
                      static_cast<int>(rng->Uniform(
                          options.video_frames_per_shot / 3 + 1));
    script.shots.push_back(shot);
  }
  return script;
}

}  // namespace

Result<Site> GenerateSite(const SiteOptions& options) {
  Site site;
  {
    Result<webspace::Schema> schema = webspace::ParseSchema(
        kAustralianOpenSchema);
    if (!schema.ok()) return schema.status();
    site.schema = std::move(schema).value();
  }

  Rng rng(options.seed);
  TextModel text(options.seed ^ 0xbeef, options.vocabulary);

  const auto& female_first = NamePools::FemaleFirst();
  const auto& male_first = NamePools::MaleFirst();
  const auto& last_names = NamePools::Last();
  const auto& countries = NamePools::Countries();

  // ---- Players, profiles and their documents. ----
  for (int p = 0; p < options.num_players; ++p) {
    PlayerTruth truth;
    truth.id = StrFormat("player-%d", p);
    truth.profile_id = StrFormat("profile-%d", p);
    bool female = rng.NextDouble() < options.female_fraction;
    truth.gender = female ? "female" : "male";
    const auto& first = female ? female_first : male_first;
    truth.name = first[rng.Uniform(first.size())] + " " +
                 last_names[p % last_names.size()];
    truth.country = countries[rng.Uniform(countries.size())];
    truth.plays = rng.NextDouble() < options.lefty_fraction ? "left" : "right";
    truth.past_winner = rng.NextDouble() < options.winner_fraction;

    std::string history =
        PlayerHistory(text, &rng, options, truth.name, truth.past_winner);
    std::string picture_url = StrFormat("http://ao.example/img/p%d.jpg", p);
    site.images[picture_url] = "portrait";

    bool has_video = options.video_every > 0 && p % options.video_every == 0;
    bool has_audio = options.audio_every > 0 && p % options.audio_every == 0;
    bool netplay = false;
    if (has_video) {
      truth.video_url = StrFormat("http://ao.example/video/match%d.mpg", p);
      site.videos[truth.video_url] =
          MakeMatchVideo(&rng, options, options.seed * 977 + p, &netplay);
      truth.video_has_netplay = netplay;
    }
    if (has_audio) {
      truth.audio_url = StrFormat("http://ao.example/audio/clip%d.wav", p);
      truth.audio_is_interview =
          rng.NextDouble() < options.interview_fraction;
      cobra::AudioScript clip;
      clip.seed = options.seed * 1201 + p;
      if (truth.audio_is_interview) {
        // Interviews: question/answer speech with short pauses and an
        // intro jingle.
        clip.segments = {
            cobra::AudioSegmentScript{cobra::AudioClass::kMusic, 1.0},
            cobra::AudioSegmentScript{cobra::AudioClass::kSpeech, 4.0},
            cobra::AudioSegmentScript{cobra::AudioClass::kSilence, 0.5},
            cobra::AudioSegmentScript{cobra::AudioClass::kSpeech, 3.0},
        };
      } else {
        clip.segments = {
            cobra::AudioSegmentScript{cobra::AudioClass::kMusic, 6.0},
        };
      }
      site.audios[truth.audio_url] = clip;
    }

    // Player page: the Player object plus its Is_covered_in link.
    DocumentView player_doc;
    player_doc.document_url =
        StrFormat("http://ao.example/players/p%d.xml", p);
    WebObject player;
    player.cls = "Player";
    player.id = truth.id;
    player.attributes = {
        AttrValue{"name", truth.name, ""},
        AttrValue{"gender", truth.gender, ""},
        AttrValue{"country", truth.country, ""},
        AttrValue{"plays", truth.plays, ""},
        AttrValue{"history", history,
                  StrFormat("http://ao.example/bio/p%d.html", p)},
        AttrValue{"picture", "", picture_url},
    };
    player_doc.objects.push_back(std::move(player));
    player_doc.associations.push_back(
        webspace::AssociationInstance{"Is_covered_in", truth.id,
                                      truth.profile_id});
    {
      Result<xml::Document> doc = webspace::GenerateDocument(site.schema,
                                                             player_doc);
      if (!doc.ok()) return doc.status();
      site.documents.emplace_back(player_doc.document_url,
                                  std::move(doc).value());
    }

    // Profile page.
    DocumentView profile_doc;
    profile_doc.document_url =
        StrFormat("http://ao.example/profiles/p%d.xml", p);
    WebObject profile;
    profile.cls = "Profile";
    profile.id = truth.profile_id;
    profile.attributes.push_back(AttrValue{
        "document", StrFormat("http://ao.example/profiles/p%d.xml", p), ""});
    if (has_video) {
      profile.attributes.push_back(AttrValue{"video", "", truth.video_url});
    }
    if (has_audio) {
      profile.attributes.push_back(
          AttrValue{"interview", "", truth.audio_url});
    }
    profile_doc.objects.push_back(std::move(profile));
    {
      Result<xml::Document> doc = webspace::GenerateDocument(site.schema,
                                                             profile_doc);
      if (!doc.ok()) return doc.status();
      site.documents.emplace_back(profile_doc.document_url,
                                  std::move(doc).value());
    }

    site.players.push_back(std::move(truth));
  }

  // ---- Articles. ----
  for (int a = 0; a < options.num_articles; ++a) {
    const PlayerTruth& subject =
        site.players[rng.Uniform(site.players.size())];
    DocumentView article_doc;
    article_doc.document_url =
        StrFormat("http://ao.example/news/a%d.xml", a);
    WebObject article;
    article.cls = "Article";
    article.id = StrFormat("article-%d", a);
    std::string title = subject.name + " " +
                        (rng.Bernoulli(0.5) ? "advances" : "interviewed");
    std::string body = text.MakeBody(
        &rng, options.article_words,
        {"champion", "tennis", "net", "serve", "title", subject.name});
    article.attributes = {
        AttrValue{"name", title, ""},
        AttrValue{"body", body,
                  StrFormat("http://ao.example/news/a%d.html", a)},
    };
    article_doc.objects.push_back(std::move(article));
    article_doc.associations.push_back(
        webspace::AssociationInstance{"About", StrFormat("article-%d", a),
                                      subject.id});
    site.article_ids.push_back(StrFormat("article-%d", a));
    Result<xml::Document> doc = webspace::GenerateDocument(site.schema,
                                                           article_doc);
    if (!doc.ok()) return doc.status();
    site.documents.emplace_back(article_doc.document_url,
                                std::move(doc).value());
  }

  return site;
}

}  // namespace dls::synth
