#include "synth/internet.h"

#include <algorithm>

#include "common/strings.h"
#include "synth/text.h"

namespace dls::synth {

InternetSite GenerateInternet(const InternetOptions& options) {
  InternetSite site;
  Rng rng(options.seed);
  TextModel text(options.seed ^ 0xcafe, options.vocabulary);

  // Image resources first so pages can link to them.
  std::vector<std::string> portrait_urls;
  std::vector<std::string> graphic_urls;
  for (int i = 0; i < options.num_images; ++i) {
    std::string url = StrFormat("http://web.example/img/%d.jpg", i);
    bool portrait = rng.NextDouble() < options.portrait_fraction;
    site.images[url] = portrait ? "portrait" : "graphic";
    (portrait ? portrait_urls : graphic_urls).push_back(url);
  }

  const std::vector<std::string> champion_words = {
      "champion", "winner", "title", "trophy", "grand", "slam"};

  for (int p = 0; p < options.num_pages; ++p) {
    WebPage page;
    page.url = StrFormat("http://web.example/page/%d.html", p);
    bool champion_topic = rng.NextDouble() < options.champion_fraction;
    page.title = champion_topic ? "Hall of champions " + std::to_string(p)
                                : "Daily notes " + std::to_string(p);
    for (size_t k = 0; k < options.keywords_per_page; ++k) {
      if (champion_topic && rng.Bernoulli(0.15)) {
        page.keywords.push_back(
            champion_words[rng.Uniform(champion_words.size())]);
      } else {
        page.keywords.push_back(text.Sample(&rng));
      }
    }
    // Anchors: links to other pages plus embedded images. Champion
    // pages prefer portraits; other pages prefer graphics, with noise.
    for (int l = 0; l < options.links_per_page; ++l) {
      WebPage::Anchor anchor;
      double roll = rng.NextDouble();
      if (roll < 0.5 && options.num_pages > 1) {
        anchor.href = StrFormat("http://web.example/page/%d.html",
                                static_cast<int>(rng.Uniform(
                                    static_cast<uint64_t>(options.num_pages))));
        anchor.embedded = false;
      } else {
        const auto& preferred =
            (champion_topic ? portrait_urls : graphic_urls);
        const auto& fallback =
            (champion_topic ? graphic_urls : portrait_urls);
        const auto& pool =
            (!preferred.empty() && (fallback.empty() || rng.Bernoulli(0.8)))
                ? preferred
                : fallback;
        if (pool.empty()) continue;
        anchor.href = pool[rng.Uniform(pool.size())];
        anchor.embedded = true;
      }
      page.anchors.push_back(std::move(anchor));
    }

    bool has_champion_keyword =
        std::any_of(page.keywords.begin(), page.keywords.end(),
                    [&](const std::string& word) {
                      return std::find(champion_words.begin(),
                                       champion_words.end(),
                                       word) != champion_words.end();
                    });
    if (has_champion_keyword) {
      for (const WebPage::Anchor& anchor : page.anchors) {
        if (anchor.embedded && site.images.count(anchor.href) &&
            site.images.at(anchor.href) == "portrait") {
          site.champion_portraits.push_back(anchor.href);
        }
      }
    }
    site.pages.push_back(std::move(page));
  }

  std::sort(site.champion_portraits.begin(), site.champion_portraits.end());
  site.champion_portraits.erase(
      std::unique(site.champion_portraits.begin(),
                  site.champion_portraits.end()),
      site.champion_portraits.end());
  return site;
}

}  // namespace dls::synth
