#ifndef DLS_SYNTH_TEXT_H_
#define DLS_SYNTH_TEXT_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace dls::synth {

/// A deterministic synthetic vocabulary of pronounceable pseudo-words,
/// sampled Zipfian — the term-frequency skew of natural language that
/// the IR fragmentation experiments depend on.
class TextModel {
 public:
  /// `vocabulary` pseudo-words; rank r is drawn ∝ 1/(r+1)^theta.
  TextModel(uint64_t seed, size_t vocabulary, double theta = 1.1);

  const std::string& word(size_t rank) const { return words_[rank]; }
  size_t vocabulary_size() const { return words_.size(); }

  /// Draws one word.
  const std::string& Sample(Rng* rng) const;

  /// Generates `num_words` space-separated words, optionally seeded
  /// with extra topical words mixed in at random positions.
  std::string MakeBody(Rng* rng, size_t num_words,
                       const std::vector<std::string>& sprinkle = {}) const;

 private:
  std::vector<std::string> words_;
  ZipfSampler sampler_;
};

/// Name pools for synthetic players (deterministic; index-addressable).
struct NamePools {
  static const std::vector<std::string>& FemaleFirst();
  static const std::vector<std::string>& MaleFirst();
  static const std::vector<std::string>& Last();
  static const std::vector<std::string>& Countries();
};

}  // namespace dls::synth

#endif  // DLS_SYNTH_TEXT_H_
