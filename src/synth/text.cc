#include "synth/text.h"

namespace dls::synth {
namespace {

constexpr const char* kOnsets[] = {"b",  "br", "c",  "cl", "d",  "dr",
                                   "f",  "fl", "g",  "gr", "h",  "j",
                                   "k",  "l",  "m",  "n",  "p",  "pr",
                                   "r",  "s",  "st", "t",  "tr", "v"};
constexpr const char* kVowels[] = {"a", "e", "i", "o", "u", "ai", "ou", "ea"};
constexpr const char* kCodas[] = {"",  "n", "r", "s",  "t",  "l",
                                  "m", "d", "k", "nd", "st", "rn"};

std::string MakeWord(Rng* rng) {
  std::string word;
  int syllables = 2 + static_cast<int>(rng->Uniform(2));
  for (int s = 0; s < syllables; ++s) {
    word += kOnsets[rng->Uniform(std::size(kOnsets))];
    word += kVowels[rng->Uniform(std::size(kVowels))];
    if (s == syllables - 1) word += kCodas[rng->Uniform(std::size(kCodas))];
  }
  return word;
}

}  // namespace

TextModel::TextModel(uint64_t seed, size_t vocabulary, double theta)
    : sampler_(vocabulary, theta) {
  Rng rng(seed);
  words_.reserve(vocabulary);
  for (size_t i = 0; i < vocabulary; ++i) {
    std::string word = MakeWord(&rng);
    // Keep words unique by suffixing collisions with their rank.
    for (const std::string& existing : words_) {
      if (existing == word) {
        word += std::to_string(i);
        break;
      }
    }
    words_.push_back(std::move(word));
  }
}

const std::string& TextModel::Sample(Rng* rng) const {
  return words_[sampler_.Sample(rng)];
}

std::string TextModel::MakeBody(
    Rng* rng, size_t num_words,
    const std::vector<std::string>& sprinkle) const {
  std::string body;
  for (size_t i = 0; i < num_words; ++i) {
    if (!body.empty()) body += ' ';
    if (!sprinkle.empty() && rng->Bernoulli(0.08)) {
      body += sprinkle[rng->Uniform(sprinkle.size())];
    } else {
      body += Sample(rng);
    }
  }
  return body;
}

const std::vector<std::string>& NamePools::FemaleFirst() {
  static const std::vector<std::string>* kPool = new std::vector<std::string>{
      "Monica",  "Serena", "Venus",   "Steffi",  "Martina", "Lindsay",
      "Jennifer", "Kim",   "Justine", "Amelie",  "Mary",    "Arantxa",
      "Conchita", "Jana",  "Iva",     "Gabriela", "Anke",   "Magdalena",
      "Nathalie", "Chanda"};
  return *kPool;
}

const std::vector<std::string>& NamePools::MaleFirst() {
  static const std::vector<std::string>* kPool = new std::vector<std::string>{
      "Andre",   "Pete",    "Boris",  "Stefan", "Michael", "Jim",
      "Goran",   "Patrick", "Yevgeny", "Marat", "Gustavo", "Lleyton",
      "Thomas",  "Richard", "Cedric", "Magnus", "Tim",     "Greg",
      "Wayne",   "Todd"};
  return *kPool;
}

const std::vector<std::string>& NamePools::Last() {
  static const std::vector<std::string>* kPool = new std::vector<std::string>{
      "Seles",    "Williams",  "Graf",     "Hingis",    "Davenport",
      "Capriati", "Clijsters", "Henin",    "Mauresmo",  "Pierce",
      "Agassi",   "Sampras",   "Becker",   "Edberg",    "Chang",
      "Courier",  "Ivanisevic", "Rafter",  "Kafelnikov", "Safin",
      "Kuerten",  "Hewitt",    "Muster",   "Krajicek",  "Pioline",
      "Norman",   "Henman",    "Rusedski", "Ferreira",  "Martin"};
  return *kPool;
}

const std::vector<std::string>& NamePools::Countries() {
  static const std::vector<std::string>* kPool = new std::vector<std::string>{
      "USA",     "Germany", "Switzerland", "Belgium", "France",
      "Croatia", "Australia", "Russia",    "Brazil",  "Austria",
      "Netherlands", "Sweden", "Britain",  "Spain",   "Argentina",
      "Czechia"};
  return *kPool;
}

}  // namespace dls::synth
