#ifndef DLS_SYNTH_SITE_H_
#define DLS_SYNTH_SITE_H_

#include <map>
#include <string>
#include <vector>

#include "cobra/audio.h"
#include "cobra/synth_video.h"
#include "common/status.h"
#include "webspace/objects.h"
#include "webspace/schema.h"
#include "xml/tree.h"

namespace dls::synth {

/// The webspace schema of the running example (Fig. 3, completed with
/// the player attributes the Fig. 13 query needs).
extern const char kAustralianOpenSchema[];

/// Scale knobs of the synthetic Australian Open website.
struct SiteOptions {
  uint64_t seed = 42;
  int num_players = 24;
  int num_articles = 48;
  size_t vocabulary = 1500;
  size_t article_words = 120;
  size_t history_words = 60;
  /// Every player gets a profile; every `video_every`-th profile gets a
  /// match video (video analysis is the expensive part).
  int video_every = 3;
  /// Every `audio_every`-th profile carries an interview audio clip
  /// (the others with audio get a music jingle). 0 disables audio.
  int audio_every = 2;
  double interview_fraction = 0.7;
  int video_shots = 6;
  int video_frames_per_shot = 12;
  /// Fraction of players whose history marks them as a past champion.
  double winner_fraction = 0.35;
  double female_fraction = 0.5;
  double lefty_fraction = 0.3;
};

/// Ground truth for one generated player (what the integrated query
/// tests assert against).
struct PlayerTruth {
  std::string id;
  std::string name;
  std::string gender;   // "female" / "male"
  std::string country;
  std::string plays;    // "left" / "right"
  bool past_winner = false;
  std::string profile_id;
  std::string video_url;         // empty if the profile has no video
  bool video_has_netplay = false;
  std::string audio_url;         // empty if the profile has no audio
  bool audio_is_interview = false;  ///< speech-dominated clip
};

/// A generated website: materialized-view XML documents plus the raw
/// multimedia resources they reference, with full ground truth.
struct Site {
  webspace::Schema schema;
  /// url -> materialized-view document.
  std::vector<std::pair<std::string, xml::Document>> documents;
  /// url -> video script (raw multimedia data, rendered on demand).
  std::map<std::string, cobra::VideoScript> videos;
  /// url -> audio script.
  std::map<std::string, cobra::AudioScript> audios;
  /// url -> synthetic image kind ("portrait" or "graphic").
  std::map<std::string, std::string> images;
  std::vector<PlayerTruth> players;
  /// ids of generated articles (document per article).
  std::vector<std::string> article_ids;
};

/// Deterministically generates the whole site.
Result<Site> GenerateSite(const SiteOptions& options);

}  // namespace dls::synth

#endif  // DLS_SYNTH_SITE_H_
