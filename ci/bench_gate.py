#!/usr/bin/env python3
"""Bench-regression gate: re-run the kernel, codec and net fan-out
benchmarks and compare against the committed BENCH_*.json baselines.

A metric fails the gate when it regresses by more than --threshold
(default 15%) in the unfavourable direction:

  *_batch_ms           higher is worse   (> baseline * (1 + t) fails)
  *_mpostings_per_s    lower is worse    (< baseline * (1 - t) fails)
  bytes_per_posting_packed  higher is worse
  bytes_per_query      higher is worse (wire traffic of a fan-out)
  compression_ratio    hard floor of 2.0 regardless of baseline
  overload.shed_rate   hard floor of 0.02 — the serving frontend must
                       actually shed at overload, not queue unboundedly
  exact.*              must be true — a bit-identity miss is never a
                       timing artefact (for bench_serve this covers
                       bit_identical, p99_within_deadline,
                       sheds_under_overload and zero_failures)

Serving latency under load is deliberately NOT ratio-gated: bench_serve
emits its timings as `*_us` leaves (not `*_batch_ms`) because queue
waits are load- and machine-dependent; its gated signals are the
exact.* booleans and the shed-rate floor.

Timings are machine-dependent, so the gate compares fresh runs against
baselines produced on the same class of machine; CI runs it as a
separate, non-required job (see .github/workflows/ci.yml) and locally
it sits behind DLS_BENCH_GATE=1 in ci/check.sh.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (bench binary, committed baseline) pairs the gate covers.
BENCHES = [
    ("bench_ir_kernel", "BENCH_ir_kernel.json"),
    ("bench_codec", "BENCH_codec.json"),
    ("bench_net_fanout", "BENCH_net.json"),
    ("bench_serve", "BENCH_serve.json"),
]

COMPRESSION_FLOOR = 2.0
SHED_RATE_FLOOR = 0.02


def walk(tree, prefix=""):
    """Flattens a nested JSON object to {'a.b.c': leaf} pairs."""
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from walk(value, path)
        else:
            yield path, value


def classify(path):
    """Returns 'higher_bad', 'lower_bad', 'exact' or None (ungated)."""
    leaf = path.rsplit(".", 1)[-1]
    if path.startswith("exact."):
        return "exact"
    if leaf.endswith("_batch_ms"):
        return "higher_bad"
    if leaf.endswith("_mpostings_per_s"):
        return "lower_bad"
    if leaf == "bytes_per_posting_packed":
        return "higher_bad"
    if leaf in ("bytes_per_query", "batched_bytes_per_query"):
        return "higher_bad"
    return None


def compare(name, baseline, fresh, threshold):
    """Returns a list of failure strings for one benchmark's JSON."""
    failures = []
    base = dict(walk(baseline))
    new = dict(walk(fresh))
    for path, base_value in sorted(base.items()):
        kind = classify(path)
        if kind is None:
            continue
        if path not in new:
            failures.append(f"{name}: {path} missing from fresh run")
            continue
        new_value = new[path]
        if kind == "exact":
            status = "ok" if new_value is True else "FAIL"
            print(f"  {status:4} {path}: {new_value}")
            if new_value is not True:
                failures.append(f"{name}: {path} is {new_value}, must be true")
            continue
        if base_value <= 0:
            continue
        ratio = new_value / base_value
        if kind == "higher_bad":
            bad = ratio > 1.0 + threshold
            direction = "+"
        else:
            bad = ratio < 1.0 - threshold
            direction = "-"
        delta = (ratio - 1.0) * 100.0
        status = "FAIL" if bad else "ok"
        print(f"  {status:4} {path}: {base_value:.3f} -> {new_value:.3f} "
              f"({delta:+.1f}%)")
        if bad:
            failures.append(
                f"{name}: {path} regressed {delta:+.1f}% "
                f"(limit {direction}{threshold * 100:.0f}%)")
    fresh_flat = dict(walk(fresh))
    ratio = fresh_flat.get("space.compression_ratio")
    if ratio is not None and ratio < COMPRESSION_FLOOR:
        failures.append(
            f"{name}: compression_ratio {ratio:.2f} below the "
            f"{COMPRESSION_FLOOR:.1f}x floor")
    shed_rate = fresh_flat.get("overload.shed_rate")
    if shed_rate is not None and shed_rate < SHED_RATE_FLOOR:
        failures.append(
            f"{name}: overload.shed_rate {shed_rate:.3f} below the "
            f"{SHED_RATE_FLOOR:.2f} floor — shedding did not engage")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory with the bench binaries")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="bench_gate_") as tmp:
        for binary, baseline_name in BENCHES:
            baseline_path = os.path.join(REPO, baseline_name)
            binary_path = os.path.join(REPO, args.build_dir, "bench", binary)
            if not os.path.exists(baseline_path):
                failures.append(f"{binary}: missing baseline {baseline_name}")
                continue
            if not os.path.exists(binary_path):
                failures.append(f"{binary}: binary not built at {binary_path}")
                continue
            fresh_path = os.path.join(tmp, baseline_name)
            print(f"== {binary} ==")
            result = subprocess.run([binary_path, fresh_path],
                                    stdout=subprocess.DEVNULL)
            if result.returncode != 0:
                failures.append(f"{binary}: exited {result.returncode}")
                continue
            with open(baseline_path) as f:
                baseline = json.load(f)
            with open(fresh_path) as f:
                fresh = json.load(f)
            failures.extend(compare(binary, baseline, fresh, args.threshold))

    print()
    if failures:
        print("bench gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench gate passed (threshold {args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
