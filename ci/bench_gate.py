#!/usr/bin/env python3
"""Bench-regression gate: re-run the kernel, codec and net fan-out
benchmarks and compare against the committed BENCH_*.json baselines.

A metric fails the gate when it regresses by more than --threshold
(default 15%) in the unfavourable direction:

  *_batch_ms           higher is worse   (> baseline * (1 + t) fails)
  *_mpostings_per_s    lower is worse    (< baseline * (1 - t) fails)
  bytes_per_posting_packed  higher is worse
  bytes_per_query      higher is worse (wire traffic of a fan-out)
  compression_ratio    hard floor of 2.0 regardless of baseline
  overload.shed_rate   hard floor of 0.02 — the serving frontend must
                       actually shed at overload, not queue unboundedly
  bytes_per_posting_disk    higher is worse, plus a hard 3.0 ceiling —
                       the on-disk segment must stay a compressed
                       format, whatever the baseline says
  cold_start.speedup_load_vs_rebuild  hard floor of 10x — mmap-loading
                       a segment must beat rebuilding from source text
                       by an order of magnitude (the ratio is machine-
                       independent enough to gate; the raw seconds are
                       not, so they stay ungated)
  speedups.prune_vs_block  floor of 1.0 — the auto-planned pruned
                       evaluation must win wall-clock against the
                       exhaustive block scan, not just touch fewer
                       postings. A timing ratio, so a miss is
                       retryable like the other timing gates.
  speedups.filtered_vs_post_filter  floor of 1.0 — the federated
                       mediator's candidate pushdown must answer the
                       all-three-levels mix faster than ranking the
                       whole cluster and intersecting afterwards
                       (bench_federate; exactness rides separately on
                       exact.federated_matches_post_filter). Timing
                       ratio, retryable.
  *.hedge_rate         ceiling of 0.25 — hedges are supposed to be the
                       tail-latency exception; a router hedging a
                       quarter of its shard exchanges is burning
                       replica capacity, whatever the latency looks
                       like. Timing-sensitive, so retryable.
  replica.one_slow.p99_over_healthy_p99  ceiling of 2.0 — with one
                       replica per shard delayed 10x the healthy
                       median, hedging plus health rerouting must hold
                       p99 within twice the healthy p99 (the headline
                       claim of the replica layer). A timing ratio of
                       the same run, so a miss is retryable.
  ingest.p50_merge_over_quiesced  ceiling of 3.0 — the *median* query
                       must not feel a concurrent background merge:
                       readers answer off pinned snapshots and never
                       block on the writer. Timing ratio, retryable.
  ingest.p99_merge_over_quiesced  ceiling of 30.0 — the tail may pay
                       for the merge's CPU burst (on a single core a
                       query can wait out whole merge timeslices), but
                       boundedly. Timing ratio, retryable.
  exact.*              must be true — a bit-identity miss is never a
                       timing artefact (for bench_serve this covers
                       bit_identical, p99_within_deadline,
                       sheds_under_overload and zero_failures; for
                       bench_segment it covers loaded-index
                       bit-identity, byte-identical re-save and the
                       sampled truncation fuzz)

Serving latency under load is deliberately NOT ratio-gated: bench_serve
emits its timings as `*_us` leaves (not `*_batch_ms`) because queue
waits are load- and machine-dependent; its gated signals are the
exact.* booleans and the shed-rate floor.

Timings are machine-dependent, so the gate compares fresh runs against
baselines produced on the same class of machine; CI runs it as a
separate, non-required job (see .github/workflows/ci.yml) and locally
it sits behind DLS_BENCH_GATE=1 in ci/check.sh.

Interference noise is one-sided — a neighbour stealing the CPU only
ever makes a run slower — so a benchmark that fails purely on timing
ratios is re-run up to MAX_ATTEMPTS times and passes if any attempt is
clean. Exactness booleans and the hard floors/ceilings are
deterministic and fail the gate on the first miss, no retry.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (bench binary, committed baseline) pairs the gate covers.
BENCHES = [
    ("bench_ir_kernel", "BENCH_ir_kernel.json"),
    ("bench_codec", "BENCH_codec.json"),
    ("bench_net_fanout", "BENCH_net.json"),
    ("bench_serve", "BENCH_serve.json"),
    ("bench_segment", "BENCH_segment.json"),
    ("bench_ingest", "BENCH_ingest.json"),
    ("bench_federate", "BENCH_federate.json"),
]

COMPRESSION_FLOOR = 2.0
SHED_RATE_FLOOR = 0.02
# bench_segment hard limits, independent of the committed baseline: a
# segment must stay a compressed format (not a heap dump) and loading
# one must beat rebuilding the index from source text by an order of
# magnitude, or persistence is not paying its way.
DISK_BYTES_PER_POSTING_CEILING = 3.0
LOAD_SPEEDUP_FLOOR = 10.0
# Pruning must pay for itself in wall-clock, not only in work counters.
# A timing ratio (both sides measured in the same run), so a miss is
# retryable, unlike the deterministic floors above.
PRUNE_VS_BLOCK_FLOOR = 1.0

# Federated candidate pushdown must beat the exhaustive
# rank-everything-then-intersect baseline in wall-clock on the
# all-three-levels mix. Same-run timing ratio, so retryable.
FILTERED_VS_POST_FILTER_FLOOR = 1.0

# Replica routing: hedges must stay the exception, and one slow replica
# must not be allowed to double tail latency. Both are timing-sensitive,
# so misses are retryable.
HEDGE_RATE_CEILING = 0.25
SLOW_REPLICA_P99_CEILING = 2.0

# Live ingestion: a background merge must not move the median query
# (readers never block on the writer — pinned snapshots) and may tax
# the tail only boundedly, even when merge and queries share one core.
# Timing ratios of one run, so misses are retryable.
INGEST_P50_MERGE_CEILING = 3.0
INGEST_P99_MERGE_CEILING = 30.0

# Re-runs allowed when only timing ratios regressed (noise is one-sided:
# contention can't make a run faster, so one clean attempt is decisive).
MAX_ATTEMPTS = 3


def walk(tree, prefix=""):
    """Flattens a nested JSON object to {'a.b.c': leaf} pairs."""
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            yield from walk(value, path)
        else:
            yield path, value


def classify(path):
    """Returns 'higher_bad', 'lower_bad', 'exact' or None (ungated)."""
    leaf = path.rsplit(".", 1)[-1]
    if path.startswith("exact."):
        return "exact"
    if leaf.endswith("_batch_ms"):
        return "higher_bad"
    if leaf.endswith("_mpostings_per_s"):
        return "lower_bad"
    if leaf in ("bytes_per_posting_packed", "bytes_per_posting_disk"):
        return "higher_bad"
    if leaf in ("bytes_per_query", "batched_bytes_per_query"):
        return "higher_bad"
    return None


def compare(name, baseline, fresh, threshold):
    """Compares one benchmark's fresh JSON to its baseline.

    Returns (timing_failures, hard_failures): timing failures are
    ratio regressions a re-run may clear; hard failures (exactness,
    floors/ceilings, structural mismatches) are deterministic.
    """
    timing = []
    hard = []
    base = dict(walk(baseline))
    new = dict(walk(fresh))
    for path, base_value in sorted(base.items()):
        kind = classify(path)
        if kind is None:
            continue
        if path not in new:
            hard.append(f"{name}: {path} missing from fresh run")
            continue
        new_value = new[path]
        if kind == "exact":
            status = "ok" if new_value is True else "FAIL"
            print(f"  {status:4} {path}: {new_value}")
            if new_value is not True:
                hard.append(f"{name}: {path} is {new_value}, must be true")
            continue
        if base_value <= 0:
            continue
        ratio = new_value / base_value
        if kind == "higher_bad":
            bad = ratio > 1.0 + threshold
            direction = "+"
        else:
            bad = ratio < 1.0 - threshold
            direction = "-"
        delta = (ratio - 1.0) * 100.0
        status = "FAIL" if bad else "ok"
        print(f"  {status:4} {path}: {base_value:.3f} -> {new_value:.3f} "
              f"({delta:+.1f}%)")
        if bad:
            timing.append(
                f"{name}: {path} regressed {delta:+.1f}% "
                f"(limit {direction}{threshold * 100:.0f}%)")
    fresh_flat = dict(walk(fresh))
    ratio = fresh_flat.get("space.compression_ratio")
    if ratio is not None and ratio < COMPRESSION_FLOOR:
        hard.append(
            f"{name}: compression_ratio {ratio:.2f} below the "
            f"{COMPRESSION_FLOOR:.1f}x floor")
    shed_rate = fresh_flat.get("overload.shed_rate")
    if shed_rate is not None and shed_rate < SHED_RATE_FLOOR:
        hard.append(
            f"{name}: overload.shed_rate {shed_rate:.3f} below the "
            f"{SHED_RATE_FLOOR:.2f} floor — shedding did not engage")
    per_posting = fresh_flat.get("disk.bytes_per_posting_disk")
    if per_posting is not None and per_posting > DISK_BYTES_PER_POSTING_CEILING:
        hard.append(
            f"{name}: disk.bytes_per_posting_disk {per_posting:.2f} above "
            f"the {DISK_BYTES_PER_POSTING_CEILING:.1f} ceiling")
    speedup = fresh_flat.get("cold_start.speedup_load_vs_rebuild")
    if speedup is not None and speedup < LOAD_SPEEDUP_FLOOR:
        hard.append(
            f"{name}: cold_start.speedup_load_vs_rebuild {speedup:.1f}x "
            f"below the {LOAD_SPEEDUP_FLOOR:.0f}x floor")
    prune_speedup = fresh_flat.get("speedups.prune_vs_block")
    if prune_speedup is not None and prune_speedup < PRUNE_VS_BLOCK_FLOOR:
        timing.append(
            f"{name}: speedups.prune_vs_block {prune_speedup:.3f} below "
            f"the {PRUNE_VS_BLOCK_FLOOR:.1f} floor — pruning lost "
            f"wall-clock to the exhaustive scan")
    pushdown_speedup = fresh_flat.get("speedups.filtered_vs_post_filter")
    if pushdown_speedup is not None and \
            pushdown_speedup < FILTERED_VS_POST_FILTER_FLOOR:
        timing.append(
            f"{name}: speedups.filtered_vs_post_filter "
            f"{pushdown_speedup:.3f} below the "
            f"{FILTERED_VS_POST_FILTER_FLOOR:.1f} floor — candidate "
            f"pushdown lost wall-clock to rank-then-intersect")
    for path, value in sorted(fresh_flat.items()):
        if path.rsplit(".", 1)[-1] == "hedge_rate" and \
                value > HEDGE_RATE_CEILING:
            timing.append(
                f"{name}: {path} {value:.3f} above the "
                f"{HEDGE_RATE_CEILING:.2f} ceiling — hedging is no longer "
                f"the exception")
    slow_p99 = fresh_flat.get("replica.one_slow.p99_over_healthy_p99")
    if slow_p99 is not None and slow_p99 > SLOW_REPLICA_P99_CEILING:
        timing.append(
            f"{name}: replica.one_slow.p99_over_healthy_p99 {slow_p99:.2f} "
            f"above the {SLOW_REPLICA_P99_CEILING:.1f} ceiling — one slow "
            f"replica leaked into tail latency")
    merge_p50 = fresh_flat.get("ingest.p50_merge_over_quiesced")
    if merge_p50 is not None and merge_p50 > INGEST_P50_MERGE_CEILING:
        timing.append(
            f"{name}: ingest.p50_merge_over_quiesced {merge_p50:.2f} above "
            f"the {INGEST_P50_MERGE_CEILING:.1f} ceiling — the merge moved "
            f"the median query")
    merge_p99 = fresh_flat.get("ingest.p99_merge_over_quiesced")
    if merge_p99 is not None and merge_p99 > INGEST_P99_MERGE_CEILING:
        timing.append(
            f"{name}: ingest.p99_merge_over_quiesced {merge_p99:.2f} above "
            f"the {INGEST_P99_MERGE_CEILING:.1f} ceiling — merging is "
            f"drowning the query tail")
    return timing, hard


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory with the bench binaries")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--out-dir", default=None,
                        help="keep the fresh BENCH_*.json files here "
                             "(default: a temp dir discarded on exit) — CI "
                             "uploads them as the bench job's artifact")
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory(prefix="bench_gate_") as tmp:
        out_dir = args.out_dir or tmp
        os.makedirs(out_dir, exist_ok=True)
        for binary, baseline_name in BENCHES:
            baseline_path = os.path.join(REPO, baseline_name)
            binary_path = os.path.join(REPO, args.build_dir, "bench", binary)
            if not os.path.exists(baseline_path):
                failures.append(f"{binary}: missing baseline {baseline_name}")
                continue
            if not os.path.exists(binary_path):
                failures.append(f"{binary}: binary not built at {binary_path}")
                continue
            fresh_path = os.path.join(out_dir, baseline_name)
            with open(baseline_path) as f:
                baseline = json.load(f)
            for attempt in range(1, MAX_ATTEMPTS + 1):
                retry = f" (attempt {attempt}/{MAX_ATTEMPTS})" \
                    if attempt > 1 else ""
                print(f"== {binary}{retry} ==")
                result = subprocess.run([binary_path, fresh_path],
                                        stdout=subprocess.DEVNULL)
                if result.returncode != 0:
                    failures.append(f"{binary}: exited {result.returncode}")
                    break
                with open(fresh_path) as f:
                    fresh = json.load(f)
                timing, hard = compare(binary, baseline, fresh,
                                       args.threshold)
                if hard:
                    # Deterministic miss — a re-run can't change it.
                    failures.extend(hard + timing)
                    break
                if not timing:
                    break
                if attempt == MAX_ATTEMPTS:
                    failures.extend(timing)
                else:
                    print(f"  .. timing-only failures, re-running "
                          f"{binary}")

    print()
    if failures:
        print("bench gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench gate passed (threshold {args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
