#!/usr/bin/env bash
# Repo verification, staged so the CI matrix can run each configuration
# in its own job while `ci/check.sh` (no argument) stays the one-shot
# local gate:
#
#   ci/check.sh tier1   configure + build + ctest, then the IR, net and
#                       serve suites again with DLS_KERNEL=packed so
#                       the compressed posting codec is the default
#                       kernel end to end (the net and serve suites
#                       re-prove remote/in-process and cached/uncached
#                       bit-identity under it).
#   ci/check.sh tsan    DLS_SANITIZE=thread build; the FULL IR, net and
#                       serve suites (not a hand-picked filter — new
#                       suites must not silently skip sanitizer
#                       coverage) plus the thread-pool tests, then the
#                       concurrency-facing suites again under the
#                       packed kernel (shared-θ and the serving
#                       frontend are the racy paths that earn this).
#   ci/check.sh asan    DLS_SANITIZE=address+undefined build; full
#                       common + IR + net + serve suites, then IR + net
#                       + serve again under the packed kernel (the wire
#                       decoder's peer-controlled pointer arithmetic is
#                       exactly what ASan/UBSan should see).
#   ci/check.sh faults  fault-injection stage: the net replica/fault
#                       suites and the serve fault suite under a
#                       deterministic randomized fault schedule, once
#                       per seed in DLS_FAULT_SEEDS (default "1 7 42"),
#                       then the same schedule under the packed kernel.
#                       Every seed must keep every answer bit-identical
#                       at full quality — failover and hedging are only
#                       allowed to hide faults, never to change results.
#   ci/check.sh bench   builds the benchmark binaries and runs
#                       ci/bench_gate.py against the committed
#                       BENCH_*.json baselines (>15% regression fails).
#   ci/check.sh all     tier1 + tsan + asan + faults; bench too when
#                       DLS_BENCH_GATE=1 (timing is machine-dependent,
#                       so the gate is opt-in locally and a separate
#                       non-required job in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
  echo "== tier-1: configure, build, ctest =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
  echo "== tier-1: IR + net + serve suites with the packed (compressed) kernel =="
  DLS_KERNEL=packed ./build/tests/dls_ir_tests
  DLS_KERNEL=packed ./build/tests/dls_net_tests
  DLS_KERNEL=packed ./build/tests/dls_serve_tests
}

tsan() {
  echo "== TSan: thread pool + histogram + full IR + net + serve suites =="
  cmake -B build-tsan -S . -DDLS_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)" \
    --target dls_common_tests dls_ir_tests dls_net_tests dls_serve_tests
  ./build-tsan/tests/dls_common_tests \
    --gtest_filter='ThreadPool*:LatencyHistogram*'
  ./build-tsan/tests/dls_ir_tests
  ./build-tsan/tests/dls_net_tests
  ./build-tsan/tests/dls_serve_tests
  echo "== TSan: concurrency suites with the packed kernel =="
  DLS_KERNEL=packed ./build-tsan/tests/dls_ir_tests \
    --gtest_filter='ParallelQuery*:Codec*:Kernel*:Wand*:SharedThreshold*:Segment*:Strategy*:Hybrid*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_net_tests \
    --gtest_filter='TcpTest*:RemoteClusterTest*:ReplicaTest*:FaultScheduleTest*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_serve_tests \
    --gtest_filter='ServeConcurrencyTest*:FrontendTest*:ServeFaultInjectionTest*'
}

faults() {
  echo "== fault injection: replica failover + hedging under a seeded schedule =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)" --target dls_net_tests dls_serve_tests
  local filter='ReplicaTest*:FaultScheduleTest*:ServeFaultInjectionTest*'
  for seed in ${DLS_FAULT_SEEDS:-1 7 42}; do
    echo "== fault schedule, seed $seed =="
    DLS_FAULT_SEED="$seed" ./build/tests/dls_net_tests \
      --gtest_filter="$filter"
    DLS_FAULT_SEED="$seed" ./build/tests/dls_serve_tests \
      --gtest_filter="$filter"
  done
  echo "== fault schedule under the packed kernel, seed 1 =="
  DLS_KERNEL=packed ./build/tests/dls_net_tests --gtest_filter="$filter"
  DLS_KERNEL=packed ./build/tests/dls_serve_tests --gtest_filter="$filter"
}

asan() {
  echo "== ASan+UBSan: full common + IR + net + serve suites =="
  cmake -B build-asan -S . -DDLS_SANITIZE=address+undefined
  cmake --build build-asan -j "$(nproc)" \
    --target dls_common_tests dls_ir_tests dls_net_tests dls_serve_tests
  ./build-asan/tests/dls_common_tests
  ./build-asan/tests/dls_ir_tests
  ./build-asan/tests/dls_net_tests
  ./build-asan/tests/dls_serve_tests
  echo "== ASan+UBSan: IR + net + serve suites with the packed kernel =="
  DLS_KERNEL=packed ./build-asan/tests/dls_ir_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_net_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_serve_tests
}

bench() {
  echo "== bench gate: throughput vs committed baselines =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)" \
    --target bench_ir_kernel bench_codec bench_net_fanout bench_serve \
    bench_segment
  # DLS_BENCH_OUT_DIR keeps the fresh JSONs (CI uploads them as the
  # bench job's artifact); unset, they die with the gate's temp dir.
  python3 ci/bench_gate.py --build-dir build \
    ${DLS_BENCH_OUT_DIR:+--out-dir "$DLS_BENCH_OUT_DIR"}
}

case "$stage" in
  tier1) tier1 ;;
  tsan) tsan ;;
  asan) asan ;;
  faults) faults ;;
  bench) bench ;;
  all)
    tier1
    tsan
    asan
    faults
    if [[ "${DLS_BENCH_GATE:-0}" == "1" ]]; then
      bench
    else
      echo "== bench gate skipped (set DLS_BENCH_GATE=1 to enable) =="
    fi
    ;;
  *)
    echo "usage: ci/check.sh [tier1|tsan|asan|faults|bench|all]" >&2
    exit 2
    ;;
esac

echo "== checks passed: $stage =="
