#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the concurrency tests
# again under ThreadSanitizer (DLS_SANITIZE=thread) to certify the
# parallel query engine's frozen-read contract, then the IR tests under
# ASan+UBSan (DLS_SANITIZE=address+undefined) to certify the block
# kernel's raw-pointer loops and WAND cursor arithmetic.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: configure, build, ctest =="
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "== TSan: thread pool + parallel query concurrency =="
cmake -B build-tsan -S . -DDLS_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" --target dls_common_tests dls_ir_tests
./build-tsan/tests/dls_common_tests --gtest_filter='ThreadPool*'
./build-tsan/tests/dls_ir_tests \
  --gtest_filter='ParallelQuery*:ScoreAccumulator*:Kernel*:Wand*'

echo "== ASan+UBSan: kernel / pruning memory and UB checks =="
cmake -B build-asan -S . -DDLS_SANITIZE=address+undefined
cmake --build build-asan -j "$(nproc)" --target dls_common_tests dls_ir_tests
./build-asan/tests/dls_common_tests
./build-asan/tests/dls_ir_tests

echo "== all checks passed =="
