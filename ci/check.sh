#!/usr/bin/env bash
# Repo verification, staged so the CI matrix can run each configuration
# in its own job while `ci/check.sh` (no argument) stays the one-shot
# local gate:
#
#   ci/check.sh tier1   configure + build + ctest, then the IR, net,
#                       serve, ingest and federate suites again with
#                       DLS_KERNEL=packed so the compressed posting
#                       codec is the default kernel end to end (the net
#                       and serve suites re-prove remote/in-process and
#                       cached/uncached bit-identity under it; the
#                       ingest suite re-proves delta-vs-rebuild
#                       bit-identity under it).
#   ci/check.sh tsan    DLS_SANITIZE=thread build; the FULL IR, net,
#                       serve, ingest and federate suites (not a hand-picked
#                       filter — new suites must not silently skip
#                       sanitizer coverage) plus the thread-pool tests,
#                       then the concurrency-facing suites again under
#                       the packed kernel (shared-θ, the serving
#                       frontend and the live mutate-while-query path
#                       are the racy paths that earn this, plus the
#                       mediator's parallel OR fan-out and packed-
#                       payload candidate filters).
#   ci/check.sh asan    DLS_SANITIZE=address+undefined build; full
#                       common + IR + net + serve + ingest suites, then
#                       each again under the packed kernel (the wire
#                       decoder's peer-controlled pointer arithmetic is
#                       exactly what ASan/UBSan should see).
#   ci/check.sh faults  fault-injection stage: the net replica/fault
#                       suites, the serve fault suite and the live
#                       mutate-while-query suite under a deterministic
#                       randomized schedule, once per seed in
#                       DLS_FAULT_SEEDS (default "1 7 42"), then the
#                       same schedule under the packed kernel.
#                       Every seed must keep every answer bit-identical
#                       at full quality — failover and hedging are only
#                       allowed to hide faults, never to change results,
#                       and readers racing the writer must always see a
#                       consistent pinned epoch.
#   ci/check.sh bench   builds the benchmark binaries and runs
#                       ci/bench_gate.py against the committed
#                       BENCH_*.json baselines (>15% regression fails).
#   ci/check.sh all     tier1 + tsan + asan + faults; bench too when
#                       DLS_BENCH_GATE=1 (timing is machine-dependent,
#                       so the gate is opt-in locally and a separate
#                       non-required job in CI).
set -euo pipefail
cd "$(dirname "$0")/.."

stage="${1:-all}"

tier1() {
  echo "== tier-1: configure, build, ctest =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)"
  (cd build && ctest --output-on-failure -j "$(nproc)")
  echo "== tier-1: IR + net + serve + ingest + federate suites with the packed (compressed) kernel =="
  DLS_KERNEL=packed ./build/tests/dls_ir_tests
  DLS_KERNEL=packed ./build/tests/dls_net_tests
  DLS_KERNEL=packed ./build/tests/dls_serve_tests
  DLS_KERNEL=packed ./build/tests/dls_ingest_tests
  DLS_KERNEL=packed ./build/tests/dls_federate_tests
}

tsan() {
  echo "== TSan: thread pool + histogram + full IR + net + serve + ingest suites =="
  cmake -B build-tsan -S . -DDLS_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)" \
    --target dls_common_tests dls_ir_tests dls_net_tests dls_serve_tests \
    dls_ingest_tests dls_federate_tests
  ./build-tsan/tests/dls_common_tests \
    --gtest_filter='ThreadPool*:LatencyHistogram*'
  ./build-tsan/tests/dls_ir_tests
  ./build-tsan/tests/dls_net_tests
  ./build-tsan/tests/dls_serve_tests
  ./build-tsan/tests/dls_ingest_tests
  ./build-tsan/tests/dls_federate_tests
  echo "== TSan: concurrency suites with the packed kernel =="
  DLS_KERNEL=packed ./build-tsan/tests/dls_ir_tests \
    --gtest_filter='ParallelQuery*:Codec*:Kernel*:Wand*:SharedThreshold*:Segment*:Strategy*:Hybrid*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_net_tests \
    --gtest_filter='TcpTest*:RemoteClusterTest*:ReplicaTest*:FaultScheduleTest*:LiveClusterTest*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_serve_tests \
    --gtest_filter='ServeConcurrencyTest*:FrontendTest*:ServeFaultInjectionTest*:WarmCacheTest*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_ingest_tests \
    --gtest_filter='LiveConcurrencyTest*'
  # Parallel OR fan-out + candidate pushdown over packed (released-
  # payload) posting lists: the mediator's racy path under the racy
  # codec.
  DLS_KERNEL=packed ./build-tsan/tests/dls_federate_tests \
    --gtest_filter='MediatorTest*'
  DLS_KERNEL=packed ./build-tsan/tests/dls_ir_tests \
    --gtest_filter='DocFilterTest*:*ClusterDocFilterTest*'
}

faults() {
  echo "== fault injection: replica failover + hedging + live churn under a seeded schedule =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)" \
    --target dls_net_tests dls_serve_tests dls_ingest_tests
  local filter='ReplicaTest*:FaultScheduleTest*:ServeFaultInjectionTest*'
  local live_filter='LiveConcurrencyTest*'
  for seed in ${DLS_FAULT_SEEDS:-1 7 42}; do
    echo "== fault schedule, seed $seed =="
    DLS_FAULT_SEED="$seed" ./build/tests/dls_net_tests \
      --gtest_filter="$filter"
    DLS_FAULT_SEED="$seed" ./build/tests/dls_serve_tests \
      --gtest_filter="$filter"
    DLS_FAULT_SEED="$seed" ./build/tests/dls_ingest_tests \
      --gtest_filter="$live_filter"
  done
  echo "== fault schedule under the packed kernel, seed 1 =="
  DLS_KERNEL=packed ./build/tests/dls_net_tests --gtest_filter="$filter"
  DLS_KERNEL=packed ./build/tests/dls_serve_tests --gtest_filter="$filter"
  DLS_KERNEL=packed ./build/tests/dls_ingest_tests \
    --gtest_filter="$live_filter"
}

asan() {
  echo "== ASan+UBSan: full common + IR + net + serve + ingest suites =="
  cmake -B build-asan -S . -DDLS_SANITIZE=address+undefined
  cmake --build build-asan -j "$(nproc)" \
    --target dls_common_tests dls_ir_tests dls_net_tests dls_serve_tests \
    dls_ingest_tests dls_federate_tests
  ./build-asan/tests/dls_common_tests
  ./build-asan/tests/dls_ir_tests
  ./build-asan/tests/dls_net_tests
  ./build-asan/tests/dls_serve_tests
  ./build-asan/tests/dls_ingest_tests
  ./build-asan/tests/dls_federate_tests
  echo "== ASan+UBSan: IR + net + serve + ingest + federate suites with the packed kernel =="
  DLS_KERNEL=packed ./build-asan/tests/dls_ir_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_net_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_serve_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_ingest_tests
  DLS_KERNEL=packed ./build-asan/tests/dls_federate_tests
}

bench() {
  echo "== bench gate: throughput vs committed baselines =="
  cmake -B build -S .
  cmake --build build -j "$(nproc)" \
    --target bench_ir_kernel bench_codec bench_net_fanout bench_serve \
    bench_segment bench_ingest bench_federate
  # DLS_BENCH_OUT_DIR keeps the fresh JSONs (CI uploads them as the
  # bench job's artifact); unset, they die with the gate's temp dir.
  python3 ci/bench_gate.py --build-dir build \
    ${DLS_BENCH_OUT_DIR:+--out-dir "$DLS_BENCH_OUT_DIR"}
}

case "$stage" in
  tier1) tier1 ;;
  tsan) tsan ;;
  asan) asan ;;
  faults) faults ;;
  bench) bench ;;
  all)
    tier1
    tsan
    asan
    faults
    if [[ "${DLS_BENCH_GATE:-0}" == "1" ]]; then
      bench
    else
      echo "== bench gate skipped (set DLS_BENCH_GATE=1 to enable) =="
    fi
    ;;
  *)
    echo "usage: ci/check.sh [tier1|tsan|asan|faults|bench|all]" >&2
    exit 2
    ;;
esac

echo "== checks passed: $stage =="
