
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cobra/audio.cc" "src/cobra/CMakeFiles/dls_cobra.dir/audio.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/audio.cc.o.d"
  "/root/repo/src/cobra/events.cc" "src/cobra/CMakeFiles/dls_cobra.dir/events.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/events.cc.o.d"
  "/root/repo/src/cobra/histogram.cc" "src/cobra/CMakeFiles/dls_cobra.dir/histogram.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/histogram.cc.o.d"
  "/root/repo/src/cobra/hmm.cc" "src/cobra/CMakeFiles/dls_cobra.dir/hmm.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/hmm.cc.o.d"
  "/root/repo/src/cobra/shots.cc" "src/cobra/CMakeFiles/dls_cobra.dir/shots.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/shots.cc.o.d"
  "/root/repo/src/cobra/synth_video.cc" "src/cobra/CMakeFiles/dls_cobra.dir/synth_video.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/synth_video.cc.o.d"
  "/root/repo/src/cobra/tracker.cc" "src/cobra/CMakeFiles/dls_cobra.dir/tracker.cc.o" "gcc" "src/cobra/CMakeFiles/dls_cobra.dir/tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
