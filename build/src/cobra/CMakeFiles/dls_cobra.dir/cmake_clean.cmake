file(REMOVE_RECURSE
  "CMakeFiles/dls_cobra.dir/audio.cc.o"
  "CMakeFiles/dls_cobra.dir/audio.cc.o.d"
  "CMakeFiles/dls_cobra.dir/events.cc.o"
  "CMakeFiles/dls_cobra.dir/events.cc.o.d"
  "CMakeFiles/dls_cobra.dir/histogram.cc.o"
  "CMakeFiles/dls_cobra.dir/histogram.cc.o.d"
  "CMakeFiles/dls_cobra.dir/hmm.cc.o"
  "CMakeFiles/dls_cobra.dir/hmm.cc.o.d"
  "CMakeFiles/dls_cobra.dir/shots.cc.o"
  "CMakeFiles/dls_cobra.dir/shots.cc.o.d"
  "CMakeFiles/dls_cobra.dir/synth_video.cc.o"
  "CMakeFiles/dls_cobra.dir/synth_video.cc.o.d"
  "CMakeFiles/dls_cobra.dir/tracker.cc.o"
  "CMakeFiles/dls_cobra.dir/tracker.cc.o.d"
  "libdls_cobra.a"
  "libdls_cobra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_cobra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
