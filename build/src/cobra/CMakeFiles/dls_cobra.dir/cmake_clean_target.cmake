file(REMOVE_RECURSE
  "libdls_cobra.a"
)
