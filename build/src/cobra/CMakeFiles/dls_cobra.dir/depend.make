# Empty dependencies file for dls_cobra.
# This may be replaced when dependencies are built.
