
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/internet.cc" "src/synth/CMakeFiles/dls_synth.dir/internet.cc.o" "gcc" "src/synth/CMakeFiles/dls_synth.dir/internet.cc.o.d"
  "/root/repo/src/synth/site.cc" "src/synth/CMakeFiles/dls_synth.dir/site.cc.o" "gcc" "src/synth/CMakeFiles/dls_synth.dir/site.cc.o.d"
  "/root/repo/src/synth/text.cc" "src/synth/CMakeFiles/dls_synth.dir/text.cc.o" "gcc" "src/synth/CMakeFiles/dls_synth.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/webspace/CMakeFiles/dls_webspace.dir/DependInfo.cmake"
  "/root/repo/build/src/cobra/CMakeFiles/dls_cobra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
