# Empty compiler generated dependencies file for dls_synth.
# This may be replaced when dependencies are built.
