file(REMOVE_RECURSE
  "libdls_synth.a"
)
