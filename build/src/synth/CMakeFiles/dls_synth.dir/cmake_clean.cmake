file(REMOVE_RECURSE
  "CMakeFiles/dls_synth.dir/internet.cc.o"
  "CMakeFiles/dls_synth.dir/internet.cc.o.d"
  "CMakeFiles/dls_synth.dir/site.cc.o"
  "CMakeFiles/dls_synth.dir/site.cc.o.d"
  "CMakeFiles/dls_synth.dir/text.cc.o"
  "CMakeFiles/dls_synth.dir/text.cc.o.d"
  "libdls_synth.a"
  "libdls_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
