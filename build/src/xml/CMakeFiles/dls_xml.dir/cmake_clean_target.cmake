file(REMOVE_RECURSE
  "libdls_xml.a"
)
