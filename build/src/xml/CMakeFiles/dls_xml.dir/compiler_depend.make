# Empty compiler generated dependencies file for dls_xml.
# This may be replaced when dependencies are built.
