file(REMOVE_RECURSE
  "CMakeFiles/dls_xml.dir/events.cc.o"
  "CMakeFiles/dls_xml.dir/events.cc.o.d"
  "CMakeFiles/dls_xml.dir/parser.cc.o"
  "CMakeFiles/dls_xml.dir/parser.cc.o.d"
  "CMakeFiles/dls_xml.dir/tree.cc.o"
  "CMakeFiles/dls_xml.dir/tree.cc.o.d"
  "CMakeFiles/dls_xml.dir/writer.cc.o"
  "CMakeFiles/dls_xml.dir/writer.cc.o.d"
  "libdls_xml.a"
  "libdls_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
