file(REMOVE_RECURSE
  "libdls_webspace.a"
)
