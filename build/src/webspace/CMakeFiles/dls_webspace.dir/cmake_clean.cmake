file(REMOVE_RECURSE
  "CMakeFiles/dls_webspace.dir/docgen.cc.o"
  "CMakeFiles/dls_webspace.dir/docgen.cc.o.d"
  "CMakeFiles/dls_webspace.dir/objects.cc.o"
  "CMakeFiles/dls_webspace.dir/objects.cc.o.d"
  "CMakeFiles/dls_webspace.dir/query.cc.o"
  "CMakeFiles/dls_webspace.dir/query.cc.o.d"
  "CMakeFiles/dls_webspace.dir/query_xml.cc.o"
  "CMakeFiles/dls_webspace.dir/query_xml.cc.o.d"
  "CMakeFiles/dls_webspace.dir/schema.cc.o"
  "CMakeFiles/dls_webspace.dir/schema.cc.o.d"
  "libdls_webspace.a"
  "libdls_webspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_webspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
