# Empty dependencies file for dls_webspace.
# This may be replaced when dependencies are built.
