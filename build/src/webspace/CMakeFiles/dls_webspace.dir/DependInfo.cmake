
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webspace/docgen.cc" "src/webspace/CMakeFiles/dls_webspace.dir/docgen.cc.o" "gcc" "src/webspace/CMakeFiles/dls_webspace.dir/docgen.cc.o.d"
  "/root/repo/src/webspace/objects.cc" "src/webspace/CMakeFiles/dls_webspace.dir/objects.cc.o" "gcc" "src/webspace/CMakeFiles/dls_webspace.dir/objects.cc.o.d"
  "/root/repo/src/webspace/query.cc" "src/webspace/CMakeFiles/dls_webspace.dir/query.cc.o" "gcc" "src/webspace/CMakeFiles/dls_webspace.dir/query.cc.o.d"
  "/root/repo/src/webspace/query_xml.cc" "src/webspace/CMakeFiles/dls_webspace.dir/query_xml.cc.o" "gcc" "src/webspace/CMakeFiles/dls_webspace.dir/query_xml.cc.o.d"
  "/root/repo/src/webspace/schema.cc" "src/webspace/CMakeFiles/dls_webspace.dir/schema.cc.o" "gcc" "src/webspace/CMakeFiles/dls_webspace.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
