file(REMOVE_RECURSE
  "libdls_fg.a"
)
