file(REMOVE_RECURSE
  "CMakeFiles/dls_fg.dir/depgraph.cc.o"
  "CMakeFiles/dls_fg.dir/depgraph.cc.o.d"
  "CMakeFiles/dls_fg.dir/detector.cc.o"
  "CMakeFiles/dls_fg.dir/detector.cc.o.d"
  "CMakeFiles/dls_fg.dir/fde.cc.o"
  "CMakeFiles/dls_fg.dir/fde.cc.o.d"
  "CMakeFiles/dls_fg.dir/fds.cc.o"
  "CMakeFiles/dls_fg.dir/fds.cc.o.d"
  "CMakeFiles/dls_fg.dir/grammar.cc.o"
  "CMakeFiles/dls_fg.dir/grammar.cc.o.d"
  "CMakeFiles/dls_fg.dir/mirror.cc.o"
  "CMakeFiles/dls_fg.dir/mirror.cc.o.d"
  "CMakeFiles/dls_fg.dir/parse_tree.cc.o"
  "CMakeFiles/dls_fg.dir/parse_tree.cc.o.d"
  "CMakeFiles/dls_fg.dir/parser.cc.o"
  "CMakeFiles/dls_fg.dir/parser.cc.o.d"
  "CMakeFiles/dls_fg.dir/token.cc.o"
  "CMakeFiles/dls_fg.dir/token.cc.o.d"
  "libdls_fg.a"
  "libdls_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
