# Empty compiler generated dependencies file for dls_fg.
# This may be replaced when dependencies are built.
