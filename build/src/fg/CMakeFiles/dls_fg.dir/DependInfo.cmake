
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fg/depgraph.cc" "src/fg/CMakeFiles/dls_fg.dir/depgraph.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/depgraph.cc.o.d"
  "/root/repo/src/fg/detector.cc" "src/fg/CMakeFiles/dls_fg.dir/detector.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/detector.cc.o.d"
  "/root/repo/src/fg/fde.cc" "src/fg/CMakeFiles/dls_fg.dir/fde.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/fde.cc.o.d"
  "/root/repo/src/fg/fds.cc" "src/fg/CMakeFiles/dls_fg.dir/fds.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/fds.cc.o.d"
  "/root/repo/src/fg/grammar.cc" "src/fg/CMakeFiles/dls_fg.dir/grammar.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/grammar.cc.o.d"
  "/root/repo/src/fg/mirror.cc" "src/fg/CMakeFiles/dls_fg.dir/mirror.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/mirror.cc.o.d"
  "/root/repo/src/fg/parse_tree.cc" "src/fg/CMakeFiles/dls_fg.dir/parse_tree.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/parse_tree.cc.o.d"
  "/root/repo/src/fg/parser.cc" "src/fg/CMakeFiles/dls_fg.dir/parser.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/parser.cc.o.d"
  "/root/repo/src/fg/token.cc" "src/fg/CMakeFiles/dls_fg.dir/token.cc.o" "gcc" "src/fg/CMakeFiles/dls_fg.dir/token.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
