file(REMOVE_RECURSE
  "CMakeFiles/dls_monet.dir/algebra.cc.o"
  "CMakeFiles/dls_monet.dir/algebra.cc.o.d"
  "CMakeFiles/dls_monet.dir/bat.cc.o"
  "CMakeFiles/dls_monet.dir/bat.cc.o.d"
  "CMakeFiles/dls_monet.dir/bulkload.cc.o"
  "CMakeFiles/dls_monet.dir/bulkload.cc.o.d"
  "CMakeFiles/dls_monet.dir/database.cc.o"
  "CMakeFiles/dls_monet.dir/database.cc.o.d"
  "CMakeFiles/dls_monet.dir/edge_baseline.cc.o"
  "CMakeFiles/dls_monet.dir/edge_baseline.cc.o.d"
  "CMakeFiles/dls_monet.dir/schema_tree.cc.o"
  "CMakeFiles/dls_monet.dir/schema_tree.cc.o.d"
  "CMakeFiles/dls_monet.dir/storage.cc.o"
  "CMakeFiles/dls_monet.dir/storage.cc.o.d"
  "libdls_monet.a"
  "libdls_monet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_monet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
