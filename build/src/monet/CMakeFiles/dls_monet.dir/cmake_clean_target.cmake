file(REMOVE_RECURSE
  "libdls_monet.a"
)
