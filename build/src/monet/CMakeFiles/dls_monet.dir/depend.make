# Empty dependencies file for dls_monet.
# This may be replaced when dependencies are built.
