
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monet/algebra.cc" "src/monet/CMakeFiles/dls_monet.dir/algebra.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/algebra.cc.o.d"
  "/root/repo/src/monet/bat.cc" "src/monet/CMakeFiles/dls_monet.dir/bat.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/bat.cc.o.d"
  "/root/repo/src/monet/bulkload.cc" "src/monet/CMakeFiles/dls_monet.dir/bulkload.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/bulkload.cc.o.d"
  "/root/repo/src/monet/database.cc" "src/monet/CMakeFiles/dls_monet.dir/database.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/database.cc.o.d"
  "/root/repo/src/monet/edge_baseline.cc" "src/monet/CMakeFiles/dls_monet.dir/edge_baseline.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/edge_baseline.cc.o.d"
  "/root/repo/src/monet/schema_tree.cc" "src/monet/CMakeFiles/dls_monet.dir/schema_tree.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/schema_tree.cc.o.d"
  "/root/repo/src/monet/storage.cc" "src/monet/CMakeFiles/dls_monet.dir/storage.cc.o" "gcc" "src/monet/CMakeFiles/dls_monet.dir/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
