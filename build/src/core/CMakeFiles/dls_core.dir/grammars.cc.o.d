src/core/CMakeFiles/dls_core.dir/grammars.cc.o: \
 /root/repo/src/core/grammars.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/grammars.h
