file(REMOVE_RECURSE
  "CMakeFiles/dls_core.dir/detectors.cc.o"
  "CMakeFiles/dls_core.dir/detectors.cc.o.d"
  "CMakeFiles/dls_core.dir/engine.cc.o"
  "CMakeFiles/dls_core.dir/engine.cc.o.d"
  "CMakeFiles/dls_core.dir/grammars.cc.o"
  "CMakeFiles/dls_core.dir/grammars.cc.o.d"
  "CMakeFiles/dls_core.dir/internet.cc.o"
  "CMakeFiles/dls_core.dir/internet.cc.o.d"
  "libdls_core.a"
  "libdls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
