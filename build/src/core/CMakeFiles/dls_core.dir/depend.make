# Empty dependencies file for dls_core.
# This may be replaced when dependencies are built.
