file(REMOVE_RECURSE
  "libdls_core.a"
)
