file(REMOVE_RECURSE
  "libdls_common.a"
)
