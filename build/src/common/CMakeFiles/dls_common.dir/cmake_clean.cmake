file(REMOVE_RECURSE
  "CMakeFiles/dls_common.dir/status.cc.o"
  "CMakeFiles/dls_common.dir/status.cc.o.d"
  "CMakeFiles/dls_common.dir/strings.cc.o"
  "CMakeFiles/dls_common.dir/strings.cc.o.d"
  "libdls_common.a"
  "libdls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
