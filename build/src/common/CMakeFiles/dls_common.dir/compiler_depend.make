# Empty compiler generated dependencies file for dls_common.
# This may be replaced when dependencies are built.
