
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cluster.cc" "src/ir/CMakeFiles/dls_ir.dir/cluster.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/cluster.cc.o.d"
  "/root/repo/src/ir/fragments.cc" "src/ir/CMakeFiles/dls_ir.dir/fragments.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/fragments.cc.o.d"
  "/root/repo/src/ir/index.cc" "src/ir/CMakeFiles/dls_ir.dir/index.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/index.cc.o.d"
  "/root/repo/src/ir/stemmer.cc" "src/ir/CMakeFiles/dls_ir.dir/stemmer.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/stemmer.cc.o.d"
  "/root/repo/src/ir/stopwords.cc" "src/ir/CMakeFiles/dls_ir.dir/stopwords.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/stopwords.cc.o.d"
  "/root/repo/src/ir/tokenizer.cc" "src/ir/CMakeFiles/dls_ir.dir/tokenizer.cc.o" "gcc" "src/ir/CMakeFiles/dls_ir.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
