file(REMOVE_RECURSE
  "CMakeFiles/dls_ir.dir/cluster.cc.o"
  "CMakeFiles/dls_ir.dir/cluster.cc.o.d"
  "CMakeFiles/dls_ir.dir/fragments.cc.o"
  "CMakeFiles/dls_ir.dir/fragments.cc.o.d"
  "CMakeFiles/dls_ir.dir/index.cc.o"
  "CMakeFiles/dls_ir.dir/index.cc.o.d"
  "CMakeFiles/dls_ir.dir/stemmer.cc.o"
  "CMakeFiles/dls_ir.dir/stemmer.cc.o.d"
  "CMakeFiles/dls_ir.dir/stopwords.cc.o"
  "CMakeFiles/dls_ir.dir/stopwords.cc.o.d"
  "CMakeFiles/dls_ir.dir/tokenizer.cc.o"
  "CMakeFiles/dls_ir.dir/tokenizer.cc.o.d"
  "libdls_ir.a"
  "libdls_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
