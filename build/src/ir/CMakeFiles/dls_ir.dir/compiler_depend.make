# Empty compiler generated dependencies file for dls_ir.
# This may be replaced when dependencies are built.
