file(REMOVE_RECURSE
  "libdls_ir.a"
)
