# Empty dependencies file for dls_ir.
# This may be replaced when dependencies are built.
