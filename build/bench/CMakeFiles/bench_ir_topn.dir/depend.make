# Empty dependencies file for bench_ir_topn.
# This may be replaced when dependencies are built.
