file(REMOVE_RECURSE
  "CMakeFiles/bench_ir_topn.dir/bench_ir_topn.cc.o"
  "CMakeFiles/bench_ir_topn.dir/bench_ir_topn.cc.o.d"
  "bench_ir_topn"
  "bench_ir_topn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ir_topn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
