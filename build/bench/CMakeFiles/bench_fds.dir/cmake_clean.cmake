file(REMOVE_RECURSE
  "CMakeFiles/bench_fds.dir/bench_fds.cc.o"
  "CMakeFiles/bench_fds.dir/bench_fds.cc.o.d"
  "bench_fds"
  "bench_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
