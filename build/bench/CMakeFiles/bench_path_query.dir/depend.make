# Empty dependencies file for bench_path_query.
# This may be replaced when dependencies are built.
