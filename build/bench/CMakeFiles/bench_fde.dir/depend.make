# Empty dependencies file for bench_fde.
# This may be replaced when dependencies are built.
