file(REMOVE_RECURSE
  "CMakeFiles/bench_fde.dir/bench_fde.cc.o"
  "CMakeFiles/bench_fde.dir/bench_fde.cc.o.d"
  "bench_fde"
  "bench_fde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
