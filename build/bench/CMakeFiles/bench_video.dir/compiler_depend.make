# Empty compiler generated dependencies file for bench_video.
# This may be replaced when dependencies are built.
