file(REMOVE_RECURSE
  "CMakeFiles/bench_video.dir/bench_video.cc.o"
  "CMakeFiles/bench_video.dir/bench_video.cc.o.d"
  "bench_video"
  "bench_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
