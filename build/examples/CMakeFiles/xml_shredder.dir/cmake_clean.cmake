file(REMOVE_RECURSE
  "CMakeFiles/xml_shredder.dir/xml_shredder.cpp.o"
  "CMakeFiles/xml_shredder.dir/xml_shredder.cpp.o.d"
  "xml_shredder"
  "xml_shredder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_shredder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
