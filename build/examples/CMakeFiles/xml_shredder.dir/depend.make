# Empty dependencies file for xml_shredder.
# This may be replaced when dependencies are built.
