# Empty compiler generated dependencies file for australian_open.
# This may be replaced when dependencies are built.
