file(REMOVE_RECURSE
  "CMakeFiles/australian_open.dir/australian_open.cpp.o"
  "CMakeFiles/australian_open.dir/australian_open.cpp.o.d"
  "australian_open"
  "australian_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/australian_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
