
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/monet/CMakeFiles/dls_monet.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/dls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/fg/CMakeFiles/dls_fg.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/dls_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/cobra/CMakeFiles/dls_cobra.dir/DependInfo.cmake"
  "/root/repo/build/src/webspace/CMakeFiles/dls_webspace.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
