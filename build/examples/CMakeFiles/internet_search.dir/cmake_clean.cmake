file(REMOVE_RECURSE
  "CMakeFiles/internet_search.dir/internet_search.cpp.o"
  "CMakeFiles/internet_search.dir/internet_search.cpp.o.d"
  "internet_search"
  "internet_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
