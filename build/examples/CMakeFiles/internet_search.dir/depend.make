# Empty dependencies file for internet_search.
# This may be replaced when dependencies are built.
