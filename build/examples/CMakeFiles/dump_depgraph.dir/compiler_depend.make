# Empty compiler generated dependencies file for dump_depgraph.
# This may be replaced when dependencies are built.
