file(REMOVE_RECURSE
  "CMakeFiles/dump_depgraph.dir/dump_depgraph.cpp.o"
  "CMakeFiles/dump_depgraph.dir/dump_depgraph.cpp.o.d"
  "dump_depgraph"
  "dump_depgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_depgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
