# Empty dependencies file for lonely_planet.
# This may be replaced when dependencies are built.
