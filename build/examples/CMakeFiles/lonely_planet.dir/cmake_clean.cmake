file(REMOVE_RECURSE
  "CMakeFiles/lonely_planet.dir/lonely_planet.cpp.o"
  "CMakeFiles/lonely_planet.dir/lonely_planet.cpp.o.d"
  "lonely_planet"
  "lonely_planet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lonely_planet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
