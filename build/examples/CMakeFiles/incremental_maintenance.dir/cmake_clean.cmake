file(REMOVE_RECURSE
  "CMakeFiles/incremental_maintenance.dir/incremental_maintenance.cpp.o"
  "CMakeFiles/incremental_maintenance.dir/incremental_maintenance.cpp.o.d"
  "incremental_maintenance"
  "incremental_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
