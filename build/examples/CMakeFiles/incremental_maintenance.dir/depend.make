# Empty dependencies file for incremental_maintenance.
# This may be replaced when dependencies are built.
