# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_tests "/root/repo/build/tests/dls_common_tests")
set_tests_properties(common_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(xml_tests "/root/repo/build/tests/dls_xml_tests")
set_tests_properties(xml_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(monet_tests "/root/repo/build/tests/dls_monet_tests")
set_tests_properties(monet_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_tests "/root/repo/build/tests/dls_ir_tests")
set_tests_properties(ir_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(fg_tests "/root/repo/build/tests/dls_fg_tests")
set_tests_properties(fg_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(cobra_tests "/root/repo/build/tests/dls_cobra_tests")
set_tests_properties(cobra_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(webspace_tests "/root/repo/build/tests/dls_webspace_tests")
set_tests_properties(webspace_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(synth_tests "/root/repo/build/tests/dls_synth_tests")
set_tests_properties(synth_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_tests "/root/repo/build/tests/dls_core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;dls_test_module;/root/repo/tests/CMakeLists.txt;0;")
