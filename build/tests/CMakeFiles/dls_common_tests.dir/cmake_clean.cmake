file(REMOVE_RECURSE
  "CMakeFiles/dls_common_tests.dir/common/rng_test.cc.o"
  "CMakeFiles/dls_common_tests.dir/common/rng_test.cc.o.d"
  "CMakeFiles/dls_common_tests.dir/common/status_test.cc.o"
  "CMakeFiles/dls_common_tests.dir/common/status_test.cc.o.d"
  "CMakeFiles/dls_common_tests.dir/common/strings_test.cc.o"
  "CMakeFiles/dls_common_tests.dir/common/strings_test.cc.o.d"
  "dls_common_tests"
  "dls_common_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
