# Empty compiler generated dependencies file for dls_common_tests.
# This may be replaced when dependencies are built.
