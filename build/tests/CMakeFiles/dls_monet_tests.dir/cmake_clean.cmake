file(REMOVE_RECURSE
  "CMakeFiles/dls_monet_tests.dir/monet/algebra_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/algebra_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/bat_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/bat_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/bulkload_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/bulkload_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/edge_baseline_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/edge_baseline_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/extents_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/extents_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/roundtrip_property_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/roundtrip_property_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/storage_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/storage_test.cc.o.d"
  "CMakeFiles/dls_monet_tests.dir/monet/transform_test.cc.o"
  "CMakeFiles/dls_monet_tests.dir/monet/transform_test.cc.o.d"
  "dls_monet_tests"
  "dls_monet_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_monet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
