# Empty dependencies file for dls_monet_tests.
# This may be replaced when dependencies are built.
