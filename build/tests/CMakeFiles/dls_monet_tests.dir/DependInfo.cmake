
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/monet/algebra_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/algebra_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/algebra_test.cc.o.d"
  "/root/repo/tests/monet/bat_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/bat_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/bat_test.cc.o.d"
  "/root/repo/tests/monet/bulkload_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/bulkload_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/bulkload_test.cc.o.d"
  "/root/repo/tests/monet/edge_baseline_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/edge_baseline_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/edge_baseline_test.cc.o.d"
  "/root/repo/tests/monet/extents_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/extents_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/extents_test.cc.o.d"
  "/root/repo/tests/monet/roundtrip_property_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/roundtrip_property_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/roundtrip_property_test.cc.o.d"
  "/root/repo/tests/monet/storage_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/storage_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/storage_test.cc.o.d"
  "/root/repo/tests/monet/transform_test.cc" "tests/CMakeFiles/dls_monet_tests.dir/monet/transform_test.cc.o" "gcc" "tests/CMakeFiles/dls_monet_tests.dir/monet/transform_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monet/CMakeFiles/dls_monet.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
