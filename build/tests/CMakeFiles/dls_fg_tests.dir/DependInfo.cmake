
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fg/depgraph_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/depgraph_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/depgraph_test.cc.o.d"
  "/root/repo/tests/fg/fde_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/fde_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/fde_test.cc.o.d"
  "/root/repo/tests/fg/fds_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/fds_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/fds_test.cc.o.d"
  "/root/repo/tests/fg/grammar_parser_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/grammar_parser_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/grammar_parser_test.cc.o.d"
  "/root/repo/tests/fg/mirror_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/mirror_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/mirror_test.cc.o.d"
  "/root/repo/tests/fg/parse_tree_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/parse_tree_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/parse_tree_test.cc.o.d"
  "/root/repo/tests/fg/reference_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/reference_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/reference_test.cc.o.d"
  "/root/repo/tests/fg/token_stack_test.cc" "tests/CMakeFiles/dls_fg_tests.dir/fg/token_stack_test.cc.o" "gcc" "tests/CMakeFiles/dls_fg_tests.dir/fg/token_stack_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fg/CMakeFiles/dls_fg.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
