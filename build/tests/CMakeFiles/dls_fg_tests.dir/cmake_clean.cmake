file(REMOVE_RECURSE
  "CMakeFiles/dls_fg_tests.dir/fg/depgraph_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/depgraph_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/fde_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/fde_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/fds_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/fds_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/grammar_parser_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/grammar_parser_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/mirror_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/mirror_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/parse_tree_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/parse_tree_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/reference_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/reference_test.cc.o.d"
  "CMakeFiles/dls_fg_tests.dir/fg/token_stack_test.cc.o"
  "CMakeFiles/dls_fg_tests.dir/fg/token_stack_test.cc.o.d"
  "dls_fg_tests"
  "dls_fg_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_fg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
