# Empty dependencies file for dls_fg_tests.
# This may be replaced when dependencies are built.
