
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml/fuzz_test.cc" "tests/CMakeFiles/dls_xml_tests.dir/xml/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/dls_xml_tests.dir/xml/fuzz_test.cc.o.d"
  "/root/repo/tests/xml/parser_test.cc" "tests/CMakeFiles/dls_xml_tests.dir/xml/parser_test.cc.o" "gcc" "tests/CMakeFiles/dls_xml_tests.dir/xml/parser_test.cc.o.d"
  "/root/repo/tests/xml/tree_test.cc" "tests/CMakeFiles/dls_xml_tests.dir/xml/tree_test.cc.o" "gcc" "tests/CMakeFiles/dls_xml_tests.dir/xml/tree_test.cc.o.d"
  "/root/repo/tests/xml/writer_test.cc" "tests/CMakeFiles/dls_xml_tests.dir/xml/writer_test.cc.o" "gcc" "tests/CMakeFiles/dls_xml_tests.dir/xml/writer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/dls_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
