file(REMOVE_RECURSE
  "CMakeFiles/dls_xml_tests.dir/xml/fuzz_test.cc.o"
  "CMakeFiles/dls_xml_tests.dir/xml/fuzz_test.cc.o.d"
  "CMakeFiles/dls_xml_tests.dir/xml/parser_test.cc.o"
  "CMakeFiles/dls_xml_tests.dir/xml/parser_test.cc.o.d"
  "CMakeFiles/dls_xml_tests.dir/xml/tree_test.cc.o"
  "CMakeFiles/dls_xml_tests.dir/xml/tree_test.cc.o.d"
  "CMakeFiles/dls_xml_tests.dir/xml/writer_test.cc.o"
  "CMakeFiles/dls_xml_tests.dir/xml/writer_test.cc.o.d"
  "dls_xml_tests"
  "dls_xml_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_xml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
