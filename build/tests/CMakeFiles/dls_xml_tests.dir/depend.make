# Empty dependencies file for dls_xml_tests.
# This may be replaced when dependencies are built.
