
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cobra/audio_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/audio_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/audio_test.cc.o.d"
  "/root/repo/tests/cobra/events_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/events_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/events_test.cc.o.d"
  "/root/repo/tests/cobra/histogram_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/histogram_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/histogram_test.cc.o.d"
  "/root/repo/tests/cobra/hmm_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/hmm_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/hmm_test.cc.o.d"
  "/root/repo/tests/cobra/pipeline_property_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/pipeline_property_test.cc.o.d"
  "/root/repo/tests/cobra/shots_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/shots_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/shots_test.cc.o.d"
  "/root/repo/tests/cobra/tracker_test.cc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/tracker_test.cc.o" "gcc" "tests/CMakeFiles/dls_cobra_tests.dir/cobra/tracker_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cobra/CMakeFiles/dls_cobra.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
