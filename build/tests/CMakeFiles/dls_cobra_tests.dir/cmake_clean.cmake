file(REMOVE_RECURSE
  "CMakeFiles/dls_cobra_tests.dir/cobra/audio_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/audio_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/events_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/events_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/histogram_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/histogram_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/hmm_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/hmm_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/pipeline_property_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/pipeline_property_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/shots_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/shots_test.cc.o.d"
  "CMakeFiles/dls_cobra_tests.dir/cobra/tracker_test.cc.o"
  "CMakeFiles/dls_cobra_tests.dir/cobra/tracker_test.cc.o.d"
  "dls_cobra_tests"
  "dls_cobra_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_cobra_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
