# Empty compiler generated dependencies file for dls_cobra_tests.
# This may be replaced when dependencies are built.
