# Empty compiler generated dependencies file for dls_webspace_tests.
# This may be replaced when dependencies are built.
