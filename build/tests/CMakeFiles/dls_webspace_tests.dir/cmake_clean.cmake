file(REMOVE_RECURSE
  "CMakeFiles/dls_webspace_tests.dir/webspace/docgen_test.cc.o"
  "CMakeFiles/dls_webspace_tests.dir/webspace/docgen_test.cc.o.d"
  "CMakeFiles/dls_webspace_tests.dir/webspace/query_test.cc.o"
  "CMakeFiles/dls_webspace_tests.dir/webspace/query_test.cc.o.d"
  "CMakeFiles/dls_webspace_tests.dir/webspace/schema_test.cc.o"
  "CMakeFiles/dls_webspace_tests.dir/webspace/schema_test.cc.o.d"
  "dls_webspace_tests"
  "dls_webspace_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_webspace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
