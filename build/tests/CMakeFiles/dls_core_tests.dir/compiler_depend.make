# Empty compiler generated dependencies file for dls_core_tests.
# This may be replaced when dependencies are built.
