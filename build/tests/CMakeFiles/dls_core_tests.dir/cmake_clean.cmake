file(REMOVE_RECURSE
  "CMakeFiles/dls_core_tests.dir/core/detectors_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/detectors_test.cc.o.d"
  "CMakeFiles/dls_core_tests.dir/core/engine_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/engine_test.cc.o.d"
  "CMakeFiles/dls_core_tests.dir/core/grammar_files_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/grammar_files_test.cc.o.d"
  "CMakeFiles/dls_core_tests.dir/core/internet_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/internet_test.cc.o.d"
  "CMakeFiles/dls_core_tests.dir/core/restore_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/restore_test.cc.o.d"
  "CMakeFiles/dls_core_tests.dir/core/second_webspace_test.cc.o"
  "CMakeFiles/dls_core_tests.dir/core/second_webspace_test.cc.o.d"
  "dls_core_tests"
  "dls_core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
