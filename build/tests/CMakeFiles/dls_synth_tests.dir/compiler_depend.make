# Empty compiler generated dependencies file for dls_synth_tests.
# This may be replaced when dependencies are built.
