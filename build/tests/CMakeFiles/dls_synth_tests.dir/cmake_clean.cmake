file(REMOVE_RECURSE
  "CMakeFiles/dls_synth_tests.dir/synth/internet_test.cc.o"
  "CMakeFiles/dls_synth_tests.dir/synth/internet_test.cc.o.d"
  "CMakeFiles/dls_synth_tests.dir/synth/site_test.cc.o"
  "CMakeFiles/dls_synth_tests.dir/synth/site_test.cc.o.d"
  "dls_synth_tests"
  "dls_synth_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_synth_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
