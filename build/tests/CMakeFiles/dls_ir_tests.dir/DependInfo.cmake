
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/cluster_test.cc" "tests/CMakeFiles/dls_ir_tests.dir/ir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/dls_ir_tests.dir/ir/cluster_test.cc.o.d"
  "/root/repo/tests/ir/fragments_test.cc" "tests/CMakeFiles/dls_ir_tests.dir/ir/fragments_test.cc.o" "gcc" "tests/CMakeFiles/dls_ir_tests.dir/ir/fragments_test.cc.o.d"
  "/root/repo/tests/ir/index_test.cc" "tests/CMakeFiles/dls_ir_tests.dir/ir/index_test.cc.o" "gcc" "tests/CMakeFiles/dls_ir_tests.dir/ir/index_test.cc.o.d"
  "/root/repo/tests/ir/ranking_property_test.cc" "tests/CMakeFiles/dls_ir_tests.dir/ir/ranking_property_test.cc.o" "gcc" "tests/CMakeFiles/dls_ir_tests.dir/ir/ranking_property_test.cc.o.d"
  "/root/repo/tests/ir/stemmer_test.cc" "tests/CMakeFiles/dls_ir_tests.dir/ir/stemmer_test.cc.o" "gcc" "tests/CMakeFiles/dls_ir_tests.dir/ir/stemmer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/dls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
