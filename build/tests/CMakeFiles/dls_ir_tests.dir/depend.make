# Empty dependencies file for dls_ir_tests.
# This may be replaced when dependencies are built.
