file(REMOVE_RECURSE
  "CMakeFiles/dls_ir_tests.dir/ir/cluster_test.cc.o"
  "CMakeFiles/dls_ir_tests.dir/ir/cluster_test.cc.o.d"
  "CMakeFiles/dls_ir_tests.dir/ir/fragments_test.cc.o"
  "CMakeFiles/dls_ir_tests.dir/ir/fragments_test.cc.o.d"
  "CMakeFiles/dls_ir_tests.dir/ir/index_test.cc.o"
  "CMakeFiles/dls_ir_tests.dir/ir/index_test.cc.o.d"
  "CMakeFiles/dls_ir_tests.dir/ir/ranking_property_test.cc.o"
  "CMakeFiles/dls_ir_tests.dir/ir/ranking_property_test.cc.o.d"
  "CMakeFiles/dls_ir_tests.dir/ir/stemmer_test.cc.o"
  "CMakeFiles/dls_ir_tests.dir/ir/stemmer_test.cc.o.d"
  "dls_ir_tests"
  "dls_ir_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
