// Persistent-segment cold start at scale: build a million-document
// synthetic index (ir/segment.h regenerates it from five numbers — no
// stored corpus artifact), flush it to one segment file, and compare
//
//   rebuild     tokenize + index + pack every document from source text
//   load        mmap the segment with full payload verification (the
//               default, paranoid path)
//   load(trust) mmap with verify=false — the restart path for a file
//               this process wrote earlier
//
// plus what serving from the mapping costs: bytes/posting on disk,
// resident-set before and after queries, and first-touch ("cold",
// page-cache-warm but mapping-cold — a disk-cold start would add I/O)
// vs warmed query latency.
//
// Gated by ci/bench_gate.py: exact.* booleans (bit-identity of the
// loaded index, byte-identical re-save, every sampled truncation
// rejected), the 3.0 bytes/posting disk ceiling and the 10x
// load-vs-rebuild speedup floor. Wall-clock leaves are reported but
// not ratio-gated — a multi-minute build timing is too noisy for a
// 15% window.
//
// DLS_SEGMENT_DOCS overrides the corpus size (CI smoke vs the full
// million). Prints a human summary and writes machine-readable JSON
// (default BENCH_segment.json, or argv[1]).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "ir/index.h"
#include "ir/segment.h"
#include "synth/corpus.h"

namespace dls {
namespace {

constexpr size_t kQueryPool = 64;
constexpr size_t kTermsPerQuery = 3;
constexpr size_t kTopN = 10;

/// VmRSS of this process in bytes (0 if /proc is unavailable).
uint64_t ResidentSetBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

bool BitIdentical(const std::vector<ir::ScoredDoc>& a,
                  const std::vector<ir::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a[i].score, sizeof(bits_a));
    std::memcpy(&bits_b, &b[i].score, sizeof(bits_b));
    if (a[i].doc != b[i].doc || bits_a != bits_b) return false;
  }
  return true;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(got);
  return bytes;
}

/// Mean per-query latency (us) of one pass over the pool.
double QueryPassUs(const ir::TextIndex& index,
                   const std::vector<std::vector<std::string>>& queries,
                   const ir::RankOptions& options) {
  Timer timer;
  for (const auto& query : queries) {
    index.RankTopN(query, kTopN, options);
  }
  return timer.ElapsedSeconds() * 1e6 / queries.size();
}

/// Copies the segment, then truncates the copy at `points` descending
/// and requires every cut to fail the load under both verify modes.
bool TruncationsRejected(const std::string& path, uint64_t file_bytes) {
  const std::string cut = path + ".cut";
  std::remove(cut.c_str());
  {
    const std::vector<uint8_t> bytes = ReadAll(path);
    std::FILE* f = std::fopen(cut.c_str(), "wb");
    if (f == nullptr) return false;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }
  std::vector<uint64_t> points = {file_bytes - 1, ir::kSegmentHeaderBytes,
                                  ir::kSegmentHeaderBytes - 1, 8, 1, 0};
  for (int i = 1; i < 24; ++i) {
    points.push_back(file_bytes * static_cast<uint64_t>(24 - i) / 24);
  }
  bool all_rejected = true;
  for (const uint64_t point : points) {  // descending: truncate in place
    if (truncate(cut.c_str(), static_cast<off_t>(point)) != 0) return false;
    for (const bool verify : {true, false}) {
      ir::SegmentLoadOptions load;
      load.verify = verify;
      if (ir::TextIndex::LoadFromSegment(cut, load).ok()) {
        std::fprintf(stderr, "truncation to %llu bytes loaded (verify=%d)\n",
                     static_cast<unsigned long long>(point), verify);
        all_rejected = false;
      }
    }
  }
  std::remove(cut.c_str());
  return all_rejected;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_segment.json";
  const std::string segment_path = "/tmp/dls_bench_segment.seg";
  const std::string resave_path = segment_path + ".resave";

  synth::CorpusSpec spec;
  if (const char* docs_env = std::getenv("DLS_SEGMENT_DOCS")) {
    spec.documents = static_cast<size_t>(std::strtoull(docs_env, nullptr, 10));
  }
  const synth::SyntheticCorpus corpus(spec);

  ir::TextIndex::Options options;
  options.stem = false;
  options.stop = false;
  // Bulk load: one Flush at the end. The incremental default (32-doc
  // batches) re-packs every hot posting list per batch — quadratic in
  // corpus size, and not what a from-scratch rebuild would ever do.
  options.flush_batch = spec.documents + 1;

  std::vector<std::vector<std::string>> queries;
  for (size_t q = 0; q < kQueryPool; ++q) {
    queries.push_back(corpus.Query(q, kTermsPerQuery));
  }
  ir::RankOptions rank;
  rank.prune = true;

  // -- rebuild: the cold start this format exists to avoid ------------
  double rebuild_s = 0, flush_s = 0, heap_warm_us = 0;
  double load_verified_s = 0;
  uint64_t heap_resident = 0, rss_heap = 0;
  bool bit_identical = true, resave_identical = true;
  std::vector<std::vector<ir::ScoredDoc>> expected;
  {
    ir::TextIndex built(options);
    Timer build_timer;
    corpus.ForEach(0, spec.documents,
                   [&](size_t, const std::string& url,
                       const std::string& body) { built.AddDocument(url, body); });
    built.Flush();
    rebuild_s = build_timer.ElapsedSeconds();
    heap_resident = built.bytes_resident();
    rss_heap = ResidentSetBytes();

    QueryPassUs(built, queries, rank);  // warm the heap index
    heap_warm_us = QueryPassUs(built, queries, rank);
    for (const auto& query : queries) {
      expected.push_back(built.RankTopN(query, kTopN, rank));
    }

    Timer flush_timer;
    Status status = built.FlushToDisk(segment_path);
    flush_s = flush_timer.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "flush: %s\n", status.ToString().c_str());
      return 1;
    }

    // -- verified load, checked against the live heap index ----------
    Timer load_timer;
    Result<std::unique_ptr<ir::TextIndex>> loaded =
        ir::TextIndex::LoadFromSegment(segment_path);
    load_verified_s = load_timer.ElapsedSeconds();
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    for (size_t q = 0; q < queries.size(); ++q) {
      if (!BitIdentical(loaded.value()->RankTopN(queries[q], kTopN, rank),
                        expected[q])) {
        bit_identical = false;
      }
    }
    if (!loaded.value()->FlushToDisk(resave_path).ok() ||
        ReadAll(resave_path) != ReadAll(segment_path)) {
      resave_identical = false;
    }
    std::remove(resave_path.c_str());
  }  // heap + verified copies freed: the mapped run stands alone

  Result<ir::SegmentInfo> info = ir::ReadSegmentInfo(segment_path);
  if (!info.ok()) {
    std::fprintf(stderr, "info: %s\n", info.status().ToString().c_str());
    return 1;
  }
  const double bytes_per_posting_disk =
      info.value().total_postings > 0
          ? static_cast<double>(info.value().postings_bytes()) /
                static_cast<double>(info.value().total_postings)
          : 0;
  const double file_bytes_per_posting =
      info.value().total_postings > 0
          ? static_cast<double>(info.value().file_bytes) /
                static_cast<double>(info.value().total_postings)
          : 0;

  // -- trusted load: the restart path, measured free of the heap -----
  ir::SegmentLoadOptions trusted;
  trusted.verify = false;
  Timer trusted_timer;
  Result<std::unique_ptr<ir::TextIndex>> mapped =
      ir::TextIndex::LoadFromSegment(segment_path, trusted);
  const double load_trusted_s = trusted_timer.ElapsedSeconds();
  if (!mapped.ok()) {
    std::fprintf(stderr, "trusted load: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  const uint64_t rss_mapped_cold = ResidentSetBytes();
  const double mmap_cold_us = QueryPassUs(*mapped.value(), queries, rank);
  const double mmap_warm_us = QueryPassUs(*mapped.value(), queries, rank);
  const uint64_t rss_mapped_warm = ResidentSetBytes();
  bool mapped_bit_identical = true;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (!BitIdentical(mapped.value()->RankTopN(queries[q], kTopN, rank),
                      expected[q])) {
      mapped_bit_identical = false;
    }
  }
  bit_identical = bit_identical && mapped_bit_identical;
  const uint64_t bytes_mapped = mapped.value()->bytes_mapped();
  const uint64_t mapped_resident = mapped.value()->bytes_resident();

  const bool truncations_rejected =
      TruncationsRejected(segment_path, info.value().file_bytes);
  std::remove(segment_path.c_str());

  const double speedup = load_verified_s > 0 ? rebuild_s / load_verified_s : 0;
  const double speedup_trusted =
      load_trusted_s > 0 ? rebuild_s / load_trusted_s : 0;

  std::printf(
      "segment cold start: %zu docs, %zu words/doc, vocab %zu\n\n"
      "  rebuild      %8.2f s   (tokenize + index + pack)\n"
      "  flush        %8.2f s   -> %.1f MB on disk\n"
      "  load         %8.3f s   (verify everything)   %7.0fx vs rebuild\n"
      "  load(trust)  %8.3f s   (verify=false)        %7.0fx vs rebuild\n\n"
      "  disk    %.2f bytes/posting (postings sections), %.2f whole file\n"
      "  memory  heap %.1f MB resident | mapped %.1f MB + %.2f MB resident\n"
      "  rss     heap %.1f MB | mapped cold %.1f MB -> warm %.1f MB\n"
      "  query   heap %.0f us | mmap first-touch %.0f us -> warm %.0f us\n\n"
      "exact: bit_identical=%s resave_byte_identical=%s "
      "truncations_rejected=%s\n",
      spec.documents, spec.words_per_doc, spec.vocabulary, rebuild_s, flush_s,
      info.value().file_bytes / 1e6, load_verified_s, speedup, load_trusted_s,
      speedup_trusted, bytes_per_posting_disk, file_bytes_per_posting,
      heap_resident / 1e6, bytes_mapped / 1e6, mapped_resident / 1e6,
      rss_heap / 1e6, rss_mapped_cold / 1e6, rss_mapped_warm / 1e6,
      heap_warm_us, mmap_cold_us, mmap_warm_us,
      bit_identical ? "true" : "false", resave_identical ? "true" : "false",
      truncations_rejected ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"segment\",\n"
      "  \"corpus\": {\"docs\": %zu, \"words_per_doc\": %zu, \"vocab\": %zu, "
      "\"zipf_theta\": %.2f, \"seed\": %llu, \"query_pool\": %zu, "
      "\"terms_per_query\": %zu, \"top_n\": %zu},\n"
      "  \"disk\": {\n"
      "    \"file_bytes\": %llu,\n"
      "    \"total_postings\": %llu,\n"
      "    \"total_blocks\": %llu,\n"
      "    \"bytes_per_posting_disk\": %.4f,\n"
      "    \"file_bytes_per_posting\": %.4f\n"
      "  },\n"
      "  \"cold_start\": {\n"
      "    \"rebuild_s\": %.3f,\n"
      "    \"flush_s\": %.3f,\n"
      "    \"load_verified_s\": %.4f,\n"
      "    \"load_trusted_s\": %.5f,\n"
      "    \"speedup_load_vs_rebuild\": %.1f,\n"
      "    \"speedup_trusted_load_vs_rebuild\": %.1f\n"
      "  },\n"
      "  \"memory\": {\n"
      "    \"heap_bytes_resident\": %llu,\n"
      "    \"mapped_bytes_resident\": %llu,\n"
      "    \"bytes_mapped\": %llu,\n"
      "    \"rss_heap_bytes\": %llu,\n"
      "    \"rss_mapped_cold_bytes\": %llu,\n"
      "    \"rss_mapped_warm_bytes\": %llu\n"
      "  },\n"
      "  \"latency\": {\"heap_warm_us\": %.1f, \"mmap_cold_us\": %.1f, "
      "\"mmap_warm_us\": %.1f},\n"
      "  \"exact\": {\"bit_identical\": %s, \"resave_byte_identical\": %s, "
      "\"truncations_rejected\": %s}\n"
      "}\n",
      spec.documents, spec.words_per_doc, spec.vocabulary, spec.zipf_theta,
      static_cast<unsigned long long>(spec.seed), kQueryPool, kTermsPerQuery,
      kTopN, static_cast<unsigned long long>(info.value().file_bytes),
      static_cast<unsigned long long>(info.value().total_postings),
      static_cast<unsigned long long>(info.value().total_blocks), //
      bytes_per_posting_disk, file_bytes_per_posting, rebuild_s, flush_s,
      load_verified_s, load_trusted_s, speedup, speedup_trusted,
      static_cast<unsigned long long>(heap_resident),
      static_cast<unsigned long long>(mapped_resident),
      static_cast<unsigned long long>(bytes_mapped),
      static_cast<unsigned long long>(rss_heap),
      static_cast<unsigned long long>(rss_mapped_cold),
      static_cast<unsigned long long>(rss_mapped_warm), heap_warm_us,
      mmap_cold_us, mmap_warm_us, bit_identical ? "true" : "false",
      resave_identical ? "true" : "false",
      truncations_rejected ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return (bit_identical && resave_identical && truncations_rejected) ? 0 : 1;
}
