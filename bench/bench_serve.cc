// Serving-frontend load sweep: clients against one Frontend over the
// in-process cluster (documents and queries drawn from the shared
// synth::SyntheticCorpus generator), at three offered loads:
//
//   cached    capacity-matched closed-loop clients, a hot query set, a
//             real cache — the steady state a production frontend
//             should sit in
//   overload  ~8x more closed-loop clients than workers, the cache
//             deliberately crippled — the regime where admission
//             control, the batcher and degradation earn their keep
//   open_loop requests issued on a fixed schedule (start + k/qps, with
//             catch-up) regardless of completions — arrival pressure
//             does not politely wait for the previous answer, so queue
//             growth and shedding reflect offered load, not client
//             count
//
// The contract under load, reported under exact.* for ci/bench_gate.py:
//   bit_identical        every answered query matches a direct
//                        ClusterIndex::Query at its effective cut-off
//   p99_within_deadline  overload p99 admitted latency stays under 2x
//                        the request deadline (shedding bounds the tail)
//   sheds_under_overload load shedding actually engages at overload
//   zero_failures        no unexpected status ever comes back
//
// Latency figures are load-dependent by design, so the numeric leaves
// deliberately avoid the gate's `_batch_ms` regression suffix — the
// gated serving signals are the exact.* booleans and the shed-rate
// floor. The open-loop level in particular gates nothing numeric: its
// latencies are a function of the offered rate vs this machine.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_serve.json, or argv[1]).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "ir/cluster.h"
#include "serve/backend.h"
#include "serve/frontend.h"
#include "synth/corpus.h"

namespace dls {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kFragments = 4;
constexpr int kDocs = 4000;
constexpr int kWordsPerDoc = 60;
constexpr size_t kVocab = 2000;
constexpr double kZipfTheta = 1.1;
constexpr int kQueryPool = 16;
constexpr int kTermsPerQuery = 3;
constexpr size_t kTopN = 10;

constexpr size_t kWorkers = 2;
constexpr uint32_t kDeadlineMs = 100;

// Open-loop level: requests fired on a fixed schedule.
constexpr int kOpenClients = 8;
constexpr double kOpenQps = 400.0;
constexpr int kOpenRequests = 1600;
constexpr uint64_t kOpenQueryBase = 1000;  // fresh ids, disjoint pool
// One distinct query per request: open-loop load should exercise the
// backend, not replay the cache.
constexpr int kOpenQueryPool = kOpenRequests;

synth::CorpusSpec ServeSpec() {
  synth::CorpusSpec spec;
  spec.seed = 4;
  spec.documents = kDocs;
  spec.words_per_doc = kWordsPerDoc;
  spec.vocabulary = kVocab;
  spec.zipf_theta = kZipfTheta;
  return spec;
}

void BuildCorpus(const synth::SyntheticCorpus& corpus,
                 ir::ClusterIndex* cluster) {
  corpus.ForEach(0, corpus.spec().documents,
                 [&](size_t, const std::string& url, const std::string& body) {
                   cluster->AddDocument(url, body);
                 });
  cluster->Finalize();
}

std::vector<std::vector<std::string>> MakeQueries(
    const synth::SyntheticCorpus& corpus, uint64_t base, int count) {
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < count; ++q) {
    queries.push_back(corpus.Query(base + static_cast<uint64_t>(q),
                                   kTermsPerQuery));
  }
  return queries;
}

bool BitIdentical(const std::vector<ir::ClusterScoredDoc>& a,
                  const std::vector<ir::ClusterScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a[i].score, sizeof(bits_a));
    std::memcpy(&bits_b, &b[i].score, sizeof(bits_b));
    if (a[i].url != b[i].url || bits_a != bits_b) return false;
  }
  return true;
}

struct LevelResult {
  int clients = 0;
  double wall_s = 0;
  uint64_t answered = 0;
  uint64_t shed = 0;
  uint64_t wrong_rankings = 0;
  uint64_t bad_statuses = 0;
  serve::ServeStats stats;

  double qps() const { return wall_s > 0 ? answered / wall_s : 0; }
  double shed_rate() const {
    const uint64_t total = answered + shed;
    return total > 0 ? static_cast<double>(shed) / total : 0;
  }
  double cache_hit_rate() const {
    const uint64_t lookups = stats.cache_hits + stats.cache_misses;
    return lookups > 0 ? static_cast<double>(stats.cache_hits) / lookups : 0;
  }
  double degraded_share() const {
    return stats.completed > 0
               ? static_cast<double>(stats.degraded) / stats.submitted
               : 0;
  }
  double avg_batch() const {
    return stats.batches > 0
               ? static_cast<double>(stats.batched_queries) / stats.batches
               : 0;
  }
};

/// Closed loop: `clients` threads issue queries back to back (a shed
/// answer is an immediate retry opportunity — the client just moves
/// on), `iters` submissions each.
LevelResult RunLevel(const serve::Backend& backend,
                     const serve::FrontendOptions& options, int clients,
                     int iters,
                     const std::vector<std::vector<std::string>>& queries,
                     const std::vector<std::vector<ir::ClusterScoredDoc>>&
                         expected_full,
                     const std::vector<std::vector<ir::ClusterScoredDoc>>&
                         expected_degraded) {
  serve::Frontend frontend(&backend, options);
  std::atomic<uint64_t> answered{0}, shed{0}, wrong{0}, bad{0};

  Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        const size_t qi = (t * 7 + i) % queries.size();
        serve::SearchQuery query;
        query.words = queries[qi];
        query.n = kTopN;
        query.max_fragments = kFragments;
        query.options.prune = true;
        serve::SearchResult result = frontend.Search(query);
        if (result.status.ok()) {
          const auto& want =
              result.degraded ? expected_degraded[qi] : expected_full[qi];
          if (!BitIdentical(result.results, want)) wrong.fetch_add(1);
          answered.fetch_add(1);
        } else if (result.status.code() == StatusCode::kUnavailable ||
                   result.status.code() == StatusCode::kDeadlineExceeded) {
          shed.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LevelResult level;
  level.clients = clients;
  level.wall_s = timer.ElapsedMillis() / 1000.0;
  level.answered = answered.load();
  level.shed = shed.load();
  level.wrong_rankings = wrong.load();
  level.bad_statuses = bad.load();
  level.stats = frontend.Stats();
  return level;
}

/// Open loop: request k is due at start + k/qps whether or not any
/// earlier request has completed. Client t owns slots t, t+C, t+2C...
/// and sleeps until each slot's absolute due time — a client that
/// falls behind (its previous Search outlasted C/qps) issues
/// immediately and catches up, so offered load is a property of the
/// schedule, not of service times.
LevelResult RunOpenLevel(const serve::Backend& backend,
                         const serve::FrontendOptions& options,
                         const std::vector<std::vector<std::string>>& queries,
                         const std::vector<std::vector<ir::ClusterScoredDoc>>&
                             expected_full,
                         const std::vector<std::vector<ir::ClusterScoredDoc>>&
                             expected_degraded) {
  serve::Frontend frontend(&backend, options);
  std::atomic<uint64_t> answered{0}, shed{0}, wrong{0}, bad{0};

  const auto start = std::chrono::steady_clock::now();
  Timer timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < kOpenClients; ++t) {
    threads.emplace_back([&, t] {
      for (int k = t; k < kOpenRequests; k += kOpenClients) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(k / kOpenQps)));
        const size_t qi = static_cast<size_t>(k) % queries.size();
        serve::SearchQuery query;
        query.words = queries[qi];
        query.n = kTopN;
        query.max_fragments = kFragments;
        query.options.prune = true;
        serve::SearchResult result = frontend.Search(query);
        if (result.status.ok()) {
          const auto& want =
              result.degraded ? expected_degraded[qi] : expected_full[qi];
          if (!BitIdentical(result.results, want)) wrong.fetch_add(1);
          answered.fetch_add(1);
        } else if (result.status.code() == StatusCode::kUnavailable ||
                   result.status.code() == StatusCode::kDeadlineExceeded) {
          shed.fetch_add(1);
        } else {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  LevelResult level;
  level.clients = kOpenClients;
  level.wall_s = timer.ElapsedMillis() / 1000.0;
  level.answered = answered.load();
  level.shed = shed.load();
  level.wrong_rankings = wrong.load();
  level.bad_statuses = bad.load();
  level.stats = frontend.Stats();
  return level;
}

void PrintLevel(const char* name, const LevelResult& level) {
  std::printf(
      "%-9s %3d clients  %9.0f qps  p50 %6llu us  p99 %6llu us  "
      "shed %5.1f%%  cache %5.1f%%  degraded %5.1f%%  batch %.2f\n",
      name, level.clients, level.qps(),
      static_cast<unsigned long long>(level.stats.latency.p50),
      static_cast<unsigned long long>(level.stats.latency.p99),
      level.shed_rate() * 100.0, level.cache_hit_rate() * 100.0,
      level.degraded_share() * 100.0, level.avg_batch());
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  const synth::SyntheticCorpus corpus(ServeSpec());
  ir::ClusterIndex cluster(kNodes, kFragments);
  BuildCorpus(corpus, &cluster);
  cluster.EnableParallelism(2);
  const auto queries = MakeQueries(corpus, 0, kQueryPool);
  const auto open_queries = MakeQueries(corpus, kOpenQueryBase, kOpenQueryPool);

  ir::RankOptions rank;
  rank.prune = true;
  std::vector<std::vector<ir::ClusterScoredDoc>> expected_full;
  std::vector<std::vector<ir::ClusterScoredDoc>> expected_degraded;
  for (const auto& q : queries) {
    expected_full.push_back(cluster.Query(q, kTopN, kFragments, nullptr, rank));
    expected_degraded.push_back(
        cluster.Query(q, kTopN, kFragments / 2, nullptr, rank));
  }
  std::vector<std::vector<ir::ClusterScoredDoc>> open_full;
  std::vector<std::vector<ir::ClusterScoredDoc>> open_degraded;
  for (const auto& q : open_queries) {
    open_full.push_back(cluster.Query(q, kTopN, kFragments, nullptr, rank));
    open_degraded.push_back(
        cluster.Query(q, kTopN, kFragments / 2, nullptr, rank));
  }

  serve::LocalBackend backend(&cluster);

  // Capacity-matched: as many clients as workers, a real cache.
  serve::FrontendOptions cached_options;
  cached_options.num_workers = kWorkers;
  cached_options.max_batch = 8;
  cached_options.max_queue = 16;
  cached_options.degrade_watermark = 8;
  cached_options.default_deadline_ms = kDeadlineMs;
  LevelResult cached =
      RunLevel(backend, cached_options, /*clients=*/kWorkers, /*iters=*/2000,
               queries, expected_full, expected_degraded);

  // Overload: ~8x capacity, the cache crippled to one entry so nearly
  // every submission wants real backend work — admission control and
  // degradation must hold the line.
  serve::FrontendOptions overload_options;
  overload_options.num_workers = kWorkers;
  overload_options.max_batch = 2;
  overload_options.max_queue = 8;
  overload_options.degrade_watermark = 4;
  overload_options.default_deadline_ms = kDeadlineMs;
  overload_options.cache_entries = 1;
  overload_options.cache_shards = 1;
  LevelResult overload =
      RunLevel(backend, overload_options, /*clients=*/16, /*iters=*/300,
               queries, expected_full, expected_degraded);

  // Open loop: a fresh query pool (no pre-warmed cache entries), the
  // steady-state frontend configuration, arrivals on the clock.
  serve::FrontendOptions open_options;
  open_options.num_workers = kWorkers;
  open_options.max_batch = 8;
  open_options.max_queue = 16;
  open_options.degrade_watermark = 8;
  open_options.default_deadline_ms = kDeadlineMs;
  LevelResult open_loop = RunOpenLevel(backend, open_options, open_queries,
                                       open_full, open_degraded);

  const bool bit_identical = cached.wrong_rankings == 0 &&
                             overload.wrong_rankings == 0 &&
                             open_loop.wrong_rankings == 0;
  const bool zero_failures = cached.bad_statuses == 0 &&
                             overload.bad_statuses == 0 &&
                             open_loop.bad_statuses == 0;
  const bool sheds_under_overload =
      overload.stats.shed_queue_full + overload.stats.shed_deadline > 0;
  const bool p99_within_deadline =
      overload.stats.latency.p99 <= uint64_t{kDeadlineMs} * 1000 * 2;

  std::printf(
      "serve load sweep: %zu nodes, %d docs, %d hot queries, top %zu, "
      "%zu workers, %u ms deadline\n\n",
      kNodes, kDocs, kQueryPool, kTopN, kWorkers, kDeadlineMs);
  PrintLevel("cached", cached);
  PrintLevel("overload", overload);
  PrintLevel("open", open_loop);
  std::printf("open loop: offered %.0f qps, achieved %.0f qps over %.1f s\n",
              kOpenQps, open_loop.qps(), open_loop.wall_s);
  std::printf(
      "\nexact: bit_identical=%s p99_within_deadline=%s "
      "sheds_under_overload=%s zero_failures=%s\n",
      bit_identical ? "true" : "false", p99_within_deadline ? "true" : "false",
      sheds_under_overload ? "true" : "false",
      zero_failures ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"serve\",\n"
      "  \"corpus\": {\"nodes\": %zu, \"fragments\": %zu, \"docs\": %d, "
      "\"words_per_doc\": %d, \"vocab\": %zu, \"zipf_theta\": %.2f, "
      "\"query_pool\": %d, \"terms_per_query\": %d, \"top_n\": %zu},\n"
      "  \"frontend\": {\"workers\": %zu, \"deadline_ms\": %u},\n"
      "  \"cached\": {\n"
      "    \"clients\": %d,\n"
      "    \"qps\": %.0f,\n"
      "    \"p50_us\": %llu,\n"
      "    \"p95_us\": %llu,\n"
      "    \"p99_us\": %llu,\n"
      "    \"shed_rate\": %.4f,\n"
      "    \"cache_hit_rate\": %.4f\n"
      "  },\n"
      "  \"overload\": {\n"
      "    \"clients\": %d,\n"
      "    \"qps\": %.0f,\n"
      "    \"p50_us\": %llu,\n"
      "    \"p95_us\": %llu,\n"
      "    \"p99_us\": %llu,\n"
      "    \"shed_rate\": %.4f,\n"
      "    \"degraded_share\": %.4f,\n"
      "    \"avg_batch\": %.2f\n"
      "  },\n"
      "  \"open_loop\": {\n"
      "    \"clients\": %d,\n"
      "    \"offered_qps\": %.0f,\n"
      "    \"requests\": %d,\n"
      "    \"achieved_qps\": %.0f,\n"
      "    \"p50_us\": %llu,\n"
      "    \"p95_us\": %llu,\n"
      "    \"p99_us\": %llu,\n"
      "    \"shed_rate\": %.4f,\n"
      "    \"degraded_share\": %.4f,\n"
      "    \"cache_hit_rate\": %.4f\n"
      "  },\n"
      "  \"exact\": {\"bit_identical\": %s, \"p99_within_deadline\": %s, "
      "\"sheds_under_overload\": %s, \"zero_failures\": %s}\n"
      "}\n",
      kNodes, kFragments, kDocs, kWordsPerDoc, kVocab, kZipfTheta, kQueryPool,
      kTermsPerQuery, kTopN, kWorkers, kDeadlineMs, cached.clients,
      cached.qps(), static_cast<unsigned long long>(cached.stats.latency.p50),
      static_cast<unsigned long long>(cached.stats.latency.p95),
      static_cast<unsigned long long>(cached.stats.latency.p99),
      cached.shed_rate(), cached.cache_hit_rate(), overload.clients,
      overload.qps(),
      static_cast<unsigned long long>(overload.stats.latency.p50),
      static_cast<unsigned long long>(overload.stats.latency.p95),
      static_cast<unsigned long long>(overload.stats.latency.p99),
      overload.shed_rate(), overload.degraded_share(), overload.avg_batch(),
      open_loop.clients, kOpenQps, kOpenRequests, open_loop.qps(),
      static_cast<unsigned long long>(open_loop.stats.latency.p50),
      static_cast<unsigned long long>(open_loop.stats.latency.p95),
      static_cast<unsigned long long>(open_loop.stats.latency.p99),
      open_loop.shed_rate(), open_loop.degraded_share(),
      open_loop.cache_hit_rate(),
      bit_identical ? "true" : "false", p99_within_deadline ? "true" : "false",
      sheds_under_overload ? "true" : "false",
      zero_failures ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return (bit_identical && zero_failures) ? 0 : 1;
}
