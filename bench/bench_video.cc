// Experiment E7 — the tennis video analysis pipeline: per-stage
// throughput (frames/second) and recognition quality. The paper's
// feasibility claim: domain-specific video analysis is practical at
// the scale of one tournament's footage.
#include <cstdio>
#include <set>

#include "cobra/events.h"
#include "cobra/shots.h"
#include "cobra/tracker.h"
#include "common/timer.h"

namespace dls {
namespace {

constexpr int kVideos = 10;
constexpr int kShotsPerVideo = 10;
constexpr int kFramesPerShot = 16;

std::vector<cobra::SyntheticVideo> MakeVideos() {
  std::vector<cobra::SyntheticVideo> videos;
  for (int v = 0; v < kVideos; ++v) {
    videos.emplace_back(
        cobra::MakeRandomScript(1000 + v, kShotsPerVideo, kFramesPerShot));
  }
  return videos;
}

}  // namespace
}  // namespace dls

int main() {
  using namespace dls;
  using cobra::ShotClass;
  using cobra::TrajectoryKind;

  std::vector<cobra::SyntheticVideo> videos = MakeVideos();
  int total_frames = 0;
  for (const auto& v : videos) total_frames += v.frame_count();
  std::printf("E7: %d videos, %d frames (352x288)\n", kVideos, total_frames);
  std::printf("%-28s %-12s %-14s\n", "stage", "time_s", "frames/s");

  // Stage 1: shot segmentation + classification.
  Timer timer;
  std::vector<std::vector<cobra::DetectedShot>> all_shots;
  for (const auto& video : videos) {
    all_shots.push_back(cobra::SegmentAndClassify(video));
  }
  double seg_s = timer.ElapsedSeconds();
  std::printf("%-28s %-12.2f %-14.0f\n", "segment+classify", seg_s,
              total_frames / seg_s);

  // Classification accuracy (per frame, against script ground truth).
  int correct = 0, classified = 0;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const cobra::DetectedShot& shot : all_shots[v]) {
      for (int f = shot.begin; f < shot.end; ++f) {
        ++classified;
        if (videos[v].TruthOf(f).shot_class == shot.type) ++correct;
      }
    }
  }

  // Stage 2: player tracking over tennis shots.
  timer.Reset();
  int tracked_frames = 0;
  std::vector<std::pair<TrajectoryKind, std::vector<int>>> labelled_tracks;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const cobra::DetectedShot& shot : all_shots[v]) {
      if (shot.type != ShotClass::kTennis) continue;
      std::vector<cobra::PlayerObservation> track = cobra::TrackPlayer(
          videos[v], shot.begin, shot.end, videos[v].court_color());
      tracked_frames += shot.end - shot.begin;
      // Detected shots may merge adjacent same-class script shots; only
      // pure (single-trajectory) shots carry a usable event label.
      std::set<int> script_shots;
      for (int f = shot.begin; f < shot.end; ++f) {
        script_shots.insert(videos[v].TruthOf(f).shot_index);
      }
      if (script_shots.size() == 1) {
        labelled_tracks.emplace_back(
            videos[v].script().shots[*script_shots.begin()].trajectory,
            cobra::QuantizeTrack(track, videos[v].script().height));
      }
    }
  }
  double track_s = timer.ElapsedSeconds();
  std::printf("%-28s %-12.2f %-14.0f\n", "player tracking", track_s,
              tracked_frames / track_s);

  std::printf("\nshot classification accuracy: %.1f%% (%d/%d frames)\n",
              100.0 * correct / classified, correct, classified);

  // Stage 3: HMM event recognition. Training uses dedicated labelled
  // clips (one trajectory per clip, 8 examples per class) — the
  // annotated footage [PJZ01] trains from; testing runs on the tracks
  // the detection pipeline produced above.
  cobra::StrokeRecognizer recognizer(42);
  std::vector<std::pair<TrajectoryKind, std::vector<int>>> train;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (TrajectoryKind kind :
         {TrajectoryKind::kBaselineRally, TrajectoryKind::kApproachNet,
          TrajectoryKind::kServeVolley}) {
      cobra::VideoScript clip;
      clip.seed = seed * 131;
      clip.shots = {cobra::ShotScript{ShotClass::kTennis, 24, kind}};
      cobra::SyntheticVideo video(clip);
      std::vector<cobra::PlayerObservation> track = cobra::TrackPlayer(
          video, 0, video.frame_count(), video.court_color());
      train.emplace_back(kind,
                         cobra::QuantizeTrack(track, clip.height));
    }
  }
  timer.Reset();
  if (!recognizer.Train(train, 20).ok()) {
    std::printf("HMM training failed (a class had no examples)\n");
    return 0;
  }
  double train_s = timer.ElapsedSeconds();
  int hmm_correct = 0, hmm_total = 0;
  for (const auto& [kind, symbols] : labelled_tracks) {
    if (symbols.empty()) continue;
    ++hmm_total;
    if (recognizer.Classify(symbols) == kind) ++hmm_correct;
  }
  std::printf("HMM stroke recognition: %d/%d correct on pipeline-detected "
              "shots (train %.2fs on %zu labelled clips)\n",
              hmm_correct, hmm_total, train_s, train.size());

  // Rule-based netplay vs. ground truth.
  int net_correct = 0, net_total = 0;
  for (size_t v = 0; v < videos.size(); ++v) {
    for (const cobra::DetectedShot& shot : all_shots[v]) {
      if (shot.type != ShotClass::kTennis) continue;
      std::vector<cobra::PlayerObservation> track = cobra::TrackPlayer(
          videos[v], shot.begin, shot.end, videos[v].court_color());
      bool detected = cobra::DetectNetplay(track);
      // A detected shot may span several merged script shots; netplay
      // is expected if any of them leaves the baseline.
      bool expected = false;
      for (int f = shot.begin; f < shot.end; ++f) {
        cobra::FrameTruth truth = videos[v].TruthOf(f);
        if (truth.shot_class == ShotClass::kTennis &&
            videos[v].script().shots[truth.shot_index].trajectory !=
                TrajectoryKind::kBaselineRally) {
          expected = true;
          break;
        }
      }
      ++net_total;
      if (detected == expected) ++net_correct;
    }
  }
  std::printf("netplay event rule: %d/%d shots correct\n", net_correct,
              net_total);
  return 0;
}
