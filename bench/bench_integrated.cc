// Experiment E8 — the whole lifecycle at three site scales: per-stage
// cost of modeling, populating (crawl / conceptual extraction / video
// analysis / IR indexing) and querying, plus index sizes. The paper's
// overall feasibility demonstration.
#include <cstdio>

#include "common/timer.h"
#include "core/engine.h"
#include "core/grammars.h"

namespace {

constexpr const char kFig13[] = R"(
  select Player.name, Profile.video
  from Player, Profile
  where Player.gender == "female"
    and Player.plays == "left"
    and Player.history contains "Winner"
    and Is_covered_in(Player, Profile)
    and Profile.video event "netplay"
  limit 10
)";

constexpr const char kRanked[] = R"(
  select Article.name from Article
  rank by Article.body about "champion title" limit 10
)";

}  // namespace

int main() {
  using namespace dls;

  std::printf("E8: end-to-end lifecycle\n");
  std::printf("%-8s %-7s %-8s %-10s %-10s %-12s %-12s %-12s %-12s\n",
              "players", "videos", "docs", "populate_s", "frames",
              "concept_rel", "meta_assoc", "fig13_ms", "ranked_ms");

  for (int players : {8, 24, 48}) {
    core::SearchEngine engine;
    if (!engine.Initialize(synth::kAustralianOpenSchema, core::kVideoGrammar)
             .ok()) {
      return 1;
    }
    synth::SiteOptions options;
    options.seed = 2001;
    options.num_players = players;
    options.num_articles = players * 2;
    options.video_every = 3;
    options.video_shots = 4;
    options.video_frames_per_shot = 8;
    Result<synth::Site> site = synth::GenerateSite(options);
    if (!site.ok()) return 1;

    Timer populate_timer;
    if (!engine.PopulateFromSite(site.value()).ok()) return 1;
    double populate_s = populate_timer.ElapsedSeconds();

    Timer q1;
    Result<core::QueryResult> fig13 = engine.Execute(kFig13);
    double fig13_ms = q1.ElapsedMillis();
    Timer q2;
    Result<core::QueryResult> ranked = engine.Execute(kRanked);
    double ranked_ms = q2.ElapsedMillis();
    if (!fig13.ok() || !ranked.ok()) return 1;

    std::printf("%-8d %-7zu %-8zu %-10.2f %-10zu %-12zu %-12zu %-12.2f "
                "%-12.2f\n",
                players, site.value().videos.size(),
                site.value().documents.size(), populate_s,
                engine.stats().frames_analyzed,
                engine.concept_db().Stats().relations,
                engine.meta_db().Stats().associations, fig13_ms, ranked_ms);
  }
  return 0;
}
