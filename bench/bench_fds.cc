// Experiment E5 — incremental index maintenance: detector calls and
// wall time per change class (revision / minor / major), against the
// full-rebuild baseline. The FDS localises the work to the changed
// detector's partial parse trees.
#include <cstdio>

#include "common/timer.h"
#include "core/engine.h"
#include "core/grammars.h"
#include "fg/mirror.h"

namespace {

dls::Status DegenerateSegment(const dls::fg::DetectorContext&,
                              std::vector<dls::fg::Token>* out) {
  out->push_back(dls::fg::Token::Int(0));
  out->push_back(dls::fg::Token::Int(1));
  out->push_back(dls::fg::Token::Str("other"));
  return dls::Status::Ok();
}

dls::Status StockSegment(const dls::fg::DetectorContext& context,
                         std::vector<dls::fg::Token>* out) {
  static dls::fg::DetectorRegistry stock = [] {
    dls::fg::DetectorRegistry r;
    dls::core::RegisterVideoDetectors(&r);
    return r;
  }();
  return stock.Invoke("segment", context, out);
}

}  // namespace

int main() {
  using namespace dls;

  core::SearchEngine engine;
  if (!engine.Initialize(synth::kAustralianOpenSchema, core::kVideoGrammar)
           .ok()) {
    return 1;
  }
  synth::SiteOptions options;
  options.seed = 5;
  options.num_players = 16;
  options.num_articles = 8;
  options.video_every = 1;
  options.video_shots = 4;
  options.video_frames_per_shot = 8;
  Result<synth::Site> site = synth::GenerateSite(options);
  if (!site.ok()) return 1;

  Timer build_timer;
  if (!engine.PopulateFromSite(site.value()).ok()) return 1;
  double full_build_s = build_timer.ElapsedSeconds();
  size_t full_build_calls = engine.registry().TotalCallCount();

  std::printf("E5: FDS maintenance over %zu stored media objects\n",
              engine.parse_trees().size());
  std::printf("%-26s %-16s %-12s %-12s %-10s\n", "change", "detector_calls",
              "tasks_run", "cascades", "time_ms");
  std::printf("%-26s %-16zu %-12s %-12s %-10.1f\n", "full rebuild (baseline)",
              full_build_calls, "-", "-", full_build_s * 1e3);

  struct Step {
    const char* label;
    fg::DetectorVersion version;
    dls::fg::DetectorFn fn;
  };
  const Step steps[] = {
      {"revision 1.0.1", fg::DetectorVersion{1, 0, 1}, DegenerateSegment},
      {"minor 1.1.0 (degenerate)", fg::DetectorVersion{1, 1, 0},
       DegenerateSegment},
      {"minor 1.2.0 (stock again)", fg::DetectorVersion{1, 2, 0},
       StockSegment},
      {"major 2.0.0", fg::DetectorVersion{2, 0, 0}, DegenerateSegment},
      {"major 3.0.0 (stock again)", fg::DetectorVersion{3, 0, 0},
       StockSegment},
  };
  for (const Step& step : steps) {
    engine.registry().ResetCallCounts();
    engine.fds().ResetStats();
    Timer timer;
    Result<fg::ChangeClass> change =
        engine.fds().UpdateDetector("segment", step.fn, step.version);
    if (!change.ok() || !engine.fds().RunPending().ok()) return 1;
    std::printf("%-26s %-16zu %-12zu %-12zu %-10.1f\n", step.label,
                engine.registry().TotalCallCount(),
                engine.fds().stats().tasks_run, engine.fds().stats().cascades,
                timer.ElapsedMillis());
  }

  // Source-data change: probe-driven full re-parse of ONE object.
  engine.registry().ResetCallCounts();
  Timer timer;
  const std::string& url = site.value().videos.begin()->first;
  if (!engine.fds()
           .OnSourceChanged(url, [](const fg::ParseTree&) { return false; },
                            {fg::Token::Url(url)})
           .ok()) {
    return 1;
  }
  std::printf("%-26s %-16zu %-12s %-12s %-10.1f\n", "source change (1 object)",
              engine.registry().TotalCallCount(), "1", "-",
              timer.ElapsedMillis());

  // ---- E9: the Mirror daemon baseline on the same change. ----
  // Bring the store back to the stock state first.
  if (!engine.fds()
           .UpdateDetector("segment", StockSegment,
                           fg::DetectorVersion{4, 0, 0})
           .ok() ||
      !engine.fds().RunPending().ok()) {
    return 1;
  }
  fg::MirrorScheduler mirror(&engine.grammar(), &engine.registry(),
                             &engine.parse_trees(), &engine.fde());
  engine.registry().ResetCallCounts();
  Timer mirror_timer;
  if (!mirror.UpdateDaemon("segment", DegenerateSegment,
                           fg::DetectorVersion{5, 0, 0})
           .ok() ||
      !mirror.RunToFixpoint().ok()) {
    return 1;
  }
  std::printf("\nE9: the same minor segment change, Mirror-style "
              "daemon polling [VEK98] vs the FDS above\n");
  std::printf("%-26s calls=%zu get_work=%zu objects_scanned=%zu "
              "rounds=%zu time=%.1fms\n", "mirror polling",
              engine.registry().TotalCallCount(),
              mirror.stats().get_work_queries,
              mirror.stats().objects_scanned, mirror.stats().rounds,
              mirror_timer.ElapsedMillis());
  std::printf("(the FDS above handled the same change class with a "
              "dependency-directed task per affected video and zero "
              "get_work scans)\n");
  return 0;
}
