// Scoring-kernel benchmark: the block-structured SoA kernel, the WAND
// pruned evaluation and the hybrid TAAT/DAAT planner against the PR-1
// accumulator path, measured end to end on the E4-style workload
// (TextIndex::RankTopN over a Zipf corpus).
//
// Variants (all timed on the default head+needle query mix: two Zipf
// head terms plus two needle terms per query — the shape of a real
// query-log entry, where the needle contributors set θ and the head
// lists get galloped between their docs):
//   pr1_accumulator — the PR-1 kernel, reproduced verbatim: AoS
//                     posting vectors scored with TermScore() (divide
//                     + libm log1p per posting) into the dense
//                     accumulator with a bounded top-N heap.
//   scalar          — hoisted term weight + precomputed 1/doclen +
//                     VecLog1p, one posting at a time.
//   block           — the same arithmetic strip-mined over SoA posting
//                     blocks (auto-vectorised straight-line kernel).
//   block_prune     — block layout + forced WAND top-N pruning (exact:
//                     galloping cursors, keyed block bounds, batched
//                     run scoring).
//   hybrid          — forced hybrid TAAT/DAAT: dense terms scored TAAT
//                     to seed θ, rare tail DAAT against it.
//   auto            — RankStrategy::kAuto: the per-query cost model
//                     picks TAAT / WAND / hybrid. This is the gated
//                     variant: ci/bench_gate.py requires
//                     speedups.prune_vs_block >= 1.0 (pruning must win
//                     wall-clock against the exhaustive block scan,
//                     not just touch fewer postings).
//
// Skewed query mixes probe the planner's extremes (informational):
// high_df_skew (all terms dense — TAAT must win, DAAT has nothing to
// skip), rare_only (all terms rare — tiny queries, TAAT's scan is
// already cheap), dense_plus_rare (the blend), and zipf_iid (terms
// drawn iid from the Zipf corpus — mostly-dense queries the planner
// should decline to prune).
//
// Also reports the cluster-level pruning effect (postings_touched /
// blocks_skipped / pivot_iterations with and without prune).
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_ir_kernel.json, or argv[1]).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/accumulator.h"
#include "ir/cluster.h"
#include "ir/index.h"
#include "ir/kernel.h"

namespace dls {
namespace {

constexpr int kDocs = 8000;
// Document lengths are log-uniform in [kMinWordsPerDoc, kMaxWordsPerDoc]
// (mean ≈ 100): real digital-library corpora mix abstracts with full
// documents, and the resulting 1/doclen spread is what gives scores
// block-level variance — a fixed length would make every block bound
// flat and leave θ nothing to prune against.
constexpr int kMinWordsPerDoc = 16;
constexpr int kMaxWordsPerDoc = 320;
constexpr size_t kVocab = 3000;
constexpr double kZipfTheta = 1.1;
constexpr int kQueries = 24;
constexpr int kTermsPerQuery = 4;
constexpr size_t kTopN = 10;
constexpr int kReps = 3;  // best-of wall clock per variant
constexpr size_t kClusterNodes = 4;

void BuildCorpus(ir::TextIndex* index, ir::ClusterIndex* cluster) {
  Rng rng(4);
  ZipfSampler zipf(kVocab, kZipfTheta);
  const double log_ratio =
      std::log(static_cast<double>(kMaxWordsPerDoc) / kMinWordsPerDoc);
  std::vector<int> lengths(kDocs);
  for (int d = 0; d < kDocs; ++d) {
    const double u =
        static_cast<double>(rng.Uniform(1 << 20)) / (1 << 20);
    lengths[d] = static_cast<int>(kMinWordsPerDoc * std::exp(u * log_ratio));
  }
  // Docid reassignment by ascending document length (the standard
  // reassignment trick): score potential is monotone in 1/doclen, so
  // clustering lengths makes per-block score keys separate — short-doc
  // blocks sit at the front and warm θ, long-doc blocks (which hold
  // the bulk of the posting mass, length ∝ postings) get uniformly low
  // bounds and are skippable wholesale. A random id order would put a
  // short doc in almost every block and leave θ nothing to prune.
  // TAAT scans every posting either way, so the exhaustive baseline
  // is unaffected.
  std::sort(lengths.begin(), lengths.end());
  for (int d = 0; d < kDocs; ++d) {
    const int words = lengths[d];
    std::string body;
    body.reserve(words * 9);
    for (int w = 0; w < words; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    std::string url = StrFormat("doc%05d", d);
    index->AddDocument(url, body);
    cluster->AddDocument(url, body);
  }
  index->Flush();
  cluster->Finalize();
}

std::vector<std::vector<std::string>> MakeZipfQueries(uint64_t seed) {
  Rng rng(seed);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

/// Terms of the index bucketed by df, for the query mixes: `dense`
/// terms are above the planner's rare cut (df > docs/kRareDfDivisor),
/// `rare` at or below it (but df >= 8 so a query still matches
/// something), and `needle` is the discriminative end of the rare
/// bucket (df <= kNeedleMaxDf) — the proper names / identifiers that
/// make real query-log entries selective.
constexpr int32_t kNeedleMaxDf = 64;

struct DfBuckets {
  std::vector<std::string> dense;
  std::vector<std::string> rare;
  std::vector<std::string> needle;
};

DfBuckets BucketTermsByDf(const ir::TextIndex& index) {
  DfBuckets buckets;
  const int32_t cut =
      static_cast<int32_t>(index.document_count() / ir::kRareDfDivisor);
  for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
    if (index.df(t) > cut) {
      buckets.dense.push_back(index.term(t));
    } else if (index.df(t) >= 8) {
      buckets.rare.push_back(index.term(t));
      if (index.df(t) <= kNeedleMaxDf) {
        buckets.needle.push_back(index.term(t));
      }
    }
  }
  // Deterministic order: term id order is insertion order already.
  return buckets;
}

/// The default (gated) workload: each query is two head terms (Zipf
/// sample over the vocabulary — "the", "tennis") plus two
/// discriminative terms (uniform over the needle bucket — names,
/// identifiers). Real query logs look like this: users type frequent
/// context words *and* the selective words that make the query worth
/// asking, and the selective words are what give exact pruning its
/// structure (θ is set by their contributors, so the long lists can
/// gallop between their documents). The iid-Zipf mix below keeps the
/// old all-frequency-sampled shape visible as a reported variant.
std::vector<std::vector<std::string>> MakeQueries(const DfBuckets& buckets) {
  Rng rng(5);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    words.push_back(buckets.needle[rng.Uniform(buckets.needle.size())]);
    words.push_back(buckets.needle[rng.Uniform(buckets.needle.size())]);
    queries.push_back(std::move(words));
  }
  return queries;
}

std::vector<std::vector<std::string>> MakeMixQueries(
    const std::vector<std::string>& pool, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(pool[rng.Uniform(pool.size())]);
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

/// The PR-1 scoring path, reproduced as the measured baseline: AoS
/// posting vectors, per-posting TermScore (a divide and a libm log1p),
/// dense accumulator, bounded top-N heap. Term resolution is shared
/// with the new paths so the comparison isolates the kernel.
struct Pr1Baseline {
  std::vector<std::vector<ir::Posting>> postings;  // AoS copies per term

  explicit Pr1Baseline(const ir::TextIndex& index) {
    postings.resize(index.vocabulary_size());
    for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
      const ir::PostingList& list = index.postings(t);
      postings[t].reserve(list.size());
      for (const ir::Posting& p : list) postings[t].push_back(p);
    }
  }

  std::vector<ir::ScoredDoc> RankTopN(const ir::TextIndex& index,
                                      const std::vector<std::string>& words,
                                      size_t n) const {
    ir::RankOptions options;
    ir::ScoreAccumulator& scores = ir::ScoreAccumulator::ThreadLocal();
    scores.Reset(index.document_count());
    for (ir::TermId term : index.ResolveQuery(words)) {
      for (const ir::Posting& p : postings[term]) {
        scores.Add(p.doc,
                   ir::TermScore(p.tf, index.df(term), index.doc_length(p.doc),
                                 index.collection_length(), options));
      }
    }
    return scores.ExtractTopN(n);
  }
};

template <typename RunQuery>
double MeasureBatchMs(const std::vector<std::vector<std::string>>& queries,
                      RunQuery&& run_query) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    for (const auto& q : queries) run_query(q);
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

bool SameDocs(const std::vector<ir::ScoredDoc>& a,
              const std::vector<ir::ScoredDoc>& b, bool check_scores) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc) return false;
    if (check_scores && a[i].score != b[i].score) return false;
  }
  return true;
}

ir::RankOptions StrategyOptions(ir::RankStrategy strategy) {
  ir::RankOptions options;
  options.kernel = ir::ScoreKernel::kBlock;
  options.prune = true;
  options.strategy = strategy;
  return options;
}

/// Sums RankStats over a query batch under one options set (the
/// evaluators *assign* the out-param per call, so sum here).
ir::RankStats BatchStats(const ir::TextIndex& index,
                         const std::vector<std::vector<std::string>>& queries,
                         const ir::RankOptions& options) {
  ir::RankStats sum;
  for (const auto& q : queries) {
    ir::RankStats s;
    index.RankTopN(q, kTopN, options, &s);
    sum.postings_touched += s.postings_touched;
    sum.blocks_skipped += s.blocks_skipped;
    sum.blocks_decoded += s.blocks_decoded;
    sum.pivot_iterations += s.pivot_iterations;
    sum.cursor_advances += s.cursor_advances;
  }
  return sum;
}

void PrintStatsRow(const char* name, double ms, const ir::RankStats& s) {
  std::printf("%-12s %-10.2f %-12zu %-10zu %-10zu %-10zu %-10zu\n", name, ms,
              s.postings_touched, s.blocks_skipped, s.blocks_decoded,
              s.pivot_iterations, s.cursor_advances);
}

void PrintJsonStats(std::FILE* out, const char* name, double ms,
                    const ir::RankStats& s, const char* trailer) {
  std::fprintf(out,
               "    \"%s\": {\"batch_ms\": %.3f, \"postings_touched\": %zu, "
               "\"blocks_skipped\": %zu, \"blocks_decoded\": %zu, "
               "\"pivot_iterations\": %zu, \"cursor_advances\": %zu}%s\n",
               name, ms, s.postings_touched, s.blocks_skipped, s.blocks_decoded,
               s.pivot_iterations, s.cursor_advances, trailer);
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_ir_kernel.json";

  ir::TextIndex index;
  ir::ClusterIndex cluster(kClusterNodes, /*num_fragments=*/4);
  BuildCorpus(&index, &cluster);
  DfBuckets buckets = BucketTermsByDf(index);
  auto queries = MakeQueries(buckets);
  Pr1Baseline pr1(index);

  ir::RankOptions scalar;
  scalar.kernel = ir::ScoreKernel::kScalar;
  ir::RankOptions block;
  block.kernel = ir::ScoreKernel::kBlock;
  const ir::RankOptions wand = StrategyOptions(ir::RankStrategy::kWand);
  const ir::RankOptions hybrid = StrategyOptions(ir::RankStrategy::kHybrid);
  const ir::RankOptions autop = StrategyOptions(ir::RankStrategy::kAuto);

  std::printf(
      "scoring kernel: %d docs, %d-%d words/doc, vocab %zu, %d queries x %d "
      "terms, top %zu\n\n",
      kDocs, kMinWordsPerDoc, kMaxWordsPerDoc, kVocab, kQueries,
      kTermsPerQuery, kTopN);

  // Exactness cross-checks before timing: scalar and block must be
  // bit-identical (docs AND scores); every pruning strategy must
  // return the identical ranking; the PR-1 baseline agrees on the
  // documents (its libm scores differ from VecLog1p by ulps, so scores
  // are not compared).
  bool block_exact = true, prune_exact = true, pr1_same_docs = true;
  for (const auto& q : queries) {
    std::vector<ir::ScoredDoc> s = index.RankTopN(q, kTopN, scalar);
    std::vector<ir::ScoredDoc> b = index.RankTopN(q, kTopN, block);
    if (!SameDocs(s, b, /*check_scores=*/true)) block_exact = false;
    for (const ir::RankOptions* options : {&wand, &hybrid, &autop}) {
      if (!SameDocs(b, index.RankTopN(q, kTopN, *options),
                    /*check_scores=*/true)) {
        prune_exact = false;
      }
    }
    if (!SameDocs(b, pr1.RankTopN(index, q, kTopN), /*check_scores=*/false)) {
      pr1_same_docs = false;
    }
  }

  double pr1_ms = MeasureBatchMs(queries, [&](const auto& q) {
    pr1.RankTopN(index, q, kTopN);
  });
  double scalar_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, scalar);
  });
  double block_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, block);
  });
  double wand_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, wand);
  });
  double hybrid_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, hybrid);
  });
  double auto_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, autop);
  });

  struct Row {
    const char* name;
    double ms;
    const char* exact;
  };
  Row rows[] = {
      {"pr1_accumulator", pr1_ms, pr1_same_docs ? "docs" : "NO"},
      {"scalar", scalar_ms, "ref"},
      {"block", block_ms, block_exact ? "bits" : "NO"},
      {"block_prune", wand_ms, prune_exact ? "bits" : "NO"},
      {"hybrid", hybrid_ms, prune_exact ? "bits" : "NO"},
      {"auto", auto_ms, prune_exact ? "bits" : "NO"},
  };
  std::printf("%-16s %-10s %-12s %-10s %-8s\n", "variant", "batch_ms",
              "ms/query", "vs_pr1", "exact");
  for (const Row& r : rows) {
    std::printf("%-16s %-10.2f %-12.4f %-10.2f %-8s\n", r.name, r.ms,
                r.ms / kQueries, pr1_ms / r.ms, r.exact);
  }
  std::printf("\nprune_vs_block (gated >= 1.0): %.3f\n", block_ms / auto_ms);

  // Work accounting per strategy on the default mix.
  const ir::RankStats taat_stats = BatchStats(index, queries, block);
  const ir::RankStats wand_stats = BatchStats(index, queries, wand);
  const ir::RankStats hybrid_stats = BatchStats(index, queries, hybrid);
  const ir::RankStats auto_stats = BatchStats(index, queries, autop);
  std::printf("\n%-12s %-10s %-12s %-10s %-10s %-10s %-10s\n", "strategy",
              "batch_ms", "postings", "skipped", "decoded", "pivots",
              "advances");
  PrintStatsRow("taat", block_ms, taat_stats);
  PrintStatsRow("wand", wand_ms, wand_stats);
  PrintStatsRow("hybrid", hybrid_ms, hybrid_stats);
  PrintStatsRow("auto", auto_ms, auto_stats);

  // Skewed mixes probe the planner's extremes: all-dense (TAAT
  // territory), all-rare (DAAT territory), the dense+rare blend, and
  // the historical iid-Zipf sample.
  struct Mix {
    const char* name;
    std::vector<std::vector<std::string>> queries;
    double block_ms = 0, wand_ms = 0, hybrid_ms = 0, auto_ms = 0;
    ir::RankStats wand_stats, hybrid_stats, auto_stats;
  };
  std::vector<Mix> mixes;
  if (!buckets.dense.empty()) {
    mixes.push_back({"high_df_skew", MakeMixQueries(buckets.dense, 6)});
  }
  if (!buckets.rare.empty()) {
    mixes.push_back({"rare_only", MakeMixQueries(buckets.rare, 7)});
  }
  if (!buckets.dense.empty() && !buckets.rare.empty()) {
    // Head terms + discriminative terms — the shape of a real query
    // log entry, and the one where pruning has structure to exploit:
    // θ is set by the rare contributors, so the dense lists can be
    // galloped between their docs instead of scanned.
    Rng rng(8);
    std::vector<std::vector<std::string>> queries;
    for (int q = 0; q < kQueries; ++q) {
      std::vector<std::string> words;
      words.push_back(buckets.dense[rng.Uniform(buckets.dense.size())]);
      words.push_back(buckets.dense[rng.Uniform(buckets.dense.size())]);
      words.push_back(buckets.rare[rng.Uniform(buckets.rare.size())]);
      words.push_back(buckets.rare[rng.Uniform(buckets.rare.size())]);
      queries.push_back(std::move(words));
    }
    mixes.push_back({"dense_plus_rare", std::move(queries)});
  }
  mixes.push_back({"zipf_iid", MakeZipfQueries(5)});
  for (Mix& mix : mixes) {
    for (const auto& q : mix.queries) {
      std::vector<ir::ScoredDoc> b = index.RankTopN(q, kTopN, block);
      for (const ir::RankOptions* options : {&wand, &hybrid, &autop}) {
        if (!SameDocs(b, index.RankTopN(q, kTopN, *options),
                      /*check_scores=*/true)) {
          prune_exact = false;
        }
      }
    }
    mix.block_ms = MeasureBatchMs(mix.queries, [&](const auto& q) {
      index.RankTopN(q, kTopN, block);
    });
    mix.wand_ms = MeasureBatchMs(mix.queries, [&](const auto& q) {
      index.RankTopN(q, kTopN, wand);
    });
    mix.hybrid_ms = MeasureBatchMs(mix.queries, [&](const auto& q) {
      index.RankTopN(q, kTopN, hybrid);
    });
    mix.auto_ms = MeasureBatchMs(mix.queries, [&](const auto& q) {
      index.RankTopN(q, kTopN, autop);
    });
    mix.wand_stats = BatchStats(index, mix.queries, wand);
    mix.hybrid_stats = BatchStats(index, mix.queries, hybrid);
    mix.auto_stats = BatchStats(index, mix.queries, autop);

    std::printf("\nmix %s (%zu queries):\n", mix.name, mix.queries.size());
    std::printf("%-12s %-10s %-12s %-10s %-10s %-10s %-10s\n", "strategy",
                "batch_ms", "postings", "skipped", "decoded", "pivots",
                "advances");
    ir::RankStats block_mix_stats = BatchStats(index, mix.queries, block);
    PrintStatsRow("taat", mix.block_ms, block_mix_stats);
    PrintStatsRow("wand", mix.wand_ms, mix.wand_stats);
    PrintStatsRow("hybrid", mix.hybrid_ms, mix.hybrid_stats);
    PrintStatsRow("auto", mix.auto_ms, mix.auto_stats);
  }

  // Cluster-level pruning effect: postings touched, blocks skipped and
  // pivot iterations across the distributed evaluation under the auto
  // planner (sequential => threshold feedback tightens later nodes).
  ir::ClusterQueryStats full_stats_sum, prune_stats_sum;
  bool cluster_exact = true;
  for (const auto& q : queries) {
    ir::ClusterQueryStats full_stats, prune_stats;
    auto full = cluster.Query(q, kTopN, 4, &full_stats);
    auto pruned = cluster.Query(q, kTopN, 4, &prune_stats, autop);
    if (full.size() != pruned.size()) cluster_exact = false;
    for (size_t i = 0; i < full.size() && i < pruned.size(); ++i) {
      if (full[i].url != pruned[i].url || full[i].score != pruned[i].score) {
        cluster_exact = false;
      }
    }
    full_stats_sum.postings_touched_total += full_stats.postings_touched_total;
    full_stats_sum.blocks_skipped += full_stats.blocks_skipped;
    prune_stats_sum.postings_touched_total +=
        prune_stats.postings_touched_total;
    prune_stats_sum.blocks_skipped += prune_stats.blocks_skipped;
    prune_stats_sum.pivot_iterations += prune_stats.pivot_iterations;
    prune_stats_sum.cursor_advances += prune_stats.cursor_advances;
  }
  double touched_ratio =
      full_stats_sum.postings_touched_total > 0
          ? static_cast<double>(prune_stats_sum.postings_touched_total) /
                static_cast<double>(full_stats_sum.postings_touched_total)
          : 1.0;
  std::printf(
      "\ncluster (%zu nodes, sequential threshold feedback, auto): "
      "postings_touched %zu -> %zu (%.1f%%), blocks_skipped %zu, "
      "pivot_iterations %zu, exact %s\n",
      kClusterNodes, full_stats_sum.postings_touched_total,
      prune_stats_sum.postings_touched_total, touched_ratio * 100.0,
      prune_stats_sum.blocks_skipped, prune_stats_sum.pivot_iterations,
      cluster_exact ? "yes" : "NO");
  std::printf(
      "(vs_pr1 = wall-clock speedup over the PR-1 accumulator kernel; "
      "exact: bits = bit-identical docs+scores, docs = same ranking)\n");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"ir_kernel\",\n"
      "  \"corpus\": {\"docs\": %d, \"max_words_per_doc\": %d, \"vocab\": %zu, "
      "\"zipf_theta\": %.2f, \"queries\": %d, \"terms_per_query\": %d, "
      "\"top_n\": %zu},\n"
      "  \"variants\": {\n"
      "    \"pr1_accumulator_batch_ms\": %.3f,\n"
      "    \"scalar_batch_ms\": %.3f,\n"
      "    \"block_batch_ms\": %.3f,\n"
      "    \"block_prune_batch_ms\": %.3f,\n"
      "    \"hybrid_batch_ms\": %.3f,\n"
      "    \"auto_batch_ms\": %.3f\n"
      "  },\n"
      "  \"speedups\": {\n"
      "    \"scalar_vs_pr1\": %.3f,\n"
      "    \"block_vs_pr1\": %.3f,\n"
      "    \"block_prune_vs_pr1\": %.3f,\n"
      "    \"block_prune_vs_block\": %.3f,\n"
      "    \"hybrid_vs_block\": %.3f,\n"
      "    \"prune_vs_block\": %.3f\n"
      "  },\n"
      "  \"exact\": {\"block_bit_identical\": %s, "
      "\"prune_bit_identical\": %s, \"pr1_same_docs\": %s, "
      "\"cluster_prune_identical\": %s},\n",
      kDocs, kMaxWordsPerDoc, kVocab, kZipfTheta, kQueries, kTermsPerQuery, kTopN,
      pr1_ms, scalar_ms, block_ms, wand_ms, hybrid_ms, auto_ms,
      pr1_ms / scalar_ms, pr1_ms / block_ms, pr1_ms / wand_ms,
      block_ms / wand_ms, block_ms / hybrid_ms, block_ms / auto_ms,
      block_exact ? "true" : "false", prune_exact ? "true" : "false",
      pr1_same_docs ? "true" : "false", cluster_exact ? "true" : "false");
  std::fprintf(out, "  \"pruning_stats\": {\n");
  PrintJsonStats(out, "taat", block_ms, taat_stats, ",");
  PrintJsonStats(out, "wand", wand_ms, wand_stats, ",");
  PrintJsonStats(out, "hybrid", hybrid_ms, hybrid_stats, ",");
  PrintJsonStats(out, "auto", auto_ms, auto_stats, "");
  std::fprintf(out, "  },\n  \"mixes\": {\n");
  for (size_t m = 0; m < mixes.size(); ++m) {
    const Mix& mix = mixes[m];
    std::fprintf(out, "    \"%s\": {\n  ", mix.name);
    PrintJsonStats(out, "wand", mix.wand_ms, mix.wand_stats, ",  ");
    std::fprintf(out, "  ");
    PrintJsonStats(out, "hybrid", mix.hybrid_ms, mix.hybrid_stats, ",  ");
    std::fprintf(out, "  ");
    PrintJsonStats(out, "auto", mix.auto_ms, mix.auto_stats, ",  ");
    std::fprintf(out, "    \"block_batch_ms\": %.3f\n    }%s\n", mix.block_ms,
                 m + 1 < mixes.size() ? "," : "");
  }
  std::fprintf(
      out,
      "  },\n"
      "  \"cluster_pruning\": {\"nodes\": %zu, "
      "\"postings_touched_full\": %zu, \"postings_touched_pruned\": %zu, "
      "\"postings_touched_ratio\": %.4f, \"blocks_skipped\": %zu, "
      "\"pivot_iterations\": %zu, \"cursor_advances\": %zu}\n"
      "}\n",
      kClusterNodes, full_stats_sum.postings_touched_total,
      prune_stats_sum.postings_touched_total, touched_ratio,
      prune_stats_sum.blocks_skipped, prune_stats_sum.pivot_iterations,
      prune_stats_sum.cursor_advances);
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
