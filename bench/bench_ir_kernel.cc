// Scoring-kernel benchmark: the block-structured SoA kernel and
// WAND-style pruning against the PR-1 accumulator path, measured end
// to end on the E4-style workload (TextIndex::RankTopN over a Zipf
// corpus).
//
// Variants:
//   pr1_accumulator — the previous kernel, reproduced verbatim: AoS
//                     posting vectors scored with TermScore() (divide
//                     + libm log1p per posting) into the dense
//                     accumulator with a bounded top-N heap.
//   scalar          — hoisted term weight + precomputed 1/doclen +
//                     VecLog1p, one posting at a time.
//   block           — the same arithmetic strip-mined over SoA posting
//                     blocks (auto-vectorised straight-line kernel).
//   block_prune     — block layout + WAND top-N pruning (exact).
//
// Also reports the cluster-level pruning effect (postings_touched /
// blocks_skipped with and without RankOptions::prune).
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_ir_kernel.json, or argv[1]).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/accumulator.h"
#include "ir/cluster.h"
#include "ir/index.h"
#include "ir/kernel.h"

namespace dls {
namespace {

constexpr int kDocs = 8000;
constexpr int kWordsPerDoc = 80;
constexpr size_t kVocab = 3000;
constexpr double kZipfTheta = 1.1;
constexpr int kQueries = 24;
constexpr int kTermsPerQuery = 4;
constexpr size_t kTopN = 10;
constexpr int kReps = 3;  // best-of wall clock per variant
constexpr size_t kClusterNodes = 4;

void BuildCorpus(ir::TextIndex* index, ir::ClusterIndex* cluster) {
  Rng rng(4);
  ZipfSampler zipf(kVocab, kZipfTheta);
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    body.reserve(kWordsPerDoc * 9);
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    std::string url = StrFormat("doc%05d", d);
    index->AddDocument(url, body);
    cluster->AddDocument(url, body);
  }
  index->Flush();
  cluster->Finalize();
}

std::vector<std::vector<std::string>> MakeQueries() {
  Rng rng(5);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

/// The PR-1 scoring path, reproduced as the measured baseline: AoS
/// posting vectors, per-posting TermScore (a divide and a libm log1p),
/// dense accumulator, bounded top-N heap. Term resolution is shared
/// with the new paths so the comparison isolates the kernel.
struct Pr1Baseline {
  std::vector<std::vector<ir::Posting>> postings;  // AoS copies per term

  explicit Pr1Baseline(const ir::TextIndex& index) {
    postings.resize(index.vocabulary_size());
    for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
      const ir::PostingList& list = index.postings(t);
      postings[t].reserve(list.size());
      for (const ir::Posting& p : list) postings[t].push_back(p);
    }
  }

  std::vector<ir::ScoredDoc> RankTopN(const ir::TextIndex& index,
                                      const std::vector<std::string>& words,
                                      size_t n) const {
    ir::RankOptions options;
    ir::ScoreAccumulator& scores = ir::ScoreAccumulator::ThreadLocal();
    scores.Reset(index.document_count());
    for (ir::TermId term : index.ResolveQuery(words)) {
      for (const ir::Posting& p : postings[term]) {
        scores.Add(p.doc,
                   ir::TermScore(p.tf, index.df(term), index.doc_length(p.doc),
                                 index.collection_length(), options));
      }
    }
    return scores.ExtractTopN(n);
  }
};

template <typename RunQuery>
double MeasureBatchMs(const std::vector<std::vector<std::string>>& queries,
                      RunQuery&& run_query) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    for (const auto& q : queries) run_query(q);
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

bool SameDocs(const std::vector<ir::ScoredDoc>& a,
              const std::vector<ir::ScoredDoc>& b, bool check_scores) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc) return false;
    if (check_scores && a[i].score != b[i].score) return false;
  }
  return true;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_ir_kernel.json";

  ir::TextIndex index;
  ir::ClusterIndex cluster(kClusterNodes, /*num_fragments=*/4);
  BuildCorpus(&index, &cluster);
  auto queries = MakeQueries();
  Pr1Baseline pr1(index);

  ir::RankOptions scalar;
  scalar.kernel = ir::ScoreKernel::kScalar;
  ir::RankOptions block;
  block.kernel = ir::ScoreKernel::kBlock;
  ir::RankOptions block_prune = block;
  block_prune.prune = true;

  std::printf(
      "scoring kernel: %d docs, %d words/doc, vocab %zu, %d queries x %d "
      "terms, top %zu\n\n",
      kDocs, kWordsPerDoc, kVocab, kQueries, kTermsPerQuery, kTopN);

  // Exactness cross-checks before timing: scalar and block must be
  // bit-identical (docs AND scores); pruning must return the identical
  // ranking; the PR-1 baseline agrees on the documents (its libm
  // scores differ from VecLog1p by ulps, so scores are not compared).
  bool block_exact = true, prune_exact = true, pr1_same_docs = true;
  for (const auto& q : queries) {
    std::vector<ir::ScoredDoc> s = index.RankTopN(q, kTopN, scalar);
    std::vector<ir::ScoredDoc> b = index.RankTopN(q, kTopN, block);
    std::vector<ir::ScoredDoc> p = index.RankTopN(q, kTopN, block_prune);
    if (!SameDocs(s, b, /*check_scores=*/true)) block_exact = false;
    if (!SameDocs(b, p, /*check_scores=*/true)) prune_exact = false;
    if (!SameDocs(b, pr1.RankTopN(index, q, kTopN), /*check_scores=*/false)) {
      pr1_same_docs = false;
    }
  }

  double pr1_ms = MeasureBatchMs(queries, [&](const auto& q) {
    pr1.RankTopN(index, q, kTopN);
  });
  double scalar_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, scalar);
  });
  double block_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, block);
  });
  double prune_ms = MeasureBatchMs(queries, [&](const auto& q) {
    index.RankTopN(q, kTopN, block_prune);
  });

  struct Row {
    const char* name;
    double ms;
    const char* exact;
  };
  Row rows[] = {
      {"pr1_accumulator", pr1_ms, pr1_same_docs ? "docs" : "NO"},
      {"scalar", scalar_ms, "ref"},
      {"block", block_ms, block_exact ? "bits" : "NO"},
      {"block_prune", prune_ms, prune_exact ? "bits" : "NO"},
  };
  std::printf("%-16s %-10s %-12s %-10s %-8s\n", "variant", "batch_ms",
              "ms/query", "vs_pr1", "exact");
  for (const Row& r : rows) {
    std::printf("%-16s %-10.2f %-12.4f %-10.2f %-8s\n", r.name, r.ms,
                r.ms / kQueries, pr1_ms / r.ms, r.exact);
  }

  // Cluster-level pruning effect: postings touched and blocks skipped
  // across the distributed evaluation (sequential => threshold
  // feedback tightens later nodes).
  ir::ClusterQueryStats full_stats_sum, prune_stats_sum;
  bool cluster_exact = true;
  for (const auto& q : queries) {
    ir::ClusterQueryStats full_stats, prune_stats;
    auto full = cluster.Query(q, kTopN, 4, &full_stats);
    auto pruned = cluster.Query(q, kTopN, 4, &prune_stats, block_prune);
    if (full.size() != pruned.size()) cluster_exact = false;
    for (size_t i = 0; i < full.size() && i < pruned.size(); ++i) {
      if (full[i].url != pruned[i].url || full[i].score != pruned[i].score) {
        cluster_exact = false;
      }
    }
    full_stats_sum.postings_touched_total += full_stats.postings_touched_total;
    full_stats_sum.blocks_skipped += full_stats.blocks_skipped;
    prune_stats_sum.postings_touched_total +=
        prune_stats.postings_touched_total;
    prune_stats_sum.blocks_skipped += prune_stats.blocks_skipped;
  }
  double touched_ratio =
      full_stats_sum.postings_touched_total > 0
          ? static_cast<double>(prune_stats_sum.postings_touched_total) /
                static_cast<double>(full_stats_sum.postings_touched_total)
          : 1.0;
  std::printf(
      "\ncluster (%zu nodes, sequential threshold feedback): "
      "postings_touched %zu -> %zu (%.1f%%), blocks_skipped %zu, exact %s\n",
      kClusterNodes, full_stats_sum.postings_touched_total,
      prune_stats_sum.postings_touched_total, touched_ratio * 100.0,
      prune_stats_sum.blocks_skipped, cluster_exact ? "yes" : "NO");
  std::printf(
      "(vs_pr1 = wall-clock speedup over the PR-1 accumulator kernel; "
      "exact: bits = bit-identical docs+scores, docs = same ranking)\n");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"ir_kernel\",\n"
      "  \"corpus\": {\"docs\": %d, \"words_per_doc\": %d, \"vocab\": %zu, "
      "\"zipf_theta\": %.2f, \"queries\": %d, \"terms_per_query\": %d, "
      "\"top_n\": %zu},\n"
      "  \"variants\": {\n"
      "    \"pr1_accumulator_batch_ms\": %.3f,\n"
      "    \"scalar_batch_ms\": %.3f,\n"
      "    \"block_batch_ms\": %.3f,\n"
      "    \"block_prune_batch_ms\": %.3f\n"
      "  },\n"
      "  \"speedups\": {\n"
      "    \"scalar_vs_pr1\": %.3f,\n"
      "    \"block_vs_pr1\": %.3f,\n"
      "    \"block_prune_vs_pr1\": %.3f,\n"
      "    \"block_prune_vs_block\": %.3f\n"
      "  },\n"
      "  \"exact\": {\"block_bit_identical\": %s, "
      "\"prune_bit_identical\": %s, \"pr1_same_docs\": %s, "
      "\"cluster_prune_identical\": %s},\n"
      "  \"cluster_pruning\": {\"nodes\": %zu, "
      "\"postings_touched_full\": %zu, \"postings_touched_pruned\": %zu, "
      "\"postings_touched_ratio\": %.4f, \"blocks_skipped\": %zu}\n"
      "}\n",
      kDocs, kWordsPerDoc, kVocab, kZipfTheta, kQueries, kTermsPerQuery, kTopN,
      pr1_ms, scalar_ms, block_ms, prune_ms, pr1_ms / scalar_ms,
      pr1_ms / block_ms, pr1_ms / prune_ms, block_ms / prune_ms,
      block_exact ? "true" : "false", prune_exact ? "true" : "false",
      pr1_same_docs ? "true" : "false", cluster_exact ? "true" : "false",
      kClusterNodes, full_stats_sum.postings_touched_total,
      prune_stats_sum.postings_touched_total, touched_ratio,
      prune_stats_sum.blocks_skipped);
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
