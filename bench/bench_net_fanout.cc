// Shard RPC fan-out benchmark: the cost of moving the cluster's nodes
// out of process (src/net) against the in-process baseline, on the
// E4-style Zipf corpus.
//
// Variants, all answering the same query batch over the same 4-node
// cluster:
//   inprocess        ClusterIndex::Query — function calls, no frames
//   loopback         RemoteClusterIndex over LoopbackTransport: full
//                    wire encode/decode, no sockets — the protocol's
//                    CPU cost in isolation
//   loopback_batched one QueryRequest frame carries the whole batch
//   tcp              RemoteClusterIndex over real localhost sockets
//   tcp_batched      the batch hook over TCP — one round-trip per node
//
// Wire traffic (bytes/query, messages/query) comes from the measured
// ClusterQueryStats of the remote paths. Bit-identity of every remote
// variant against the in-process ranking is reported under exact.* —
// ci/bench_gate.py fails the gate if it ever goes false.
//
// The replica section runs the same cluster behind 2 loopback replicas
// per shard and measures per-query latency percentiles in three
// states: healthy (also primes the adaptive hedge budget window),
// one_slow (replica 0 of every shard delayed 10x the healthy median —
// hedging plus health rerouting must keep p99 within 2x the healthy
// p99, gated as replica.one_slow.p99_over_healthy_p99), and one_dead
// (replica 0 killed under a cold router — failover must keep answers
// whole). Both degraded states must stay bit-identical to in-process.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_net.json, or argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/cluster.h"
#include "net/remote_cluster.h"
#include "net/shard_server.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace dls {
namespace {

constexpr size_t kNodes = 4;
constexpr size_t kFragments = 4;
constexpr int kDocs = 4000;
constexpr int kWordsPerDoc = 60;
constexpr size_t kVocab = 2000;
constexpr double kZipfTheta = 1.1;
constexpr int kQueries = 16;
constexpr int kTermsPerQuery = 3;
constexpr size_t kTopN = 10;
constexpr int kReps = 3;  // best-of wall clock per variant

void BuildCorpus(ir::ClusterIndex* cluster) {
  Rng rng(4);
  ZipfSampler zipf(kVocab, kZipfTheta);
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    body.reserve(kWordsPerDoc * 9);
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    cluster->AddDocument(StrFormat("doc%05d", d), body);
  }
  cluster->Finalize();
}

std::vector<std::vector<std::string>> MakeQueries() {
  Rng rng(5);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

template <typename Body>
double MeasureMs(Body&& body) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    body();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

bool BitIdentical(const std::vector<ir::ClusterScoredDoc>& a,
                  const std::vector<ir::ClusterScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bits_a, bits_b;
    std::memcpy(&bits_a, &a[i].score, sizeof(bits_a));
    std::memcpy(&bits_b, &b[i].score, sizeof(bits_b));
    if (a[i].url != b[i].url || bits_a != bits_b) return false;
  }
  return true;
}

constexpr size_t kReplicasPerShard = 2;
constexpr int kReplicaRounds = 400;  // per-query latency samples/state

double Percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  return samples[static_cast<size_t>(pos + 0.5)];
}

/// One replica-scenario pass: kReplicaRounds queries cycled from the
/// batch, each individually timed and bit-checked against `reference`.
struct ReplicaRun {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hedge_rate = 0.0;  // hedges per shard exchange
  uint64_t hedge_wins = 0;
  uint64_t failovers = 0;
  bool exact = true;
};

ReplicaRun RunReplicaRounds(
    net::RemoteClusterIndex* remote,
    const std::vector<std::vector<std::string>>& queries,
    const std::vector<std::vector<ir::ClusterScoredDoc>>& reference) {
  ReplicaRun run;
  const net::RemoteClusterIndex::ReplicaCounters before =
      remote->replica_counters();
  std::vector<double> latencies;
  latencies.reserve(kReplicaRounds);
  for (int round = 0; round < kReplicaRounds; ++round) {
    const size_t q = static_cast<size_t>(round) % queries.size();
    Timer timer;
    auto results = remote->Query(queries[q], kTopN, kFragments);
    latencies.push_back(timer.ElapsedMillis());
    if (!BitIdentical(reference[q], results)) run.exact = false;
  }
  const net::RemoteClusterIndex::ReplicaCounters after =
      remote->replica_counters();
  run.p50_ms = Percentile(latencies, 0.50);
  run.p99_ms = Percentile(latencies, 0.99);
  run.hedge_rate = static_cast<double>(after.hedges_fired -
                                       before.hedges_fired) /
                   static_cast<double>(kReplicaRounds * kNodes);
  run.hedge_wins = after.hedge_wins - before.hedge_wins;
  run.failovers = after.failovers - before.failovers;
  return run;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_net.json";

  ir::ClusterIndex cluster(kNodes, kFragments);
  BuildCorpus(&cluster);
  auto queries = MakeQueries();

  net::ShardServer server;
  for (size_t i = 0; i < kNodes; ++i) {
    server.AddNode(&cluster.node_index(i), &cluster.node_fragments(i));
  }
  if (!server.Start(0).ok()) {
    std::fprintf(stderr, "cannot start shard server\n");
    return 1;
  }

  std::vector<std::unique_ptr<net::Transport>> loop_transports;
  std::vector<std::unique_ptr<net::Transport>> tcp_transports;
  std::vector<net::RemoteClusterIndex::Shard> loop_shards, tcp_shards;
  for (size_t i = 0; i < kNodes; ++i) {
    loop_transports.push_back(
        std::make_unique<net::LoopbackTransport>(server.Handler()));
    tcp_transports.push_back(
        std::make_unique<net::TcpTransport>("127.0.0.1", server.port()));
    loop_shards.push_back(
        {loop_transports[i].get(), static_cast<uint32_t>(i)});
    tcp_shards.push_back({tcp_transports[i].get(), static_cast<uint32_t>(i)});
  }
  net::RemoteClusterIndex loopback(std::move(loop_shards));
  net::RemoteClusterIndex tcp(std::move(tcp_shards));
  if (!loopback.Connect().ok() || !tcp.Connect().ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  // ---- Bit-identity of every remote variant vs in-process.
  bool loopback_exact = true;
  bool tcp_exact = true;
  bool batch_exact = true;
  std::vector<std::vector<ir::ClusterScoredDoc>> reference;
  for (const auto& q : queries) {
    reference.push_back(cluster.Query(q, kTopN, kFragments));
  }
  auto tcp_batched_results = tcp.QueryBatch(queries, kTopN, kFragments);
  for (size_t q = 0; q < queries.size(); ++q) {
    if (!BitIdentical(reference[q],
                      loopback.Query(queries[q], kTopN, kFragments))) {
      loopback_exact = false;
    }
    if (!BitIdentical(reference[q],
                      tcp.Query(queries[q], kTopN, kFragments))) {
      tcp_exact = false;
    }
    if (!BitIdentical(reference[q], tcp_batched_results[q])) {
      batch_exact = false;
    }
  }

  // ---- Wire traffic per query, measured on the encoded frames.
  ir::ClusterQueryStats per_query_stats, batched_stats;
  for (const auto& q : queries) {
    ir::ClusterQueryStats stats;
    loopback.Query(q, kTopN, kFragments, &stats);
    per_query_stats.messages += stats.messages;
    per_query_stats.bytes_shipped += stats.bytes_shipped;
  }
  loopback.QueryBatch(queries, kTopN, kFragments, &batched_stats);
  const double bytes_per_query =
      static_cast<double>(per_query_stats.bytes_shipped) / kQueries;
  const double messages_per_query =
      static_cast<double>(per_query_stats.messages) / kQueries;
  const double batched_bytes_per_query =
      static_cast<double>(batched_stats.bytes_shipped) / kQueries;

  // ---- Wall clock per variant over the batch.
  double inprocess_ms = MeasureMs([&] {
    for (const auto& q : queries) cluster.Query(q, kTopN, kFragments);
  });
  double loopback_ms = MeasureMs([&] {
    for (const auto& q : queries) loopback.Query(q, kTopN, kFragments);
  });
  double loopback_batched_ms =
      MeasureMs([&] { loopback.QueryBatch(queries, kTopN, kFragments); });
  double tcp_ms = MeasureMs([&] {
    for (const auto& q : queries) tcp.Query(q, kTopN, kFragments);
  });
  double tcp_batched_ms =
      MeasureMs([&] { tcp.QueryBatch(queries, kTopN, kFragments); });

  // ---- Replica scenarios: 2 loopback replicas per shard.
  std::vector<std::vector<std::unique_ptr<net::LoopbackTransport>>>
      replica_transports(kNodes);
  std::vector<net::RemoteClusterIndex::ReplicaSet> replica_sets(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    for (size_t r = 0; r < kReplicasPerShard; ++r) {
      replica_transports[i].push_back(
          std::make_unique<net::LoopbackTransport>(server.Handler()));
      replica_sets[i].replicas.push_back(
          {replica_transports[i][r].get(), static_cast<uint32_t>(i)});
    }
  }
  ReplicaRun healthy, one_slow, one_dead;
  int slow_delay_ms = 0;
  {
    net::RemoteClusterIndex replicated(
        std::vector<net::RemoteClusterIndex::ReplicaSet>(replica_sets), {});
    if (!replicated.Connect().ok()) {
      std::fprintf(stderr, "replica connect failed\n");
      return 1;
    }
    // Healthy pass doubles as hedge-budget priming: the rolling window
    // fills with real exchange latencies, so one_slow runs against an
    // adaptive p95 budget, not a guess.
    healthy = RunReplicaRounds(&replicated, queries, reference);
    slow_delay_ms = std::max(1, static_cast<int>(healthy.p50_ms * 10.0 + 0.5));
    for (size_t i = 0; i < kNodes; ++i) {
      replica_transports[i][0]->SetLatency(slow_delay_ms);
    }
    one_slow = RunReplicaRounds(&replicated, queries, reference);
    // ~RemoteClusterIndex drains hedge losers still sleeping on the
    // slowed transports.
  }
  {
    // Fresh router (cold health state) so the dead primary is actually
    // tried: every shard's first exchange must fail over.
    net::RemoteClusterIndex replicated(
        std::vector<net::RemoteClusterIndex::ReplicaSet>(replica_sets), {});
    for (size_t i = 0; i < kNodes; ++i) {
      replica_transports[i][0]->SetLatency(0);
    }
    if (!replicated.Connect().ok()) {
      std::fprintf(stderr, "replica reconnect failed\n");
      return 1;
    }
    for (size_t i = 0; i < kNodes; ++i) replica_transports[i][0]->Kill();
    one_dead = RunReplicaRounds(&replicated, queries, reference);
  }
  const double p99_over_healthy =
      healthy.p99_ms > 0 ? one_slow.p99_ms / healthy.p99_ms : 0.0;

  std::printf(
      "net fan-out: %zu nodes, %d docs, %d queries x %d terms, top %zu\n"
      "wire: %.0f bytes/query, %.1f messages/query "
      "(batched: %.0f bytes/query)\n\n",
      kNodes, kDocs, kQueries, kTermsPerQuery, kTopN, bytes_per_query,
      messages_per_query, batched_bytes_per_query);

  struct Row {
    const char* name;
    double ms;
    bool exact;
  };
  Row rows[] = {
      {"inprocess", inprocess_ms, true},
      {"loopback", loopback_ms, loopback_exact},
      {"loopback_batched", loopback_batched_ms, loopback_exact},
      {"tcp", tcp_ms, tcp_exact},
      {"tcp_batched", tcp_batched_ms, batch_exact},
  };
  std::printf("%-18s %-10s %-12s %-12s %-8s\n", "variant", "batch_ms",
              "ms/query", "vs_inproc", "exact");
  for (const Row& r : rows) {
    std::printf("%-18s %-10.2f %-12.4f %-12.2f %-8s\n", r.name, r.ms,
                r.ms / kQueries, r.ms / inprocess_ms,
                r.exact ? "bits" : "NO");
  }
  std::printf(
      "(vs_inproc = protocol+transport overhead factor; exact: bits = "
      "bit-identical docs+scores vs in-process)\n");

  std::printf(
      "\nreplica sets: %zu replicas/shard over loopback, %d rounds/state\n"
      "%-10s %-10s %-10s %-12s %-12s %-8s\n",
      kReplicasPerShard, kReplicaRounds, "state", "p50_ms", "p99_ms",
      "hedge_rate", "failovers", "exact");
  struct ReplicaRow {
    const char* name;
    const ReplicaRun* run;
  };
  ReplicaRow replica_rows[] = {
      {"healthy", &healthy}, {"one_slow", &one_slow}, {"one_dead", &one_dead}};
  for (const ReplicaRow& r : replica_rows) {
    std::printf("%-10s %-10.4f %-10.4f %-12.3f %-12llu %-8s\n", r.name,
                r.run->p50_ms, r.run->p99_ms, r.run->hedge_rate,
                static_cast<unsigned long long>(r.run->failovers),
                r.run->exact ? "bits" : "NO");
  }
  std::printf(
      "(one_slow: replica 0 of every shard delayed %d ms = 10x healthy "
      "median; p99 %.2fx healthy p99, %llu hedge wins. one_dead: replica 0 "
      "killed under a cold router.)\n",
      slow_delay_ms, p99_over_healthy,
      static_cast<unsigned long long>(one_slow.hedge_wins));

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"net_fanout\",\n"
      "  \"corpus\": {\"nodes\": %zu, \"fragments\": %zu, \"docs\": %d, "
      "\"words_per_doc\": %d, \"vocab\": %zu, \"zipf_theta\": %.2f, "
      "\"queries\": %d, \"terms_per_query\": %d, \"top_n\": %zu},\n"
      "  \"wire\": {\n"
      "    \"bytes_per_query\": %.1f,\n"
      "    \"messages_per_query\": %.2f,\n"
      "    \"batched_bytes_per_query\": %.1f\n"
      "  },\n"
      "  \"variants\": {\n"
      "    \"inprocess_batch_ms\": %.3f,\n"
      "    \"loopback_batch_ms\": %.3f,\n"
      "    \"loopback_batched_batch_ms\": %.3f,\n"
      "    \"tcp_batch_ms\": %.3f,\n"
      "    \"tcp_batched_batch_ms\": %.3f\n"
      "  },\n"
      "  \"overhead\": {\n"
      "    \"loopback_vs_inprocess\": %.3f,\n"
      "    \"tcp_vs_inprocess\": %.3f,\n"
      "    \"tcp_batched_vs_tcp\": %.3f\n"
      "  },\n"
      "  \"replica\": {\n"
      "    \"replicas_per_shard\": %zu,\n"
      "    \"rounds_per_state\": %d,\n"
      "    \"healthy\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
      "\"hedge_rate\": %.4f},\n"
      "    \"one_slow\": {\"delay_ms\": %d, \"p50_ms\": %.4f, "
      "\"p99_ms\": %.4f, \"p99_over_healthy_p99\": %.3f, "
      "\"hedge_rate\": %.4f, \"hedge_wins\": %llu},\n"
      "    \"one_dead\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
      "\"failovers\": %llu}\n"
      "  },\n"
      "  \"exact\": {\"loopback_bit_identical\": %s, "
      "\"tcp_bit_identical\": %s, \"tcp_batched_bit_identical\": %s, "
      "\"replica_hedged_bit_identical\": %s, "
      "\"replica_failover_bit_identical\": %s}\n"
      "}\n",
      kNodes, kFragments, kDocs, kWordsPerDoc, kVocab, kZipfTheta, kQueries,
      kTermsPerQuery, kTopN, bytes_per_query, messages_per_query,
      batched_bytes_per_query, inprocess_ms, loopback_ms, loopback_batched_ms,
      tcp_ms, tcp_batched_ms, loopback_ms / inprocess_ms,
      tcp_ms / inprocess_ms, tcp_ms > 0 ? tcp_batched_ms / tcp_ms : 0.0,
      kReplicasPerShard, kReplicaRounds, healthy.p50_ms, healthy.p99_ms,
      healthy.hedge_rate, slow_delay_ms, one_slow.p50_ms, one_slow.p99_ms,
      p99_over_healthy, one_slow.hedge_rate,
      static_cast<unsigned long long>(one_slow.hedge_wins), one_dead.p50_ms,
      one_dead.p99_ms, static_cast<unsigned long long>(one_dead.failovers),
      loopback_exact ? "true" : "false", tcp_exact ? "true" : "false",
      batch_exact ? "true" : "false",
      (healthy.exact && one_slow.exact) ? "true" : "false",
      one_dead.exact ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  server.Stop();
  return 0;
}
