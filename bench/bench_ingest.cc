// Live-ingestion benchmark: query latency while the corpus churns.
//
// The claim under test is the tentpole of the ingest subsystem: a
// LiveIndex keeps serving *exact* rankings while documents are
// inserted, deleted and background-merged — and the merge costs
// latency, not correctness. Phases:
//
//   load       bulk-insert the corpus through the delta tier (reports
//              insert throughput)
//   quiesced   per-query latency with no writer activity — the p99
//              baseline
//   churn      the same query stream while a writer thread inserts,
//              deletes and repeatedly merges; a snapshot pinned before
//              the churn is re-queried throughout and must never
//              change (pinned readers are unharmed by the swap)
//   merge      one timed merge packing the accumulated delta tier
//              (reports merge throughput)
//
// The exact.* booleans gate in ci/bench_gate.py:
//   delta_bit_identical     quiesced rankings (kernels x pruning, with
//                           live delta parts and tombstones) match a
//                           from-scratch TextIndex over the surviving
//                           documents bit for bit
//   served_during_merge     every query under churn answered, ordered
//                           and tombstone-free, and the pinned
//                           snapshot's rankings never moved
//   merge_preserves_ranking post-merge rankings still match the
//                           rebuild at the final epoch
//
// Two gated timing ratios (both sides measured in this run, so a miss
// is retryable like the other timing gates):
//   ingest.p50_merge_over_quiesced  the headline claim — the *median*
//       query must not feel the merge (pinned snapshots mean no reader
//       ever blocks; only CPU contention remains)
//   ingest.p99_merge_over_quiesced  the tail may pay for the merge's
//       CPU burst — on a single core a query can wait out whole merge
//       timeslices — but boundedly so
// The raw _us latencies are machine-dependent and stay ungated.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_ingest.json, or argv[1]).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"
#include "ingest/live_index.h"
#include "ir/index.h"
#include "synth/corpus.h"

namespace dls {
namespace {

constexpr int kDocs = 2000;
constexpr int kChurnDocs = 1200;
constexpr int kWordsPerDoc = 40;
constexpr size_t kVocab = 1500;
constexpr double kZipfTheta = 1.1;
constexpr int kQueryPool = 12;
constexpr int kTermsPerQuery = 3;
constexpr size_t kTopN = 10;
constexpr int kDeleteEvery = 7;  ///< every 7th loaded doc is tombstoned
constexpr size_t kDeltaSeal = 64;
constexpr size_t kNumFragments = 4;
constexpr int kLatencyIters = 600;      ///< queries per latency phase
constexpr int kChurnBatch = 48;         ///< inserts between churn merges
constexpr int kPinnedCheckEvery = 25;   ///< pinned-snapshot re-check cadence

synth::CorpusSpec IngestSpec() {
  synth::CorpusSpec spec;
  spec.seed = 9;
  spec.documents = kDocs + kChurnDocs;
  spec.words_per_doc = kWordsPerDoc;
  spec.vocabulary = kVocab;
  spec.zipf_theta = kZipfTheta;
  return spec;
}

struct ShadowDoc {
  std::string url;
  std::string text;
  bool alive = true;
};

/// The reference: a plain TextIndex over the surviving documents in
/// insertion order — what a full reindex at this epoch would produce.
std::unique_ptr<ir::TextIndex> Rebuild(const std::vector<ShadowDoc>& docs) {
  ir::TextIndex::Options opts;
  opts.flush_batch = docs.size() + 2;
  auto index = std::make_unique<ir::TextIndex>(opts);
  for (const ShadowDoc& d : docs) {
    if (d.alive) index->AddDocument(d.url, d.text);
  }
  index->Flush();
  return index;
}

bool BitIdentical(const std::vector<ingest::LiveScoredDoc>& got,
                  const std::vector<ir::ScoredDoc>& want,
                  const ir::TextIndex& rebuild) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    uint64_t bits_got, bits_want;
    std::memcpy(&bits_got, &got[i].score, sizeof(bits_got));
    std::memcpy(&bits_want, &want[i].score, sizeof(bits_want));
    if (got[i].url != rebuild.url(want[i].doc) || bits_got != bits_want) {
      return false;
    }
  }
  return true;
}

/// Rankings at every kernel x pruning combination vs the rebuild —
/// the sweep behind exact.delta_bit_identical / merge_preserves_ranking.
bool SweepBitIdentical(const ingest::LiveIndex& live,
                       const std::vector<ShadowDoc>& docs,
                       const std::vector<std::vector<std::string>>& queries) {
  std::unique_ptr<ir::TextIndex> rebuild = Rebuild(docs);
  const std::shared_ptr<const ingest::LiveIndex::Snapshot> snap = live.Pin();
  const ir::ScoreKernel kernels[] = {ir::ScoreKernel::kScalar,
                                     ir::ScoreKernel::kBlock,
                                     ir::ScoreKernel::kPacked};
  for (const auto& query : queries) {
    for (ir::ScoreKernel kernel : kernels) {
      for (bool prune : {false, true}) {
        ir::RankOptions options;
        options.kernel = kernel;
        options.prune = prune;
        std::vector<ir::ScoredDoc> want =
            rebuild->RankTopN(query, kTopN, options);
        std::vector<ingest::LiveScoredDoc> got =
            snap->Query(query, kTopN, options);
        if (!BitIdentical(got, want, *rebuild)) return false;
      }
    }
  }
  return true;
}

struct LatencyStats {
  double p50_us = 0;
  double p99_us = 0;
  double mean_us = 0;
};

LatencyStats Summarize(std::vector<double> samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.p50_us = samples[samples.size() / 2];
  stats.p99_us = samples[samples.size() * 99 / 100];
  double sum = 0;
  for (double s : samples) sum += s;
  stats.mean_us = sum / static_cast<double>(samples.size());
  return stats;
}

/// One latency phase: `iters` queries round-robin over the pool,
/// per-query wall time in microseconds. `well_formed` drops to false
/// on any answer that is unsorted, over-long or serves a tombstoned
/// document — the cheap self-consistency check that can run per query
/// while the index churns (full bit-identity needs a rebuild per
/// epoch; the ingest tests do that, the bench samples it at the
/// quiesced checkpoints).
std::vector<double> RunQueries(const ingest::LiveIndex& live,
                               const std::vector<std::vector<std::string>>&
                                   queries,
                               int iters, bool* well_formed) {
  ir::RankOptions options;
  options.prune = true;
  std::vector<double> samples;
  samples.reserve(iters);
  for (int i = 0; i < iters; ++i) {
    const auto& query = queries[static_cast<size_t>(i) % queries.size()];
    Timer timer;
    const std::shared_ptr<const ingest::LiveIndex::Snapshot> snap =
        live.Pin();
    std::vector<ingest::LiveScoredDoc> got =
        snap->Query(query, kTopN, options);
    samples.push_back(timer.ElapsedMillis() * 1000.0);
    if (got.size() > kTopN) *well_formed = false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (r > 0 && got[r].score > got[r - 1].score) *well_formed = false;
      if (snap->IsDeleted(got[r].id)) *well_formed = false;
    }
  }
  return samples;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_ingest.json";

  const synth::SyntheticCorpus corpus(IngestSpec());
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueryPool; ++q) {
    queries.push_back(corpus.Query(static_cast<uint64_t>(q), kTermsPerQuery));
  }

  ingest::LiveIndexOptions live_options;
  live_options.delta_seal_docs = kDeltaSeal;
  live_options.num_fragments = kNumFragments;
  ingest::LiveIndex live(live_options);
  std::vector<ShadowDoc> shadow;
  shadow.reserve(kDocs + kChurnDocs);

  // ---- load: the whole corpus through the delta tier ----------------
  Timer load_timer;
  corpus.ForEach(0, kDocs,
                 [&](size_t, const std::string& url, const std::string& body) {
                   if (!live.Insert(url, body).ok()) std::abort();
                   shadow.push_back({url, body, true});
                 });
  for (int d = 0; d < kDocs; d += kDeleteEvery) {
    if (!live.Delete(shadow[d].url)) std::abort();
    shadow[d].alive = false;
  }
  const double load_s = load_timer.ElapsedMillis() / 1000.0;
  const double insert_docs_per_s = load_s > 0 ? kDocs / load_s : 0;

  // ---- quiesced: bit-identity sweep + latency baseline --------------
  const bool delta_bit_identical = SweepBitIdentical(live, shadow, queries);
  bool quiesced_ok = true;
  const LatencyStats quiesced =
      Summarize(RunQueries(live, queries, kLatencyIters, &quiesced_ok));

  // ---- churn: queries race inserts, deletes and merges --------------
  // The pre-churn pinned snapshot and its answers: whatever the writer
  // does, this epoch's rankings must never move under the reader.
  const std::shared_ptr<const ingest::LiveIndex::Snapshot> pinned =
      live.Pin();
  ir::RankOptions pinned_options;
  pinned_options.prune = true;
  std::vector<std::vector<ingest::LiveScoredDoc>> pinned_want;
  for (const auto& query : queries) {
    pinned_want.push_back(pinned->Query(query, kTopN, pinned_options));
  }

  std::vector<std::pair<std::string, std::string>> churn_docs;
  corpus.ForEach(kDocs, kDocs + kChurnDocs,
                 [&](size_t, const std::string& url, const std::string& body) {
                   churn_docs.push_back({url, body});
                 });
  std::atomic<bool> stop_churn{false};
  std::atomic<bool> churn_failed{false};
  // What the churn thread actually applied, in insertion order; read
  // only after join, so no lock — the post-merge rebuild appends it to
  // the main shadow verbatim.
  std::vector<ShadowDoc> churn_shadow;
  churn_shadow.reserve(churn_docs.size());
  std::thread churn([&] {
    size_t next = 0;
    while (!stop_churn.load(std::memory_order_acquire) &&
           next < churn_docs.size()) {
      for (int b = 0; b < kChurnBatch && next < churn_docs.size();
           ++b, ++next) {
        if (!live.Insert(churn_docs[next].first, churn_docs[next].second)
                 .ok()) {
          churn_failed.store(true, std::memory_order_release);
          return;
        }
        const bool deleted = next % kDeleteEvery == 0;
        if (deleted && !live.Delete(churn_docs[next].first)) {
          churn_failed.store(true, std::memory_order_release);
          return;
        }
        churn_shadow.push_back(
            {churn_docs[next].first, churn_docs[next].second, !deleted});
      }
      live.Merge();
    }
  });

  bool during_ok = true;
  bool pinned_stable = true;
  ir::RankOptions options;
  options.prune = true;
  std::vector<double> during_samples;
  during_samples.reserve(kLatencyIters);
  for (int i = 0; i < kLatencyIters; ++i) {
    const auto& query = queries[static_cast<size_t>(i) % queries.size()];
    Timer timer;
    const std::shared_ptr<const ingest::LiveIndex::Snapshot> snap =
        live.Pin();
    std::vector<ingest::LiveScoredDoc> got = snap->Query(query, kTopN, options);
    during_samples.push_back(timer.ElapsedMillis() * 1000.0);
    if (got.size() > kTopN) during_ok = false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (r > 0 && got[r].score > got[r - 1].score) during_ok = false;
      if (snap->IsDeleted(got[r].id)) during_ok = false;
    }
    if (i % kPinnedCheckEvery == 0) {
      const size_t qi = static_cast<size_t>(i) % queries.size();
      std::vector<ingest::LiveScoredDoc> again =
          pinned->Query(queries[qi], kTopN, pinned_options);
      if (again.size() != pinned_want[qi].size()) pinned_stable = false;
      for (size_t r = 0; r < again.size() && pinned_stable; ++r) {
        if (again[r].id != pinned_want[qi][r].id ||
            again[r].score != pinned_want[qi][r].score) {
          pinned_stable = false;
        }
      }
    }
  }
  stop_churn.store(true, std::memory_order_release);
  churn.join();
  const uint64_t merges_during = live.merges();
  const LatencyStats during = Summarize(std::move(during_samples));
  const bool served_during_merge = during_ok && pinned_stable &&
                                   !churn_failed.load() && merges_during > 0;

  // The churn thread applied a prefix of churn_docs (one entry per
  // applied document); the rest becomes the timed merge's delta tier.
  const size_t churn_applied = churn_shadow.size();
  for (ShadowDoc& doc : churn_shadow) shadow.push_back(std::move(doc));
  for (size_t i = churn_applied; i < churn_docs.size(); ++i) {
    if (!live.Insert(churn_docs[i].first, churn_docs[i].second).ok()) {
      std::abort();
    }
    const bool deleted = i % kDeleteEvery == 0;
    if (deleted && !live.Delete(churn_docs[i].first)) std::abort();
    shadow.push_back({churn_docs[i].first, churn_docs[i].second, !deleted});
  }

  // ---- merge: pack the accumulated delta tier, timed ----------------
  const ingest::LiveIndexStats before = live.Stats();
  Timer merge_timer;
  live.Merge();
  const double merge_s = merge_timer.ElapsedMillis() / 1000.0;
  const double merge_docs_per_s =
      merge_s > 0 ? static_cast<double>(before.delta_docs) / merge_s : 0;

  // ---- post-merge bit-identity at the final epoch -------------------
  const bool merge_preserves_ranking =
      SweepBitIdentical(live, shadow, queries);

  const double p50_ratio =
      quiesced.p50_us > 0 ? during.p50_us / quiesced.p50_us : 0;
  const double p99_ratio =
      quiesced.p99_us > 0 ? during.p99_us / quiesced.p99_us : 0;
  const ingest::LiveIndexStats final_stats = live.Stats();

  std::printf(
      "live ingestion: %d docs + %d churned, vocab %zu, %d queries, "
      "top %zu, seal %zu\n\n",
      kDocs, kChurnDocs, kVocab, kQueryPool, kTopN, kDeltaSeal);
  std::printf("load      %8.0f docs/s\n", insert_docs_per_s);
  std::printf("quiesced  p50 %7.0f us  p99 %7.0f us\n", quiesced.p50_us,
              quiesced.p99_us);
  std::printf("churn     p50 %7.0f us  p99 %7.0f us  (%llu merges)\n",
              during.p50_us, during.p99_us,
              static_cast<unsigned long long>(merges_during));
  std::printf("merge     %8.0f docs/s (%zu delta docs in %.3f s)\n",
              merge_docs_per_s, before.delta_docs, merge_s);
  std::printf("during merge / quiesced: p50 %.2fx  p99 %.2fx\n", p50_ratio,
              p99_ratio);
  std::printf(
      "\nexact: delta_bit_identical=%s served_during_merge=%s "
      "merge_preserves_ranking=%s\n",
      delta_bit_identical ? "true" : "false",
      served_during_merge ? "true" : "false",
      merge_preserves_ranking ? "true" : "false");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"ingest\",\n"
      "  \"corpus\": {\"docs\": %d, \"churn_docs\": %d, \"words_per_doc\": "
      "%d, \"vocab\": %zu, \"zipf_theta\": %.2f, \"query_pool\": %d, "
      "\"terms_per_query\": %d, \"top_n\": %zu},\n"
      "  \"config\": {\"delta_seal_docs\": %zu, \"num_fragments\": %zu, "
      "\"churn_batch\": %d},\n"
      "  \"latency\": {\n"
      "    \"p50_quiesced_us\": %.1f,\n"
      "    \"p99_quiesced_us\": %.1f,\n"
      "    \"p50_during_merge_us\": %.1f,\n"
      "    \"p99_during_merge_us\": %.1f\n"
      "  },\n"
      "  \"ingest\": {\n"
      "    \"insert_docs_per_s\": %.0f,\n"
      "    \"merge_docs_per_s\": %.0f,\n"
      "    \"merges_during_churn\": %llu,\n"
      "    \"final_parts\": %zu,\n"
      "    \"final_live_docs\": %zu,\n"
      "    \"p50_merge_over_quiesced\": %.3f,\n"
      "    \"p99_merge_over_quiesced\": %.3f\n"
      "  },\n"
      "  \"exact\": {\"delta_bit_identical\": %s, \"served_during_merge\": "
      "%s, \"merge_preserves_ranking\": %s}\n"
      "}\n",
      kDocs, kChurnDocs, kWordsPerDoc, kVocab, kZipfTheta, kQueryPool,
      kTermsPerQuery, kTopN, kDeltaSeal, kNumFragments, kChurnBatch,
      quiesced.p50_us, quiesced.p99_us, during.p50_us, during.p99_us,
      insert_docs_per_s, merge_docs_per_s,
      static_cast<unsigned long long>(merges_during), final_stats.parts,
      final_stats.live_docs, p50_ratio, p99_ratio,
      delta_bit_identical ? "true" : "false",
      served_during_merge ? "true" : "false",
      merge_preserves_ranking ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return (delta_bit_identical && served_during_merge &&
          merge_preserves_ranking && quiesced_ok)
             ? 0
             : 1;
}
