// Compressed posting-block codec benchmark: space and speed of the
// delta/varint encoding (src/ir/codec.h) on the E4-style Zipf corpus.
//
// Space: bytes/posting of the packed blocks against the 8-byte SoA
// posting (4-byte doc id + 4-byte tf), reported as compression_ratio.
//
// Speed:
//   decode_mpostings_per_s — DecodePackedBlock over every block of
//                            every list into a stack buffer (the packed
//                            kernel's extra work per scored block).
//   scan_mpostings_per_s   — the same traversal reading the SoA arrays
//                            (what the block kernel pays), so
//                            decode_vs_scan isolates the decompression
//                            overhead from the scoring arithmetic.
// End to end: TextIndex::RankTopN batch time under the packed, block
// and scalar kernels, exhaustive and pruned — packed_vs_block is the
// query-level price of scoring from compressed postings.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_codec.json, or argv[1]). ci/bench_gate.py compares the JSON
// against the committed baseline.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/codec.h"
#include "ir/index.h"
#include "ir/kernel.h"
#include "ir/postings.h"

namespace dls {
namespace {

// Same corpus shape as bench_ir_kernel so the two JSON reports describe
// one workload.
constexpr int kDocs = 8000;
constexpr int kWordsPerDoc = 80;
constexpr size_t kVocab = 3000;
constexpr double kZipfTheta = 1.1;
constexpr int kQueries = 24;
constexpr int kTermsPerQuery = 4;
constexpr size_t kTopN = 10;
constexpr int kReps = 3;  // best-of wall clock per variant

void BuildCorpus(ir::TextIndex* index) {
  Rng rng(4);
  ZipfSampler zipf(kVocab, kZipfTheta);
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    body.reserve(kWordsPerDoc * 9);
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    index->AddDocument(StrFormat("doc%05d", d), body);
  }
  index->Flush();
}

std::vector<std::vector<std::string>> MakeQueries() {
  Rng rng(5);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

template <typename Body>
double MeasureMs(Body&& body) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    body();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

bool BitIdentical(const std::vector<ir::ScoredDoc>& a,
                  const std::vector<ir::ScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].doc != b[i].doc || a[i].score != b[i].score) return false;
  }
  return true;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_codec.json";

  ir::TextIndex index;
  BuildCorpus(&index);
  auto queries = MakeQueries();

  // ---- Space: packed vs SoA bytes over the whole inverted file.
  size_t total_postings = 0;
  size_t unpacked_bytes = 0;
  size_t packed_bytes = 0;
  for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
    const ir::PostingList& list = index.postings(t);
    total_postings += list.size();
    unpacked_bytes += list.unpacked_byte_size();
    packed_bytes += list.packed_byte_size();
  }
  const double unpacked_per_posting =
      static_cast<double>(unpacked_bytes) / static_cast<double>(total_postings);
  const double packed_per_posting =
      static_cast<double>(packed_bytes) / static_cast<double>(total_postings);
  const double compression_ratio = unpacked_per_posting / packed_per_posting;

  std::printf(
      "codec: %d docs, %d words/doc, vocab %zu -> %zu postings\n"
      "bytes/posting: unpacked %.2f, packed %.2f (%.2fx smaller)\n\n",
      kDocs, kWordsPerDoc, kVocab, total_postings, unpacked_per_posting,
      packed_per_posting, compression_ratio);

  // ---- Raw traversal: decode every packed block vs scan the SoA
  // arrays, both reduced into a sink so neither loop can be elided.
  uint64_t sink = 0;
  double decode_ms = MeasureMs([&] {
    ir::DocId docs[ir::kPostingBlockSize];
    int32_t tfs[ir::kPostingBlockSize];
    uint64_t acc = 0;
    for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
      const ir::PostingList& list = index.postings(t);
      for (size_t b = 0; b < list.num_blocks(); ++b) {
        const size_t n = list.DecodePackedBlock(b, docs, tfs);
        for (size_t i = 0; i < n; ++i) {
          acc += docs[i] + static_cast<uint32_t>(tfs[i]);
        }
      }
    }
    sink += acc;
  });
  double scan_ms = MeasureMs([&] {
    uint64_t acc = 0;
    for (ir::TermId t = 0; t < index.vocabulary_size(); ++t) {
      const ir::PostingList& list = index.postings(t);
      const ir::DocId* docs = list.doc_data();
      const int32_t* tfs = list.tf_data();
      for (size_t i = 0; i < list.size(); ++i) {
        acc += docs[i] + static_cast<uint32_t>(tfs[i]);
      }
    }
    sink += acc;
  });
  const double mp = static_cast<double>(total_postings) / 1e3;  // ms -> M/s
  const double decode_mps = mp / decode_ms;
  const double scan_mps = mp / scan_ms;

  std::printf("%-22s %-10s %-14s\n", "traversal", "ms", "Mpostings/s");
  std::printf("%-22s %-10.2f %-14.1f\n", "decode_packed", decode_ms,
              decode_mps);
  std::printf("%-22s %-10.2f %-14.1f\n", "scan_soa", scan_ms, scan_mps);
  std::printf("decode_vs_scan: %.2fx slower (sink %llu)\n\n",
              scan_mps / decode_mps, static_cast<unsigned long long>(sink));

  // ---- End to end: RankTopN under each kernel, exhaustive and pruned.
  ir::RankOptions scalar;
  scalar.kernel = ir::ScoreKernel::kScalar;
  ir::RankOptions block;
  block.kernel = ir::ScoreKernel::kBlock;
  ir::RankOptions packed;
  packed.kernel = ir::ScoreKernel::kPacked;
  ir::RankOptions block_prune = block;
  block_prune.prune = true;
  ir::RankOptions packed_prune = packed;
  packed_prune.prune = true;

  bool packed_exact = true;
  bool packed_prune_exact = true;
  for (const auto& q : queries) {
    std::vector<ir::ScoredDoc> reference = index.RankTopN(q, kTopN, scalar);
    if (!BitIdentical(reference, index.RankTopN(q, kTopN, packed))) {
      packed_exact = false;
    }
    if (!BitIdentical(reference, index.RankTopN(q, kTopN, packed_prune))) {
      packed_prune_exact = false;
    }
  }

  auto batch = [&](const ir::RankOptions& options) {
    return MeasureMs([&] {
      for (const auto& q : queries) index.RankTopN(q, kTopN, options);
    });
  };
  double scalar_ms = batch(scalar);
  double block_ms = batch(block);
  double packed_ms = batch(packed);
  double block_prune_ms = batch(block_prune);
  double packed_prune_ms = batch(packed_prune);

  struct Row {
    const char* name;
    double ms;
    const char* exact;
  };
  Row rows[] = {
      {"scalar", scalar_ms, "ref"},
      {"block", block_ms, "bits"},
      {"packed", packed_ms, packed_exact ? "bits" : "NO"},
      {"block_prune", block_prune_ms, "bits"},
      {"packed_prune", packed_prune_ms, packed_prune_exact ? "bits" : "NO"},
  };
  std::printf("%-16s %-10s %-12s %-10s %-8s\n", "variant", "batch_ms",
              "ms/query", "vs_block", "exact");
  for (const Row& r : rows) {
    std::printf("%-16s %-10.2f %-12.4f %-10.2f %-8s\n", r.name, r.ms,
                r.ms / kQueries, block_ms / r.ms, r.exact);
  }
  std::printf(
      "(packed_vs_block = query-level cost of scoring from compressed "
      "postings; exact: bits = bit-identical docs+scores vs scalar)\n");

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"codec\",\n"
      "  \"corpus\": {\"docs\": %d, \"words_per_doc\": %d, \"vocab\": %zu, "
      "\"zipf_theta\": %.2f, \"queries\": %d, \"terms_per_query\": %d, "
      "\"top_n\": %zu, \"postings\": %zu},\n"
      "  \"space\": {\n"
      "    \"bytes_per_posting_unpacked\": %.3f,\n"
      "    \"bytes_per_posting_packed\": %.3f,\n"
      "    \"compression_ratio\": %.3f\n"
      "  },\n"
      "  \"traversal\": {\n"
      "    \"decode_mpostings_per_s\": %.1f,\n"
      "    \"scan_mpostings_per_s\": %.1f,\n"
      "    \"decode_vs_scan\": %.3f\n"
      "  },\n"
      "  \"variants\": {\n"
      "    \"scalar_batch_ms\": %.3f,\n"
      "    \"block_batch_ms\": %.3f,\n"
      "    \"packed_batch_ms\": %.3f,\n"
      "    \"block_prune_batch_ms\": %.3f,\n"
      "    \"packed_prune_batch_ms\": %.3f\n"
      "  },\n"
      "  \"speedups\": {\n"
      "    \"packed_vs_block\": %.3f,\n"
      "    \"packed_prune_vs_block_prune\": %.3f\n"
      "  },\n"
      "  \"exact\": {\"packed_bit_identical\": %s, "
      "\"packed_prune_bit_identical\": %s}\n"
      "}\n",
      kDocs, kWordsPerDoc, kVocab, kZipfTheta, kQueries, kTermsPerQuery, kTopN,
      total_postings, unpacked_per_posting, packed_per_posting,
      compression_ratio, decode_mps, scan_mps, scan_mps / decode_mps,
      scalar_ms, block_ms, packed_ms, block_prune_ms, packed_prune_ms,
      block_ms / packed_ms, block_prune_ms / packed_prune_ms,
      packed_exact ? "true" : "false", packed_prune_exact ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
