// Federated mediation benchmark: the same three-level query answered
// two ways over one synthetic corpus —
//
//   federated    the mediator's plan: filters cheapest/most-selective
//                first, surviving candidates pushed down into ranked
//                text evaluation as per-node bitmaps (n = 10)
//   post_filter  the paper-naive baseline: evaluate every backend
//                exhaustively, rank the WHOLE cluster (n = all docs,
//                the only way post-filtering can guarantee a full
//                top 10), intersect afterwards
//
// Four query mixes (text_only, text+webspace, text+cobra, all_three)
// sweep how much of the work the non-text levels can strip away.
//
// Gated signals for ci/bench_gate.py:
//   exact.federated_matches_post_filter   every federated ranking is
//       bit-identical (urls and scores) to its post-filter oracle —
//       the exactness contract of RankOptions::doc_filter end to end
//   speedups.filtered_vs_post_filter      all_three wall-clock ratio;
//       floor 1.0 — pushdown must pay for itself, not just look tidy
//
// The raw per-mix timings are reported but deliberately not gated
// (machine-dependent); the ratio and the boolean are the contract.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_federate.json, or argv[1]).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "federate/backend.h"
#include "federate/executor.h"
#include "federate/query_lang.h"
#include "ir/cluster.h"
#include "webspace/objects.h"
#include "webspace/schema.h"

namespace dls {
namespace {

constexpr size_t kEntities = 6000;
constexpr size_t kDocsPerEntity = 2;
constexpr size_t kVocab = 3000;
constexpr int kWordsPerDoc = 30;
constexpr size_t kNodes = 4;
constexpr size_t kFragments = 4;
constexpr size_t kTopN = 10;
constexpr int kQueries = 15;
constexpr int kTermsPerQuery = 3;
constexpr int kTopics = 40;      // topic=K keeps ~1/40 of entities
constexpr double kMinLen = 5.0;  // rally >= 5s keeps ~half the rallies

constexpr const char kSchema[] = R"(
webspace Bench;
class Article {
  topic: varchar(20);
  score: varchar(10);
}
)";

std::string EntityId(size_t e) { return StrFormat("obj%05zu", e); }

std::string EntityOf(const std::string& url) {
  return url.substr(0, url.find('#'));
}

struct Corpus {
  Corpus() : cluster(kNodes, kFragments) {
    Result<webspace::Schema> s = webspace::ParseSchema(kSchema);
    if (!s.ok()) std::abort();
    schema = std::move(s).value();
    instance = std::make_unique<webspace::WebspaceInstance>(&schema);

    Rng rng(42);
    ZipfSampler zipf(kVocab, 1.1);
    webspace::DocumentView view;
    view.document_url = "bench/corpus";
    std::vector<federate::CobraEvent> events;
    for (size_t e = 0; e < kEntities; ++e) {
      const std::string id = EntityId(e);
      for (size_t d = 0; d < kDocsPerEntity; ++d) {
        std::string body;
        for (int w = 0; w < kWordsPerDoc; ++w) {
          body += StrFormat("term%04zu ", zipf.Sample(&rng));
        }
        cluster.AddDocument(StrFormat("%s#f%zu", id.c_str(), d), body);
      }
      webspace::WebObject o;
      o.cls = "Article";
      o.id = id;
      o.attributes = {
          {"topic", StrFormat("topic%02zu", e % kTopics), ""},
          {"score", StrFormat("%zu", rng.Next() % 100), ""}};
      view.objects.push_back(std::move(o));
      // A quarter of the entities contain a rally of 0..10s; half of
      // those survive the min_len=5s cut.
      if (rng.Next() % 4 == 0) {
        events.push_back({id, "rally", static_cast<double>(rng.Next() % 100) / 10.0});
      }
      if (rng.Next() % 8 == 0) {
        events.push_back({id, "ace", static_cast<double>(rng.Next() % 30) / 10.0});
      }
    }
    if (!instance->Merge(view).ok()) std::abort();
    cluster.Finalize();
    cluster.EnableParallelism(kNodes);

    text = std::make_unique<federate::TextBackend>(&cluster);
    web = std::make_unique<federate::WebspaceBackend>(instance.get());
    cobra = std::make_unique<federate::CobraBackend>(std::move(events));
    mediator = std::make_unique<federate::Mediator>(
        federate::BackendSet{text.get(), web.get(), cobra.get()});
  }

  std::vector<std::string> QueryWords(uint64_t id) const {
    Rng rng(id * 2654435761u + 17);
    ZipfSampler zipf(kVocab, 1.1);
    std::vector<std::string> words;
    while (words.size() < kTermsPerQuery) {
      std::string w = StrFormat("term%04zu", zipf.Sample(&rng));
      if (std::find(words.begin(), words.end(), w) == words.end()) {
        words.push_back(std::move(w));
      }
    }
    return words;
  }

  webspace::Schema schema;
  std::unique_ptr<webspace::WebspaceInstance> instance;
  ir::ClusterIndex cluster;
  std::unique_ptr<federate::TextBackend> text;
  std::unique_ptr<federate::WebspaceBackend> web;
  std::unique_ptr<federate::CobraBackend> cobra;
  std::unique_ptr<federate::Mediator> mediator;
};

struct Mix {
  const char* name;
  bool with_webspace;
  bool with_cobra;
};

struct MixResult {
  double federated_ms = 0;
  double post_filter_ms = 0;
  size_t candidates = 0;  // mean surviving entities per query
  bool exact = true;
};

/// The non-text conjuncts of mix `m` for query q, as query-language
/// text (rotating the topic so different queries hit different slices).
std::string FilterClause(const Mix& m, int q) {
  std::string clause;
  if (m.with_webspace) {
    clause += StrFormat(" AND webspace(class=Article, topic=topic%02d)",
                        q % kTopics);
  }
  if (m.with_cobra) {
    clause += StrFormat(" AND cobra(event=rally, min_len=%.0fs)", kMinLen);
  }
  return clause;
}

MixResult RunMix(const Corpus& corpus, const Mix& mix) {
  MixResult result;
  size_t total_candidates = 0;
  for (int q = 0; q < kQueries; ++q) {
    const std::vector<std::string> words = corpus.QueryWords(q);
    std::string text_pred = "text(\"";
    for (size_t i = 0; i < words.size(); ++i) {
      if (i != 0) text_pred += ' ';
      text_pred += words[i];
    }
    text_pred += "\")";
    const std::string query = text_pred + FilterClause(mix, q);

    // Federated: parse once outside the clock (the serve layer parses
    // at admission, amortised by the cache), execute planned.
    Result<federate::FederatedQuery> parsed =
        federate::ParseFederatedQuery(query);
    if (!parsed.ok()) std::abort();
    ir::RankOptions options;
    options.prune = true;
    Timer fed_timer;
    Result<std::vector<ir::ClusterScoredDoc>> federated =
        corpus.mediator->Execute(parsed.value(), kTopN, kFragments, options);
    result.federated_ms += fed_timer.ElapsedMillis();
    if (!federated.ok()) std::abort();

    // Post-filter oracle: exhaustive filters, exhaustive deep ranking,
    // intersect afterwards.
    Timer post_timer;
    bool have_filter = false;
    federate::CandidateSet survivors;
    auto apply = [&](const federate::FederateBackend& b, const char* pred) {
      Result<federate::FederatedQuery> p = federate::ParseFederatedQuery(pred);
      if (!p.ok()) std::abort();
      Result<federate::CandidateSet> set = b.EvalFilter(p.value().root.pred);
      if (!set.ok()) std::abort();
      survivors = have_filter
                      ? federate::IntersectSets(survivors, set.value())
                      : std::move(set).value();
      have_filter = true;
    };
    if (mix.with_webspace) {
      apply(*corpus.web,
            StrFormat("webspace(class=Article, topic=topic%02d)", q % kTopics)
                .c_str());
    }
    if (mix.with_cobra) {
      apply(*corpus.cobra,
            StrFormat("cobra(event=rally, min_len=%.0fs)", kMinLen).c_str());
    }
    std::vector<ir::ClusterScoredDoc> ranked = corpus.cluster.Query(
        words, kEntities * kDocsPerEntity, kFragments, nullptr, options);
    std::vector<ir::ClusterScoredDoc> reference;
    for (ir::ClusterScoredDoc& d : ranked) {
      if (!have_filter || std::binary_search(survivors.begin(),
                                             survivors.end(),
                                             EntityOf(d.url))) {
        reference.push_back(std::move(d));
        if (reference.size() == kTopN) break;
      }
    }
    result.post_filter_ms += post_timer.ElapsedMillis();

    total_candidates += have_filter ? survivors.size() : kEntities;
    if (federated.value().size() != reference.size()) {
      result.exact = false;
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        uint64_t a, b;
        std::memcpy(&a, &federated.value()[i].score, sizeof(a));
        std::memcpy(&b, &reference[i].score, sizeof(b));
        if (federated.value()[i].url != reference[i].url || a != b) {
          result.exact = false;
        }
      }
    }
  }
  result.candidates = total_candidates / kQueries;
  return result;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path = argc > 1 ? argv[1] : "BENCH_federate.json";

  std::printf("building corpus: %zu entities x %zu docs, vocab %zu...\n",
              kEntities, kDocsPerEntity, kVocab);
  Corpus corpus;

  const Mix mixes[] = {
      {"text_only", false, false},
      {"text_webspace", true, false},
      {"text_cobra", false, true},
      {"all_three", true, true},
  };
  MixResult results[4];
  bool all_exact = true;
  std::printf("%-14s %12s %14s %12s %6s\n", "mix", "federated_ms",
              "post_filter_ms", "candidates", "exact");
  for (size_t m = 0; m < 4; ++m) {
    results[m] = RunMix(corpus, mixes[m]);
    all_exact = all_exact && results[m].exact;
    std::printf("%-14s %12.2f %14.2f %12zu %6s\n", mixes[m].name,
                results[m].federated_ms, results[m].post_filter_ms,
                results[m].candidates, results[m].exact ? "true" : "false");
  }
  const double speedup =
      results[3].federated_ms > 0
          ? results[3].post_filter_ms / results[3].federated_ms
          : 0.0;
  std::printf("\nall_three filtered_vs_post_filter speedup: %.2fx\n", speedup);

  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"bench\": \"federate\",\n"
      "  \"corpus\": {\"entities\": %zu, \"docs_per_entity\": %zu, "
      "\"vocab\": %zu, \"words_per_doc\": %d, \"nodes\": %zu, "
      "\"fragments\": %zu, \"queries\": %d, \"terms_per_query\": %d, "
      "\"top_n\": %zu},\n",
      kEntities, kDocsPerEntity, kVocab, kWordsPerDoc, kNodes, kFragments,
      kQueries, kTermsPerQuery, kTopN);
  for (size_t m = 0; m < 4; ++m) {
    std::fprintf(out,
                 "  \"%s\": {\"federated_ms\": %.3f, \"post_filter_ms\": "
                 "%.3f, \"mean_candidates\": %zu},\n",
                 mixes[m].name, results[m].federated_ms,
                 results[m].post_filter_ms, results[m].candidates);
  }
  std::fprintf(out,
               "  \"speedups\": {\"filtered_vs_post_filter\": %.3f},\n"
               "  \"exact\": {\"federated_matches_post_filter\": %s}\n"
               "}\n",
               speedup, all_exact ? "true" : "false");
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return all_exact ? 0 : 1;
}
