// Parallel query execution benchmark: sequential-vs-parallel cluster
// fan-out (pool sizes 1/2/4/8 × nodes 1/4/16) plus the scoring-kernel
// speedup of the dense accumulator + bounded heap over the seed's
// unordered_map + full-sort implementation. The seed-style evaluator
// below reproduces the pre-parallel ClusterIndex::Query algorithm so
// "speedup vs seed" is measured end to end on the same E4-style
// corpus, not modelled from posting counts.
//
// Prints a human table and writes machine-readable JSON (default
// BENCH_parallel_query.json, or argv[1]) for the repo's perf
// trajectory.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "ir/cluster.h"

namespace dls {
namespace {

constexpr int kDocs = 8000;
constexpr int kWordsPerDoc = 80;
constexpr size_t kVocab = 3000;
constexpr double kZipfTheta = 1.1;
constexpr size_t kFragments = 4;
constexpr int kQueries = 24;
constexpr int kTermsPerQuery = 4;
constexpr size_t kTopN = 10;
constexpr int kReps = 3;  // best-of wall clock per configuration

std::vector<std::pair<std::string, std::string>> MakeCorpus() {
  Rng rng(4);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::pair<std::string, std::string>> corpus;
  corpus.reserve(kDocs);
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    body.reserve(kWordsPerDoc * 9);
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    corpus.emplace_back(StrFormat("doc%05d", d), body);
  }
  return corpus;
}

std::vector<std::vector<std::string>> MakeQueries() {
  Rng rng(5);
  ZipfSampler zipf(kVocab, kZipfTheta);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < kTermsPerQuery; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

/// The seed implementation of the distributed query, kept verbatim as
/// the measured baseline: per node an unordered_map<DocId, double>
/// accumulator and a full sort of every scored document, then one
/// global sort of the concatenated top lists.
std::vector<ir::ClusterScoredDoc> SeedStyleQuery(
    const ir::ClusterIndex& cluster, const std::vector<std::string>& words,
    size_t n, size_t max_fragments) {
  const ir::RankOptions options;
  std::vector<std::string> stems;
  for (const std::string& word : words) {
    std::optional<std::string> norm =
        cluster.node_index(0).NormalizeWord(word);
    if (!norm) continue;
    // Match the engine's query semantics: a repeated term scores once.
    if (std::find(stems.begin(), stems.end(), *norm) != stems.end()) continue;
    if (cluster.global_df(*norm) == 0) continue;
    stems.push_back(*norm);
  }

  std::vector<ir::ClusterScoredDoc> merged;
  for (size_t node = 0; node < cluster.num_nodes(); ++node) {
    const ir::TextIndex& index = cluster.node_index(node);
    std::unordered_map<ir::DocId, double> scores;
    for (const std::string& stem : stems) {
      std::optional<ir::TermId> term = index.LookupTerm(stem);
      if (!term) continue;
      if (cluster.node_fragments(node).FragmentOf(*term) >= max_fragments) {
        continue;
      }
      int32_t global_df = cluster.global_df(stem);
      for (const ir::Posting& p : index.postings(*term)) {
        scores[p.doc] +=
            ir::TermScore(p.tf, global_df, index.doc_length(p.doc),
                          cluster.global_collection_length(), options);
      }
    }
    std::vector<ir::ScoredDoc> local;
    local.reserve(scores.size());
    for (const auto& [doc, score] : scores) local.push_back({doc, score});
    std::sort(local.begin(), local.end(),
              [](const ir::ScoredDoc& a, const ir::ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (local.size() > n) local.resize(n);
    for (const ir::ScoredDoc& d : local) {
      merged.push_back({index.url(d.doc), d.score});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const ir::ClusterScoredDoc& a, const ir::ClusterScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.url < b.url;
            });
  if (merged.size() > n) merged.resize(n);
  return merged;
}

struct Measurement {
  double batch_ms = 0;  // best-of-kReps for the whole query batch
  double critical_path_us = 0;
  double total_cpu_us = 0;
};

template <typename QueryFn>
Measurement MeasureBatch(const std::vector<std::vector<std::string>>& queries,
                         QueryFn&& run_query) {
  Measurement m;
  m.batch_ms = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    double critical = 0, total = 0;
    Timer timer;
    for (const auto& q : queries) {
      ir::ClusterQueryStats stats;
      run_query(q, &stats);
      critical += stats.critical_path_us;
      total += stats.total_cpu_us;
    }
    double ms = timer.ElapsedMillis();
    if (ms < m.batch_ms) {
      m.batch_ms = ms;
      m.critical_path_us = critical / queries.size();
      m.total_cpu_us = total / queries.size();
    }
  }
  return m;
}

bool SameRanking(const std::vector<ir::ClusterScoredDoc>& a,
                 const std::vector<ir::ClusterScoredDoc>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].url != b[i].url) return false;
  }
  return true;
}

}  // namespace
}  // namespace dls

int main(int argc, char** argv) {
  using namespace dls;
  const char* json_path =
      argc > 1 ? argv[1] : "BENCH_parallel_query.json";

  auto corpus = MakeCorpus();
  auto queries = MakeQueries();

  std::printf(
      "parallel query execution: %d docs, %d words/doc, vocab %zu, "
      "%d queries x %d terms, top %zu, %u hardware threads\n\n",
      kDocs, kWordsPerDoc, kVocab, kQueries, kTermsPerQuery, kTopN,
      std::thread::hardware_concurrency());

  std::string sweep_json;
  double kernel_seq_ms = 0, kernel_seed_ms = 0;

  std::printf("%-6s %-8s %-12s %-12s %-10s %-12s %-12s %-8s\n", "nodes",
              "threads", "batch_ms", "ms/query", "vs_seed", "critical_us",
              "cpu_us", "exact");

  for (size_t nodes : {1u, 4u, 16u}) {
    ir::ClusterIndex cluster(nodes, kFragments);
    for (const auto& [url, body] : corpus) cluster.AddDocument(url, body);
    cluster.Finalize();

    // Reference rankings from the seed-style evaluator.
    std::vector<std::vector<ir::ClusterScoredDoc>> reference;
    for (const auto& q : queries) {
      reference.push_back(SeedStyleQuery(cluster, q, kTopN, kFragments));
    }

    // Seed baseline: map+sort kernel, node loop on one thread.
    Measurement seed = MeasureBatch(
        queries, [&](const std::vector<std::string>& q,
                     ir::ClusterQueryStats*) {
          SeedStyleQuery(cluster, q, kTopN, kFragments);
        });
    std::printf("%-6zu %-8s %-12.2f %-12.3f %-10s %-12s %-12s %-8s\n", nodes,
                "seed", seed.batch_ms, seed.batch_ms / kQueries, "1.00", "-",
                "-", "ref");

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      std::unique_ptr<ThreadPool> pool;
      if (threads == 1) {
        cluster.SetExecutor(nullptr);  // sequential engine, new kernel
      } else {
        pool = std::make_unique<ThreadPool>(threads);
        cluster.SetExecutor(pool.get());
      }

      bool exact = true;
      for (size_t q = 0; q < queries.size(); ++q) {
        if (!SameRanking(cluster.Query(queries[q], kTopN, kFragments),
                         reference[q])) {
          exact = false;
        }
      }

      Measurement m = MeasureBatch(
          queries, [&](const std::vector<std::string>& q,
                       ir::ClusterQueryStats* stats) {
            cluster.Query(q, kTopN, kFragments, stats);
          });
      double vs_seed = seed.batch_ms / m.batch_ms;
      std::printf("%-6zu %-8zu %-12.2f %-12.3f %-10.2f %-12.1f %-12.1f %-8s\n",
                  nodes, threads, m.batch_ms, m.batch_ms / kQueries, vs_seed,
                  m.critical_path_us, m.total_cpu_us, exact ? "yes" : "NO");

      if (nodes == 1 && threads == 1) kernel_seq_ms = m.batch_ms;
      if (nodes == 1) kernel_seed_ms = seed.batch_ms;

      sweep_json += StrFormat(
          "    {\"nodes\": %zu, \"threads\": %zu, \"batch_ms\": %.3f, "
          "\"ms_per_query\": %.4f, \"speedup_vs_seed_baseline\": %.3f, "
          "\"seed_baseline_batch_ms\": %.3f, "
          "\"critical_path_us_per_query\": %.2f, "
          "\"total_cpu_us_per_query\": %.2f, "
          "\"shared_nothing_speedup\": %.3f, \"exact\": %s},\n",
          nodes, threads, m.batch_ms, m.batch_ms / kQueries, vs_seed,
          seed.batch_ms, m.critical_path_us, m.total_cpu_us,
          m.critical_path_us > 0 ? m.total_cpu_us / m.critical_path_us : 1.0,
          exact ? "true" : "false");
    }
    cluster.SetExecutor(nullptr);
    std::printf("\n");
  }

  double kernel_speedup =
      kernel_seq_ms > 0 ? kernel_seed_ms / kernel_seq_ms : 0;
  std::printf(
      "scoring kernel (1 node, 1 thread): seed map+sort %.2f ms vs "
      "accumulator+heap %.2f ms -> %.2fx\n",
      kernel_seed_ms, kernel_seq_ms, kernel_speedup);
  std::printf(
      "(vs_seed = wall-clock speedup over the seed map+sort sequential "
      "implementation; shared_nothing_speedup = total_cpu/critical_path, "
      "the measured E4 bound)\n");

  if (!sweep_json.empty()) sweep_json.resize(sweep_json.size() - 2);
  std::FILE* out = std::fopen(json_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"parallel_query\",\n"
               "  \"corpus\": {\"docs\": %d, \"words_per_doc\": %d, "
               "\"vocab\": %zu, \"zipf_theta\": %.2f, \"fragments\": %zu, "
               "\"queries\": %d, \"terms_per_query\": %d, \"top_n\": %zu},\n"
               "  \"hardware_threads\": %u,\n"
               "  \"kernel\": {\"seed_map_sort_batch_ms\": %.3f, "
               "\"accumulator_heap_batch_ms\": %.3f, \"speedup\": %.3f},\n"
               "  \"sweep\": [\n%s\n  ]\n"
               "}\n",
               kDocs, kWordsPerDoc, kVocab, kZipfTheta, kFragments, kQueries,
               kTermsPerQuery, kTopN, std::thread::hardware_concurrency(),
               kernel_seed_ms, kernel_seq_ms, kernel_speedup,
               sweep_json.c_str());
  std::fclose(out);
  std::printf("wrote %s\n", json_path);
  return 0;
}
