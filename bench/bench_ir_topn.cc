// Experiment E3 — the cost/quality trade-off of idf-descending
// horizontal fragmentation: reading only the first f fragments buys
// most of the ranking quality for a small fraction of the postings.
// Prints one row per cut-off f: work, predicted quality (the [BHC+01]
// a-priori model) and measured quality (recall@10 vs. the exact
// ranking), plus a random-fragment-order ablation.
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/fragments.h"

namespace dls {
namespace {

constexpr int kDocs = 4000;
constexpr int kWordsPerDoc = 80;
constexpr size_t kVocab = 3000;
constexpr size_t kFragments = 10;
constexpr int kQueries = 40;
constexpr size_t kTopN = 10;

void BuildCorpus(ir::TextIndex* index) {
  Rng rng(2001);
  ZipfSampler zipf(kVocab, 1.1);
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    index->AddDocument(StrFormat("doc%05d", d), body);
  }
  index->Flush();
}

std::vector<std::vector<std::string>> MakeQueries() {
  // Query terms drawn from the same Zipf distribution as the corpus —
  // real queries mix frequent and rare terms.
  Rng rng(77);
  ZipfSampler zipf(kVocab, 1.1);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    int len = 2 + static_cast<int>(rng.Uniform(5));
    for (int w = 0; w < len; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

double RecallAt10(const std::vector<ir::ScoredDoc>& got,
                  const std::vector<ir::ScoredDoc>& exact) {
  if (exact.empty()) return 1.0;
  std::set<ir::DocId> truth;
  for (const ir::ScoredDoc& d : exact) truth.insert(d.doc);
  size_t hit = 0;
  for (const ir::ScoredDoc& d : got) hit += truth.count(d.doc);
  return static_cast<double>(hit) / truth.size();
}

/// Ablation: fragmentation that ignores idf (terms assigned to
/// fragments round-robin) — shows the idf ordering, not fragmentation
/// itself, carries the trade-off.
class RandomFragmentIndex {
 public:
  RandomFragmentIndex(const ir::TextIndex* base, size_t fragments)
      : base_(base), fragment_of_(base->vocabulary_size()) {
    for (ir::TermId t = 0; t < base->vocabulary_size(); ++t) {
      fragment_of_[t] = t % fragments;
    }
  }

  std::vector<ir::ScoredDoc> RankTopN(const std::vector<std::string>& words,
                                      size_t n, size_t max_fragments,
                                      size_t* postings) const {
    std::unordered_map<ir::DocId, double> scores;
    for (const std::string& word : words) {
      std::optional<std::string> norm = base_->NormalizeWord(word);
      if (!norm) continue;
      std::optional<ir::TermId> term = base_->LookupTerm(*norm);
      if (!term || fragment_of_[*term] >= max_fragments) continue;
      for (const ir::Posting& p : base_->postings(*term)) {
        ++*postings;
        scores[p.doc] += ir::TermScore(p.tf, base_->df(*term),
                                       base_->doc_length(p.doc),
                                       base_->collection_length(), {});
      }
    }
    std::vector<ir::ScoredDoc> ranked(scores.begin() == scores.end()
                                          ? std::vector<ir::ScoredDoc>{}
                                          : std::vector<ir::ScoredDoc>{});
    for (const auto& [doc, score] : scores) ranked.push_back({doc, score});
    std::sort(ranked.begin(), ranked.end(),
              [](const ir::ScoredDoc& a, const ir::ScoredDoc& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.doc < b.doc;
              });
    if (ranked.size() > n) ranked.resize(n);
    return ranked;
  }

 private:
  const ir::TextIndex* base_;
  std::vector<size_t> fragment_of_;
};

}  // namespace
}  // namespace dls

int main() {
  using namespace dls;

  ir::TextIndex index;
  BuildCorpus(&index);
  ir::FragmentedIndex fragments(&index, kFragments);
  RandomFragmentIndex random_fragments(&index, kFragments);
  std::vector<std::vector<std::string>> queries = MakeQueries();

  // Exact rankings (all fragments).
  std::vector<std::vector<ir::ScoredDoc>> exact;
  size_t full_postings = 0;
  for (const auto& q : queries) {
    ir::FragmentQueryStats stats;
    exact.push_back(fragments.RankTopN(q, kTopN, kFragments, &stats));
    full_postings += stats.postings_touched;
  }

  std::printf(
      "E3: idf-fragmented top-%zu over %d docs, %zu fragments, %d queries\n",
      kTopN, kDocs, kFragments, kQueries);
  std::printf("%-10s %-14s %-12s %-14s %-12s %-16s %-14s\n", "fragments",
              "postings", "work_frac", "pred_quality", "recall@10",
              "recall(random)", "work(random)");
  for (size_t f = 1; f <= kFragments; ++f) {
    size_t postings = 0;
    double predicted = 0;
    double recall = 0;
    double random_recall = 0;
    size_t random_postings = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      ir::FragmentQueryStats stats;
      std::vector<ir::ScoredDoc> got =
          fragments.RankTopN(queries[q], kTopN, f, &stats);
      postings += stats.postings_touched;
      predicted += stats.predicted_quality;
      recall += RecallAt10(got, exact[q]);
      std::vector<ir::ScoredDoc> rnd =
          random_fragments.RankTopN(queries[q], kTopN, f, &random_postings);
      random_recall += RecallAt10(rnd, exact[q]);
    }
    std::printf("%-10zu %-14zu %-12.3f %-14.3f %-12.3f %-16.3f %-14.3f\n",
                f, postings,
                static_cast<double>(postings) / full_postings,
                predicted / queries.size(), recall / queries.size(),
                random_recall / queries.size(),
                static_cast<double>(random_postings) / full_postings);
  }
  return 0;
}
