// Experiment E2 — bulkload: the paper claims a SAX+stack bulkload with
// O(document height) memory against the DOM route's O(document size),
// at equal or better speed. Series: documents/second and loader stack
// depth for the streaming path vs. the DOM-then-shred path.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/strings.h"
#include "monet/bulkload.h"
#include "monet/database.h"
#include "xml/parser.h"

namespace dls {
namespace {

/// A synthetic "article" document with `paragraphs` children.
std::string MakeDocument(Rng* rng, int paragraphs) {
  std::string xml = "<article date=\"2001-12-31\">";
  for (int i = 0; i < paragraphs; ++i) {
    xml += StrFormat("<para idx=\"%d\"><text>", i);
    for (int w = 0; w < 12; ++w) {
      xml += StrFormat("w%llu ",
                       static_cast<unsigned long long>(rng->Uniform(500)));
    }
    xml += "</text><score>0.5</score></para>";
  }
  xml += "</article>";
  return xml;
}

void BM_StreamingBulkload(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(MakeDocument(&rng, static_cast<int>(state.range(0))));
  }
  size_t max_depth = 0;
  size_t associations = 0;
  for (auto _ : state) {
    monet::Database db;
    for (size_t i = 0; i < docs.size(); ++i) {
      monet::BulkLoader loader(&db, StrFormat("d%zu", i));
      benchmark::DoNotOptimize(xml::ParseStream(docs[i], &loader).ok());
      max_depth = std::max(max_depth, loader.max_stack_depth());
    }
    associations = db.Stats().associations;
  }
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * docs.size(),
      benchmark::Counter::kIsRate);
  state.counters["loader_stack_depth"] = static_cast<double>(max_depth);
  state.counters["associations"] = static_cast<double>(associations);
}
BENCHMARK(BM_StreamingBulkload)->Arg(8)->Arg(64)->Arg(512);

void BM_DomThenShred(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::string> docs;
  for (int i = 0; i < 64; ++i) {
    docs.push_back(MakeDocument(&rng, static_cast<int>(state.range(0))));
  }
  size_t max_nodes = 0;  // the DOM's resident footprint, in nodes
  for (auto _ : state) {
    monet::Database db;
    for (size_t i = 0; i < docs.size(); ++i) {
      Result<xml::Document> doc = xml::Parse(docs[i]);
      max_nodes = std::max(max_nodes, doc.value().node_count());
      benchmark::DoNotOptimize(
          db.InsertDocument(StrFormat("d%zu", i), doc.value()).ok());
    }
  }
  state.counters["docs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * docs.size(),
      benchmark::Counter::kIsRate);
  state.counters["dom_resident_nodes"] = static_cast<double>(max_nodes);
}
BENCHMARK(BM_DomThenShred)->Arg(8)->Arg(64)->Arg(512);

/// Incremental insertion into an already-large database: the paper's
/// "incremental updates ... efficient" claim — insert cost must not
/// grow with database size.
void BM_IncrementalInsert(benchmark::State& state) {
  Rng rng(2);
  monet::Database db;
  for (int i = 0; i < state.range(0); ++i) {
    (void)db.InsertXml(StrFormat("seed%d", i), MakeDocument(&rng, 16));
  }
  std::string fresh = MakeDocument(&rng, 16);
  int counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.InsertXml(StrFormat("new%d", counter++), fresh).ok());
  }
  state.counters["resident_docs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalInsert)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace dls

BENCHMARK_MAIN();
