// Experiment E1 — path-clustered storage vs. a generic edge table:
// the Monet transform's claim that encoding the whole path into the
// relation name buys "a significantly higher degree of semantic
// clustering", i.e. path expressions become direct relation scans
// while the edge table pays a label-filtered join per step.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/strings.h"
#include "monet/algebra.h"
#include "monet/database.h"
#include "monet/edge_baseline.h"
#include "xml/parser.h"

namespace dls {
namespace {

/// Documents where the same tag name (`item`) appears under several
/// contexts — the worst case for label-based joins, the normal case
/// for real vocabularies (e.g. <name> under player, tournament, city).
std::string MakeDocument(Rng* rng, int fanout, int depth) {
  std::string xml = "<site>";
  const char* contexts[] = {"player", "article", "profile", "match"};
  for (const char* context : contexts) {
    xml += StrFormat("<%s>", context);
    for (int i = 0; i < fanout; ++i) {
      std::string nest;
      for (int d = 0; d < depth; ++d) nest += "<item>";
      nest += StrFormat("v%llu",
                        static_cast<unsigned long long>(rng->Uniform(100)));
      for (int d = 0; d < depth; ++d) nest += "</item>";
      xml += nest;
    }
    xml += StrFormat("</%s>", context);
  }
  xml += "</site>";
  return xml;
}

std::pair<std::string, std::vector<std::string>> QueryFor(int depth) {
  std::string monet_path = "/site/player";
  std::vector<std::string> steps = {"site", "player"};
  for (int d = 0; d < depth; ++d) {
    monet_path += "/item";
    steps.push_back("item");
  }
  return {monet_path, steps};
}

constexpr int kDocs = 32;
constexpr int kFanout = 8;
constexpr int kMaxDepth = 6;

void BM_MonetPathScan(benchmark::State& state) {
  Rng rng(7);
  monet::Database db;
  for (int i = 0; i < kDocs; ++i) {
    (void)db.InsertXml(StrFormat("d%d", i),
                       MakeDocument(&rng, kFanout, kMaxDepth));
  }
  auto [path, steps] = QueryFor(static_cast<int>(state.range(0)));
  size_t results = 0;
  for (auto _ : state) {
    monet::OidSet hits = monet::ScanPath(db, path);
    benchmark::DoNotOptimize(hits);
    results = hits.size();
  }
  state.counters["results"] = static_cast<double>(results);
  // A path scan touches exactly the tuples of one relation.
  state.counters["tuples_touched"] = static_cast<double>(results);
}
BENCHMARK(BM_MonetPathScan)->DenseRange(1, kMaxDepth);

void BM_EdgeTablePath(benchmark::State& state) {
  Rng rng(7);
  monet::EdgeTableStore store;
  for (int i = 0; i < kDocs; ++i) {
    Result<xml::Document> doc =
        xml::Parse(MakeDocument(&rng, kFanout, kMaxDepth));
    (void)store.InsertDocument(StrFormat("d%d", i), doc.value());
  }
  auto [path, steps] = QueryFor(static_cast<int>(state.range(0)));
  size_t results = 0;
  for (auto _ : state) {
    store.ResetCounters();
    std::vector<uint64_t> hits = store.EvalPath(steps);
    benchmark::DoNotOptimize(hits);
    results = hits.size();
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["tuples_touched"] =
      static_cast<double>(store.tuples_touched());
}
BENCHMARK(BM_EdgeTablePath)->DenseRange(1, kMaxDepth);

/// Text-filtered variant: "players whose item text contains 'v7'".
void BM_MonetPathTextSelect(benchmark::State& state) {
  Rng rng(9);
  monet::Database db;
  for (int i = 0; i < kDocs; ++i) {
    (void)db.InsertXml(StrFormat("d%d", i), MakeDocument(&rng, kFanout, 2));
  }
  for (auto _ : state) {
    monet::OidSet hits = monet::SelectByText(
        db, "/site/player/item/item",
        [](const std::string& text) {
          return text.find("v7") != std::string::npos;
        });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_MonetPathTextSelect);

void BM_EdgeTableTextSelect(benchmark::State& state) {
  Rng rng(9);
  monet::EdgeTableStore store;
  for (int i = 0; i < kDocs; ++i) {
    Result<xml::Document> doc = xml::Parse(MakeDocument(&rng, kFanout, 2));
    (void)store.InsertDocument(StrFormat("d%d", i), doc.value());
  }
  for (auto _ : state) {
    std::vector<uint64_t> hits = store.EvalPathTextContains(
        {"site", "player", "item", "item"}, "v7");
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_EdgeTableTextSelect);

}  // namespace
}  // namespace dls

BENCHMARK_MAIN();
