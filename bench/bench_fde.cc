// Experiment E6 — FDE token-stack strategies: shared-suffix (Tomita
// style) vs. naive copying under growing backtracking load. The
// grammar is the Figs. 6/7 video grammar; the token stream scales with
// the number of shots and frames per shot (every shot boundary forces
// a backtrack out of `frame*`).
#include <benchmark/benchmark.h>

#include "core/grammars.h"
#include "fg/fde.h"

namespace dls {
namespace {

/// Registers stub detectors producing `shots` shots of `frames` frames.
void RegisterStubs(fg::DetectorRegistry* registry, int shots, int frames) {
  registry->Register("header",
                     [](const fg::DetectorContext&, std::vector<fg::Token>* out) {
                       out->push_back(fg::Token::Str("video"));
                       out->push_back(fg::Token::Str("mpeg"));
                       return Status::Ok();
                     });
  registry->Register(
      "segment",
      [shots, frames](const fg::DetectorContext&, std::vector<fg::Token>* out) {
        for (int s = 0; s < shots; ++s) {
          out->push_back(fg::Token::Int(s * frames));
          out->push_back(fg::Token::Int((s + 1) * frames));
          out->push_back(fg::Token::Str("tennis"));
        }
        return Status::Ok();
      });
  registry->Register(
      "tennis",
      [frames](const fg::DetectorContext& context, std::vector<fg::Token>* out) {
        int begin = static_cast<int>(context.inputs[1].AsInt());
        for (int f = 0; f < frames; ++f) {
          out->push_back(fg::Token::Int(begin + f));
          out->push_back(fg::Token::Flt(100.0 + f));
          out->push_back(fg::Token::Flt(250.0 - f));
          out->push_back(fg::Token::Int(120));
          out->push_back(fg::Token::Flt(0.9));
          out->push_back(fg::Token::Flt(0.1));
        }
        return Status::Ok();
      });
}

void RunParse(benchmark::State& state, bool share_suffixes) {
  Result<fg::Grammar> grammar = fg::ParseGrammar(core::kVideoGrammar);
  fg::DetectorRegistry registry;
  int shots = static_cast<int>(state.range(0));
  int frames = 12;
  RegisterStubs(&registry, shots, frames);
  fg::FdeOptions options;
  options.share_suffixes = share_suffixes;
  fg::Fde fde(&grammar.value(), &registry, options);

  for (auto _ : state) {
    Result<fg::ParseTree> tree =
        fde.Parse({fg::Token::Url("http://x/match.mpg")});
    if (!tree.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(tree);
  }
  const fg::FdeStats& stats = fde.stats();
  state.counters["backtracks/parse"] =
      static_cast<double>(stats.backtracks) / state.iterations();
  state.counters["tokens_copied/parse"] =
      static_cast<double>(stats.stack.tokens_copied) / state.iterations();
  state.counters["cells_alloc/parse"] =
      static_cast<double>(stats.stack.cells_allocated) / state.iterations();
  state.counters["tokens/parse"] =
      static_cast<double>(stats.tokens_pushed) / state.iterations();
}

void BM_FdeSharedSuffix(benchmark::State& state) { RunParse(state, true); }
BENCHMARK(BM_FdeSharedSuffix)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FdeCopyingStack(benchmark::State& state) { RunParse(state, false); }
BENCHMARK(BM_FdeCopyingStack)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace dls

BENCHMARK_MAIN();
