// Experiment E4 — shared-nothing scalability of the per-document
// distributed IR layer: with documents distributed per-document, the
// critical-path node does ~1/k of the posting work and the only merge
// cost is k small top-N lists. Prints one row per cluster size.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "ir/cluster.h"

namespace dls {
namespace {

constexpr int kDocs = 4000;
constexpr int kWordsPerDoc = 60;
constexpr size_t kVocab = 2500;
constexpr size_t kFragments = 4;
constexpr int kQueries = 30;

std::vector<std::pair<std::string, std::string>> MakeCorpus() {
  Rng rng(4);
  ZipfSampler zipf(kVocab, 1.1);
  std::vector<std::pair<std::string, std::string>> corpus;
  for (int d = 0; d < kDocs; ++d) {
    std::string body;
    for (int w = 0; w < kWordsPerDoc; ++w) {
      body += StrFormat("term%04zu ", zipf.Sample(&rng));
    }
    corpus.emplace_back(StrFormat("doc%05d", d), body);
  }
  return corpus;
}

std::vector<std::vector<std::string>> MakeQueries() {
  Rng rng(5);
  ZipfSampler zipf(kVocab, 1.1);
  std::vector<std::vector<std::string>> queries;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<std::string> words;
    for (int w = 0; w < 3; ++w) {
      words.push_back(StrFormat("term%04zu", zipf.Sample(&rng)));
    }
    queries.push_back(std::move(words));
  }
  return queries;
}

}  // namespace
}  // namespace dls

int main() {
  using namespace dls;

  auto corpus = MakeCorpus();
  auto queries = MakeQueries();

  std::printf("E4: distributed top-10, %d docs, %d queries per point\n",
              kDocs, kQueries);
  std::printf("%-7s %-16s %-16s %-10s %-10s %-12s %-12s %-12s %-10s\n",
              "nodes", "postings_total", "postings_max", "messages", "bytes",
              "crit_us", "cpu_us", "speedup", "exact");

  double single_node_us = 0;
  std::vector<std::vector<ir::ClusterScoredDoc>> reference;

  for (size_t nodes : {1u, 2u, 4u, 8u, 16u}) {
    ir::ClusterIndex cluster(nodes, kFragments);
    for (const auto& [url, body] : corpus) cluster.AddDocument(url, body);
    cluster.Finalize();

    size_t total = 0, max_node = 0, messages = 0, bytes = 0;
    double critical_us = 0, cpu_us = 0;
    bool exact = true;
    std::vector<std::vector<ir::ClusterScoredDoc>> results;
    for (const auto& q : queries) {
      ir::ClusterQueryStats stats;
      results.push_back(cluster.Query(q, 10, kFragments, &stats));
      total += stats.postings_touched_total;
      max_node = std::max(max_node, stats.postings_touched_max_node);
      messages += stats.messages;
      bytes += stats.bytes_shipped;
      critical_us += stats.critical_path_us;
      cpu_us += stats.total_cpu_us;
    }
    if (nodes == 1) {
      single_node_us = critical_us;
      reference = results;
    } else {
      for (size_t q = 0; q < results.size(); ++q) {
        if (results[q].size() != reference[q].size()) exact = false;
        for (size_t i = 0; exact && i < results[q].size(); ++i) {
          if (results[q][i].url != reference[q][i].url) exact = false;
        }
      }
    }
    std::printf("%-7zu %-16zu %-16zu %-10zu %-10zu %-12.1f %-12.1f %-12.2f "
                "%-10s\n",
                nodes, total, max_node, messages, bytes, critical_us, cpu_us,
                single_node_us / critical_us, exact ? "yes" : "NO");
  }
  std::printf("\n(speedup = measured critical-path wall-clock relative to "
              "one node — the slowest node's evaluation time per query; "
              "'exact' = ranking identical to the centralized one. See "
              "bench_parallel_query for the thread fan-out sweep.)\n");
  return 0;
}
