// Distributed search over the shard RPC layer (src/net): host a
// 4-node cluster behind TCP ShardServers on localhost, dial them with
// a RemoteClusterIndex, and show that the remote ranking is
// bit-identical to the in-process one — then kill a server and watch
// the query degrade gracefully instead of failing.
//
// In a real deployment each ShardServer is its own process/machine and
// the client dials four different hosts; two servers in one process
// keep the example self-contained while still giving us one to kill.
//
// Build & run:  ./build/examples/remote_search
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "ir/cluster.h"
#include "net/remote_cluster.h"
#include "net/shard_server.h"
#include "net/tcp.h"

int main() {
  using namespace dls;

  // ---- Build the shared-nothing cluster: documents round-robin over
  // 4 nodes, 4 score fragments per node.
  ir::ClusterIndex cluster(4, 4);
  Rng rng(7);
  ZipfSampler zipf(500, 1.1);
  for (int d = 0; d < 400; ++d) {
    std::string body;
    for (int w = 0; w < 60; ++w) {
      body += StrFormat("term%03zu ", zipf.Sample(&rng));
    }
    cluster.AddDocument(StrFormat("http://site/doc%03d", d), body);
  }
  cluster.Finalize();

  // ---- Serve the nodes over TCP (port 0 = ephemeral): nodes 0..2 on
  // one "machine", node 3 on another we will later take down.
  net::ShardServer server, doomed;
  for (size_t i = 0; i < 3; ++i) {
    server.AddNode(&cluster.node_index(i), &cluster.node_fragments(i));
  }
  doomed.AddNode(&cluster.node_index(3), &cluster.node_fragments(3));
  if (Status s = server.Start(0); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = doomed.Start(0); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shard servers on 127.0.0.1:%u (3 nodes) and :%u (1 node)\n",
              server.port(), doomed.port());

  // ---- Dial them: one transport per shard, then the stats handshake.
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::vector<net::RemoteClusterIndex::Shard> shards;
  for (size_t i = 0; i < 3; ++i) {
    transports.push_back(
        std::make_unique<net::TcpTransport>("127.0.0.1", server.port()));
    shards.push_back({transports[i].get(), static_cast<uint32_t>(i)});
  }
  transports.push_back(
      std::make_unique<net::TcpTransport>("127.0.0.1", doomed.port()));
  shards.push_back({transports[3].get(), 0});  // node 0 of its server
  net::RemoteClusterIndex::Options options;
  options.timeout_ms = 500;
  options.retries = 1;
  net::RemoteClusterIndex remote(std::move(shards), options);
  if (Status s = remote.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("connected: %zu docs, global vocabulary aggregated\n\n",
              remote.document_count());

  // ---- The same query, both paths.
  const std::vector<std::string> query = {"term003", "term017", "term042"};
  ir::ClusterQueryStats stats;
  std::vector<ir::ClusterScoredDoc> over_wire =
      remote.Query(query, 5, 4, &stats);
  std::vector<ir::ClusterScoredDoc> in_process = cluster.Query(query, 5, 4);

  std::printf("top 5 over TCP (%zu messages, %zu bytes on the wire):\n",
              stats.messages, stats.bytes_shipped);
  for (size_t i = 0; i < over_wire.size(); ++i) {
    const bool same = in_process[i].url == over_wire[i].url &&
                      in_process[i].score == over_wire[i].score;
    std::printf("  %zu. %-24s %.6f  %s\n", i + 1, over_wire[i].url.c_str(),
                over_wire[i].score, same ? "== in-process" : "MISMATCH");
  }

  // ---- Batched execution: the whole workload in one frame per node.
  std::vector<std::vector<std::string>> workload = {
      query, {"term001"}, {"term010", "term200"}};
  ir::ClusterQueryStats batch_stats;
  remote.QueryBatch(workload, 5, 4, &batch_stats);
  std::printf("\nbatch of %zu queries: %zu messages (vs %zu one-by-one)\n",
              workload.size(), batch_stats.messages,
              workload.size() * stats.messages);

  // ---- Take the second machine down: the query still answers from
  // the surviving shards, and predicted_quality reports the lost
  // document share instead of the client reporting an error.
  doomed.Stop();
  ir::ClusterQueryStats degraded_stats;
  std::vector<ir::ClusterScoredDoc> degraded =
      remote.Query(query, 5, 4, &degraded_stats);
  std::printf("\nafter losing the 1-node server: %zu results, "
              "predicted quality %.2f\n",
              degraded.size(), degraded_stats.predicted_quality);

  return 0;
}
