// Distributed search, end to end: a 4-node cluster behind TCP
// ShardServers on localhost, a RemoteClusterIndex dialling them, and a
// serving Frontend (src/serve) standing in front of it all behind its
// own FrontendServer wire endpoint — the paper's deployment picture in
// one process:
//
//   client --SearchRequest--> FrontendServer -> Frontend
//     (admission / batcher / result cache)
//       -> RemoteClusterIndex --QueryRequest--> ShardServers -> nodes
//
// The walkthrough shows the full ladder: bit-identical remote ranking,
// a cache miss then a cache hit on the same wire query, an overload
// burst that gets load-shed with kUnavailable + retry-after, the
// ServeStats frame, batched fan-out, graceful degradation when a shard
// machine dies, and finally live ingestion: shards that accept
// Insert/Delete/Merge frames while serving, with the merge provably
// changing no ranking.
//
// In a real deployment each ShardServer is its own process/machine and
// the FrontendServer a third; one process keeps the example
// self-contained while still exercising every wire hop.
//
// Build & run:  ./build/examples/remote_search
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "common/strings.h"
#include "ingest/live_index.h"
#include "ir/cluster.h"
#include "net/remote_cluster.h"
#include "net/shard_server.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "serve/backend.h"
#include "serve/frontend.h"
#include "serve/frontend_server.h"

namespace {

/// One SearchRequest/SearchResponse exchange with a FrontendServer.
dls::Result<dls::net::SearchResponse> SearchOverWire(
    dls::net::Transport* transport, const dls::net::SearchRequest& request) {
  using namespace dls;
  Result<std::vector<uint8_t>> frame = net::EncodeSearchRequest(request);
  if (!frame.ok()) return frame.status();
  Result<std::vector<uint8_t>> reply =
      transport->Call(frame.value(), Deadline::After(5000));
  if (!reply.ok()) return reply.status();
  net::MessageType type;
  const uint8_t* body = nullptr;
  size_t body_len = 0;
  if (Status s = net::DecodeFrame(reply.value(), &type, &body, &body_len);
      !s.ok()) {
    return s;
  }
  if (type != net::MessageType::kSearchResponse) {
    return Status::Internal("unexpected frame type");
  }
  return net::DecodeSearchResponse(body, body_len);
}

}  // namespace

int main() {
  using namespace dls;

  // ---- Build the shared-nothing cluster: documents round-robin over
  // 4 nodes, 4 score fragments per node.
  ir::ClusterIndex cluster(4, 4);
  Rng rng(7);
  ZipfSampler zipf(500, 1.1);
  for (int d = 0; d < 400; ++d) {
    std::string body;
    for (int w = 0; w < 60; ++w) {
      body += StrFormat("term%03zu ", zipf.Sample(&rng));
    }
    cluster.AddDocument(StrFormat("http://site/doc%03d", d), body);
  }
  cluster.Finalize();

  // ---- Serve the nodes over TCP (port 0 = ephemeral): nodes 0..2 on
  // one "machine", node 3 on another we will later take down.
  net::ShardServer server, doomed;
  for (size_t i = 0; i < 3; ++i) {
    server.AddNode(&cluster.node_index(i), &cluster.node_fragments(i));
  }
  doomed.AddNode(&cluster.node_index(3), &cluster.node_fragments(3));
  if (Status s = server.Start(0); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = doomed.Start(0); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("shard servers on 127.0.0.1:%u (3 nodes) and :%u (1 node)\n",
              server.port(), doomed.port());

  // ---- Dial them: one transport per shard, then the stats handshake.
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::vector<net::RemoteClusterIndex::Shard> shards;
  for (size_t i = 0; i < 3; ++i) {
    transports.push_back(
        std::make_unique<net::TcpTransport>("127.0.0.1", server.port()));
    shards.push_back({transports[i].get(), static_cast<uint32_t>(i)});
  }
  transports.push_back(
      std::make_unique<net::TcpTransport>("127.0.0.1", doomed.port()));
  shards.push_back({transports[3].get(), 0});  // node 0 of its server
  net::RemoteClusterIndex::Options options;
  options.timeout_ms = 500;
  options.retries = 1;
  net::RemoteClusterIndex remote(std::move(shards), options);
  if (Status s = remote.Connect(); !s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("connected: %zu docs, global vocabulary aggregated\n\n",
              remote.document_count());

  // ---- The same query, both paths.
  const std::vector<std::string> query = {"term003", "term017", "term042"};
  ir::ClusterQueryStats stats;
  std::vector<ir::ClusterScoredDoc> over_wire =
      remote.Query(query, 5, 4, &stats);
  std::vector<ir::ClusterScoredDoc> in_process = cluster.Query(query, 5, 4);

  std::printf("top 5 over TCP (%zu messages, %zu bytes on the wire):\n",
              stats.messages, stats.bytes_shipped);
  for (size_t i = 0; i < over_wire.size(); ++i) {
    const bool same = in_process[i].url == over_wire[i].url &&
                      in_process[i].score == over_wire[i].score;
    std::printf("  %zu. %-24s %.6f  %s\n", i + 1, over_wire[i].url.c_str(),
                over_wire[i].score, same ? "== in-process" : "MISMATCH");
  }

  // ---- Cold restart from disk: flush every node to a segment file,
  // stand up a FRESH shard server that mmaps the segments instead of
  // holding heap-built indexes (the instant-start path a real shard
  // machine takes after a reboot), and prove the wire answers are
  // byte-for-byte the ones the live indexes gave.
  const std::string segment_prefix = "/tmp/remote_search_example";
  if (Status s = cluster.FlushToDisk(segment_prefix); !s.ok()) {
    std::fprintf(stderr, "flush: %s\n", s.ToString().c_str());
    return 1;
  }
  net::ShardServer reloaded;
  std::vector<std::string> segment_paths;
  for (size_t i = 0; i < 4; ++i) {
    segment_paths.push_back(ir::ClusterIndex::SegmentPath(segment_prefix, i));
    Result<uint32_t> node = reloaded.AddNodeFromSegment(segment_paths[i], 4);
    if (!node.ok()) {
      std::fprintf(stderr, "load %s: %s\n", segment_paths[i].c_str(),
                   node.status().ToString().c_str());
      return 1;
    }
  }
  if (Status s = reloaded.Start(0); !s.ok()) {
    std::fprintf(stderr, "start: %s\n", s.ToString().c_str());
    return 1;
  }
  {
    std::vector<std::unique_ptr<net::TcpTransport>> dials;
    std::vector<net::RemoteClusterIndex::Shard> reloaded_shards;
    for (size_t i = 0; i < 4; ++i) {
      dials.push_back(
          std::make_unique<net::TcpTransport>("127.0.0.1", reloaded.port()));
      reloaded_shards.push_back({dials[i].get(), static_cast<uint32_t>(i)});
    }
    net::RemoteClusterIndex from_disk(std::move(reloaded_shards), options);
    if (Status s = from_disk.Connect(); !s.ok()) {
      std::fprintf(stderr, "connect reloaded: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<ir::ClusterScoredDoc> reloaded_top =
        from_disk.Query(query, 5, 4);
    bool identical = reloaded_top.size() == over_wire.size();
    for (size_t i = 0; identical && i < reloaded_top.size(); ++i) {
      identical = reloaded_top[i].url == over_wire[i].url &&
                  reloaded_top[i].score == over_wire[i].score;
    }
    std::printf(
        "\ncold restart: 4 segments flushed, mmap-loaded, served over "
        "TCP — ranking %s\n",
        identical ? "identical to the live indexes" : "MISMATCH");
    if (!identical) return 1;
  }
  reloaded.Stop();
  for (const std::string& path : segment_paths) std::remove(path.c_str());

  // ---- Stand the serving frontend in front of the remote cluster and
  // put it on the wire too. A deliberately tiny frontend — one worker,
  // a one-deep queue — so overload is easy to provoke.
  serve::RemoteBackend backend(&remote);
  serve::FrontendOptions frontend_options;
  frontend_options.num_workers = 1;
  frontend_options.max_batch = 4;
  frontend_options.max_queue = 1;
  frontend_options.degrade_watermark = 0;
  serve::Frontend frontend(&backend, frontend_options);
  serve::FrontendServer frontend_server(&frontend);
  if (Status s = frontend_server.Start(0); !s.ok()) {
    std::fprintf(stderr, "frontend start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nfrontend server on 127.0.0.1:%u\n", frontend_server.port());

  net::TcpTransport frontend_dial("127.0.0.1", frontend_server.port());
  net::SearchRequest request;
  request.words = query;
  request.n = 5;
  request.max_fragments = 4;

  // First exchange evaluates through the whole ladder; the repeat is
  // answered from the epoch-keyed result cache, bit-identical.
  auto first = SearchOverWire(&frontend_dial, request);
  auto second = SearchOverWire(&frontend_dial, request);
  if (!first.ok() || !second.ok()) {
    std::fprintf(stderr, "frontend search failed\n");
    return 1;
  }
  bool cached_same = second.value().results.size() == over_wire.size();
  for (size_t i = 0; cached_same && i < over_wire.size(); ++i) {
    cached_same = second.value().results[i].url == over_wire[i].url &&
                  second.value().results[i].score == over_wire[i].score;
  }
  std::printf("search #1: cache_hit=%s   search #2: cache_hit=%s (%s)\n",
              first.value().cache_hit ? "true" : "false",
              second.value().cache_hit ? "true" : "false",
              cached_same ? "bit-identical to the direct ranking"
                          : "MISMATCH");

  // ---- Overload: six impatient clients, each on its own connection,
  // all with fresh (uncacheable) queries against the 1-worker/1-queue
  // frontend. The ones that cannot be admitted are shed *now* with
  // kUnavailable and a retry-after hint — bounded latency instead of
  // an unbounded queue.
  std::atomic<int> answered{0}, shed{0};
  std::atomic<uint32_t> retry_hint{0};
  for (int round = 0; round < 20 && shed.load() == 0; ++round) {
    std::vector<std::thread> clients;
    for (int c = 0; c < 6; ++c) {
      clients.emplace_back([&, round, c] {
        net::TcpTransport dial("127.0.0.1", frontend_server.port());
        net::SearchRequest burst;
        burst.words = {StrFormat("term%03d", (round * 6 + c) % 500),
                       StrFormat("term%03d", (round * 6 + c + 250) % 500)};
        burst.n = 5;
        burst.max_fragments = 4;
        auto response = SearchOverWire(&dial, burst);
        if (!response.ok()) return;
        if (response.value().status.ok()) {
          answered.fetch_add(1);
        } else if (response.value().status.code() ==
                   StatusCode::kUnavailable) {
          shed.fetch_add(1);
          retry_hint.store(response.value().retry_after_ms);
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }
  std::printf("overload burst: %d answered, %d shed kUnavailable "
              "(retry-after hint %u ms)\n",
              answered.load(), shed.load(), retry_hint.load());

  // ---- The operator's view, over the same wire: a ServeStats frame.
  auto stats_reply = frontend_dial.Call(
      net::EncodeServeStatsRequest(net::ServeStatsRequest{}),
      Deadline::After(5000));
  if (stats_reply.ok()) {
    net::MessageType type;
    const uint8_t* body = nullptr;
    size_t body_len = 0;
    if (net::DecodeFrame(stats_reply.value(), &type, &body, &body_len).ok() &&
        type == net::MessageType::kServeStatsResponse) {
      auto serve_stats = net::DecodeServeStatsResponse(body, body_len);
      if (serve_stats.ok()) {
        std::printf(
            "serve stats: %llu submitted, %llu completed, %llu cache hits, "
            "%llu shed, p99 %llu us\n",
            static_cast<unsigned long long>(serve_stats.value().submitted),
            static_cast<unsigned long long>(serve_stats.value().completed),
            static_cast<unsigned long long>(serve_stats.value().cache_hits),
            static_cast<unsigned long long>(
                serve_stats.value().shed_queue_full +
                serve_stats.value().shed_deadline),
            static_cast<unsigned long long>(
                serve_stats.value().latency_p99_us));
      }
    }
  }
  frontend_server.Stop();
  frontend.Stop();

  // ---- Batched execution: the whole workload in one frame per node,
  // with per-rider attribution — each query in the batch reports its
  // own work and quality, not a share of one batch-wide aggregate.
  std::vector<std::vector<std::string>> workload = {
      query, {"term001"}, {"term010", "term200"}};
  ir::ClusterQueryStats batch_stats;
  std::vector<ir::ClusterQueryStats> per_query;
  remote.QueryBatch(workload, 5, 4, &batch_stats, {}, &per_query);
  std::printf("\nbatch of %zu queries: %zu messages (vs %zu one-by-one)\n",
              workload.size(), batch_stats.messages,
              workload.size() * stats.messages);
  for (size_t q = 0; q < workload.size(); ++q) {
    std::printf("  rider %zu: %zu terms, %zu postings touched, "
                "quality %.2f\n",
                q, workload[q].size(), per_query[q].postings_touched_total,
                per_query[q].predicted_quality);
  }

  // ---- Replication: a backup machine also hosting node 3, and a
  // router that knows shard 3 has two replicas. Health-aware routing
  // sends traffic to the faster one; hedging fires a backup request
  // when an exchange blows its latency budget; failover retries
  // elsewhere on errors. Replicas serve identical content, so none of
  // that can change a ranking — only hide faults.
  net::ShardServer backup;
  backup.AddNode(&cluster.node_index(3), &cluster.node_fragments(3));
  if (Status s = backup.Start(0); !s.ok()) {
    std::fprintf(stderr, "backup start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::unique_ptr<net::TcpTransport>> replica_dials;
  std::vector<net::RemoteClusterIndex::ReplicaSet> replica_sets(4);
  for (size_t i = 0; i < 3; ++i) {
    replica_dials.push_back(
        std::make_unique<net::TcpTransport>("127.0.0.1", server.port()));
    replica_sets[i].replicas.push_back(
        {replica_dials.back().get(), static_cast<uint32_t>(i)});
  }
  replica_dials.push_back(
      std::make_unique<net::TcpTransport>("127.0.0.1", doomed.port()));
  replica_sets[3].replicas.push_back({replica_dials.back().get(), 0});
  replica_dials.push_back(
      std::make_unique<net::TcpTransport>("127.0.0.1", backup.port()));
  replica_sets[3].replicas.push_back({replica_dials.back().get(), 0});
  net::RemoteClusterIndex replicated(std::move(replica_sets), options);
  if (Status s = replicated.Connect(); !s.ok()) {
    std::fprintf(stderr, "replicated connect: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nreplicated shard 3 on 127.0.0.1:%u and :%u\n", doomed.port(),
              backup.port());

  // ---- Take the second machine down. The unreplicated router can
  // only degrade: it answers from the surviving shards and
  // predicted_quality reports the lost document share. The replicated
  // router fails over to the backup and nothing is lost.
  doomed.Stop();
  ir::ClusterQueryStats degraded_stats;
  std::vector<ir::ClusterScoredDoc> degraded =
      remote.Query(query, 5, 4, &degraded_stats);
  std::printf("\nafter losing the 1-node server:\n"
              "  unreplicated: %zu results, predicted quality %.2f\n",
              degraded.size(), degraded_stats.predicted_quality);

  ir::ClusterQueryStats replicated_stats;
  std::vector<ir::ClusterScoredDoc> survived =
      replicated.Query(query, 5, 4, &replicated_stats);
  bool replica_same = survived.size() == over_wire.size();
  for (size_t i = 0; replica_same && i < survived.size(); ++i) {
    replica_same = survived[i].url == over_wire[i].url &&
                   survived[i].score == over_wire[i].score;
  }
  std::printf("  replicated:   %zu results, predicted quality %.2f, "
              "%zu failover(s) — %s\n",
              survived.size(), replicated_stats.predicted_quality,
              replicated_stats.failovers,
              replica_same ? "ranking identical to before the failure"
                           : "MISMATCH");
  backup.Stop();

  // ---- Live ingestion: shards that take writes while they serve.
  // Two live shards over TCP; the centre routes every mutation to the
  // shard owning the url (a stable FNV-1a hash, so a document's insert
  // and its delete always land on the same node). Queries keep serving
  // off epoch-pinned snapshots throughout, and merging the delta tier
  // into a frozen run is not allowed to move a single ranking.
  ingest::LiveIndex live_a, live_b;
  net::ShardServer live_server;
  const uint32_t live_node_a = live_server.AddLiveNode(&live_a);
  const uint32_t live_node_b = live_server.AddLiveNode(&live_b);
  if (Status s = live_server.Start(0); !s.ok()) {
    std::fprintf(stderr, "live start: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::unique_ptr<net::TcpTransport>> live_dials;
  std::vector<net::RemoteClusterIndex::ReplicaSet> live_sets(2);
  for (uint32_t node : {live_node_a, live_node_b}) {
    live_dials.push_back(
        std::make_unique<net::TcpTransport>("127.0.0.1", live_server.port()));
    live_sets[node].replicas.push_back({live_dials.back().get(), node});
  }
  net::RemoteClusterIndex live_remote(std::move(live_sets), options);
  if (Status s = live_remote.Connect(); !s.ok()) {
    std::fprintf(stderr, "live connect: %s\n", s.ToString().c_str());
    return 1;
  }

  Rng live_rng(42);
  ZipfSampler live_zipf(200, 1.1);
  for (int d = 0; d < 120; ++d) {
    std::string body;
    for (int w = 0; w < 30; ++w) {
      body += StrFormat("term%03zu ", live_zipf.Sample(&live_rng));
    }
    Result<uint64_t> id =
        live_remote.Insert(StrFormat("live/doc%03d", d), body);
    if (!id.ok()) {
      std::fprintf(stderr, "insert: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  for (int d = 0; d < 120; d += 5) {
    Result<bool> found = live_remote.Delete(StrFormat("live/doc%03d", d));
    if (!found.ok() || !found.value()) {
      std::fprintf(stderr, "delete failed\n");
      return 1;
    }
  }
  // The mutations staled the cached global statistics; this query
  // re-runs the stats handshake first, so it is bit-identical to a
  // from-scratch rebuild of the surviving documents.
  std::vector<ir::ClusterScoredDoc> live_before =
      live_remote.Query(query, 5, 4);
  std::printf("\nlive cluster: 120 inserted, 24 tombstoned over the wire "
              "(shard epochs %llu and %llu)\n",
              static_cast<unsigned long long>(live_a.epoch()),
              static_cast<unsigned long long>(live_b.epoch()));

  // Pack every shard's delta tier into a frozen run and ask again: the
  // merge reorganises storage, never results.
  if (Status s = live_remote.MergeAll(); !s.ok()) {
    std::fprintf(stderr, "merge: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<ir::ClusterScoredDoc> live_after =
      live_remote.Query(query, 5, 4);
  bool live_same = live_after.size() == live_before.size();
  for (size_t i = 0; live_same && i < live_after.size(); ++i) {
    live_same = live_after[i].url == live_before[i].url &&
                live_after[i].score == live_before[i].score;
  }
  std::printf("after MergeAll: %zu results — %s\n", live_after.size(),
              live_same ? "ranking identical to before the merge"
                        : "MISMATCH");
  live_server.Stop();

  return (replica_same && live_same) ? 0 : 1;
}
