// Monet XML shredder walkthrough (Figures 9-12): shreds a document,
// prints the schema tree with relation contents, and reconstructs the
// original. Pass a file path to shred your own document, or run with
// no arguments to use the paper's example.
//
// Build & run:  ./build/examples/xml_shredder [file.xml]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "monet/database.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace {

constexpr const char kPaperExample[] =
    "<image key=\"18934\" source=\"http://ao.example/seles.jpg\">\n"
    "  <date> 999010530 </date>\n"
    "  <colors>\n"
    "    <histogram> 0.399 0.277 0.344 </histogram>\n"
    "    <saturation> 0.390 </saturation>\n"
    "    <version> 0.8 </version>\n"
    "  </colors>\n"
    "</image>\n";

void PrintRelation(const dls::monet::SchemaTree& schema,
                   dls::monet::RelationId id) {
  using dls::monet::StepKind;
  const dls::monet::SchemaNode& node = schema.node(id);
  std::printf("R%-3u %-42s", id, schema.PathOf(id).c_str());
  switch (node.kind) {
    case StepKind::kElement:
      std::printf("edges:");
      for (size_t i = 0; i < node.edges->size(); ++i) {
        std::printf(" <%llu,%llu>",
                    static_cast<unsigned long long>(node.edges->head(i)),
                    static_cast<unsigned long long>(node.edges->tail_oid(i)));
      }
      break;
    case StepKind::kAttribute:
      std::printf("values:");
      for (size_t i = 0; i < node.values->size(); ++i) {
        std::printf(" <%llu,\"%s\">",
                    static_cast<unsigned long long>(node.values->head(i)),
                    node.values->tail_str(i).c_str());
      }
      break;
    case StepKind::kPcdata:
      std::printf("pcdata:");
      for (size_t i = 0; i < node.values->size(); ++i) {
        std::string text = node.values->tail_str(i);
        if (text.size() > 24) text = text.substr(0, 21) + "...";
        std::printf(" <%llu,\"%s\">",
                    static_cast<unsigned long long>(node.values->head(i)),
                    text.c_str());
      }
      break;
    default:
      break;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dls;

  std::string xml_text = kPaperExample;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    xml_text = buffer.str();
  }

  monet::Database db;
  if (Status s = db.InsertXml("input", xml_text); !s.ok()) {
    std::fprintf(stderr, "shred failed: %s\n", s.ToString().c_str());
    return 1;
  }

  monet::DatabaseStats stats = db.Stats();
  std::printf("Monet transform: %zu relations, %zu associations, "
              "%zu bytes of columns\n\n",
              stats.relations, stats.associations, stats.memory_bytes);
  for (monet::RelationId id : db.schema().AllNodes()) {
    if (id == db.schema().root()) continue;
    PrintRelation(db.schema(), id);
  }

  Result<xml::Document> back = db.ReconstructDocument("input");
  if (!back.ok()) {
    std::fprintf(stderr, "reconstruct failed: %s\n",
                 back.status().ToString().c_str());
    return 1;
  }
  xml::WriteOptions pretty;
  pretty.pretty = true;
  std::printf("\ninverse mapping M^-1(M(d)):\n%s",
              xml::Write(back.value(), pretty).c_str());
  return 0;
}
