// The unlimited-domain scenario (Fig. 14): crawl a synthetic web with
// the generic Internet feature grammar and answer
//
//   "show me all portraits embedded in pages containing keywords
//    semantically related to the word 'champion'"
//
// Build & run:  ./build/examples/internet_search
#include <cstdio>

#include "core/internet.h"

int main() {
  using namespace dls;

  core::InternetEngine engine;
  if (Status s = engine.Initialize(); !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  // A WordNet-style synset for the demo query (see DESIGN.md).
  engine.AddSynonyms("champion",
                     {"winner", "title", "trophy", "grand", "slam"});

  synth::InternetOptions options;
  options.seed = 14;
  options.num_pages = 40;
  options.num_images = 24;
  synth::InternetSite site = GenerateInternet(options);
  engine.LoadSite(site);

  // Crawl from a handful of seeds; &MMO references pull in the rest.
  std::vector<std::string> seeds;
  for (size_t i = 0; i < site.pages.size(); i += 8) {
    seeds.push_back(site.pages[i].url);
  }
  if (Status s = engine.Crawl(seeds); !s.ok()) {
    std::fprintf(stderr, "crawl: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("crawled %zu objects from %zu seeds (%zu fetches, "
              "%zu distinct keywords)\n",
              engine.crawled_objects(), seeds.size(),
              engine.web().fetch_count(), engine.unique_keywords());

  std::vector<core::PortraitHit> hits =
      engine.PortraitsNearKeyword("champion");
  std::printf("\nportraits embedded in champion-related pages (%zu):\n",
              hits.size());
  for (const core::PortraitHit& hit : hits) {
    std::printf("  %-36s (embedded in %s)\n", hit.image_url.c_str(),
                hit.page_url.c_str());
  }
  return 0;
}
