// Index maintenance with the Feature Detector Scheduler: what happens
// when a detector implementation evolves (the paper's revision / minor
// / major change classes), measured in detector calls — the cost the
// FDS saves compared to rebuilding the meta-index.
//
// Build & run:  ./build/examples/incremental_maintenance
#include <cstdio>

#include "core/engine.h"
#include "core/grammars.h"

namespace {

/// A replacement segmenter: reports the whole video as one "other"
/// shot (think of it as a regressed shot-boundary detector).
dls::Status DegenerateSegment(const dls::fg::DetectorContext&,
                              std::vector<dls::fg::Token>* out) {
  out->push_back(dls::fg::Token::Int(0));
  out->push_back(dls::fg::Token::Int(1));
  out->push_back(dls::fg::Token::Str("other"));
  return dls::Status::Ok();
}

}  // namespace

int main() {
  using namespace dls;

  core::SearchEngine engine;
  if (Status s = engine.Initialize(synth::kAustralianOpenSchema,
                                   core::kVideoGrammar);
      !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  synth::SiteOptions options;
  options.seed = 99;
  options.num_players = 8;
  options.num_articles = 4;
  options.video_every = 1;  // every profile has a video
  options.video_shots = 4;
  options.video_frames_per_shot = 8;
  Result<synth::Site> site = synth::GenerateSite(options);
  if (!site.ok() || !engine.PopulateFromSite(site.value()).ok()) {
    std::fprintf(stderr, "populate failed\n");
    return 1;
  }
  size_t populate_calls = engine.registry().TotalCallCount();
  std::printf("populated: %zu videos in the meta-index, "
              "%zu detector calls (the full-rebuild baseline)\n\n",
              engine.parse_trees().size(), populate_calls);

  auto report = [&](const char* label) {
    std::printf("%-26s calls: segment=%zu tennis=%zu header=%zu | "
                "fds: %zu run, %zu unchanged, %zu cascades, "
                "%zu invalidated\n",
                label, engine.registry().CallCount("segment"),
                engine.registry().CallCount("tennis"),
                engine.registry().CallCount("header"),
                engine.fds().stats().tasks_run,
                engine.fds().stats().subtrees_unchanged,
                engine.fds().stats().cascades,
                engine.fds().stats().nodes_invalidated);
  };
  auto reset = [&]() {
    engine.registry().ResetCallCounts();
    engine.fds().ResetStats();
  };

  // --- Revision (-> 1.0.1): a correction; stored trees stay valid and
  //     the scheduler does nothing at all. ---
  reset();
  Result<fg::ChangeClass> change = engine.fds().UpdateDetector(
      "segment", DegenerateSegment, fg::DetectorVersion{1, 0, 1});
  if (!change.ok() || !engine.fds().RunPending().ok()) return 1;
  report("revision 1.0.1:");

  // --- Minor (-> 1.1.0): data stays answerable, revalidation runs at
  //     low priority; only segment subtrees are re-parsed. ---
  reset();
  change = engine.fds().UpdateDetector("segment", DegenerateSegment,
                                       fg::DetectorVersion{1, 1, 0});
  if (!change.ok() || !engine.fds().RunPending().ok()) return 1;
  report("minor 1.1.0:");
  {
    const std::string& url = site.value().videos.begin()->first;
    fg::ParseTree* tree = engine.parse_trees().Find(url);
    std::printf("  -> %s now has %zu shot(s) in its meta tree\n",
                url.c_str(), tree->FindAll("shot").size());
  }

  // --- Major (-> 2.0.0): stored data unusable now; instances are
  //     invalidated immediately and revalidated at high priority.
  //     We reinstall the real segmenter, so the shot structure comes
  //     back (and the tennis detector re-runs through the cascade). ---
  reset();
  fg::DetectorRegistry standard;
  core::RegisterVideoDetectors(&standard);
  // Route the standard implementation through the scheduler.
  core::DetectorEnv* env = &engine.env();
  (void)env;
  change = engine.fds().UpdateDetector(
      "segment",
      [&engine](const fg::DetectorContext& context,
                std::vector<fg::Token>* out) {
        // Delegate to a pristine registry holding the stock segmenter.
        static fg::DetectorRegistry stock = [] {
          fg::DetectorRegistry r;
          core::RegisterVideoDetectors(&r);
          return r;
        }();
        (void)engine;
        return stock.Invoke("segment", context, out);
      },
      fg::DetectorVersion{2, 0, 0});
  if (!change.ok() || !engine.fds().RunPending().ok()) return 1;
  report("major 2.0.0:");
  {
    const std::string& url = site.value().videos.begin()->first;
    fg::ParseTree* tree = engine.parse_trees().Find(url);
    std::printf("  -> %s restored to %zu shot(s)\n", url.c_str(),
                tree->FindAll("shot").size());
  }

  std::printf("\nconclusion: maintenance touched only the changed "
              "detector's subtrees; a full rebuild would have cost %zu "
              "calls each time.\n",
              populate_calls);
  return 0;
}
