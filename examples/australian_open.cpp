// The paper's running example end-to-end: build a specialised search
// engine for a (synthetic) Australian Open website and answer the
// Figure 13 query —
//
//   "Show me video shots of left-handed female players, who have won
//    the Australian Open in the past, and in which they approach the
//    net."
//
// Build & run:  ./build/examples/australian_open
#include <cstdio>

#include "common/timer.h"
#include "core/engine.h"
#include "core/grammars.h"

int main() {
  using namespace dls;

  // ---- Stage 1: modeling the index. ----
  core::SearchEngine engine;
  if (Status s = engine.Initialize(synth::kAustralianOpenSchema,
                                   core::kVideoGrammar);
      !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("webspace schema '%s': %zu classes, %zu associations\n",
              engine.schema().name().c_str(), engine.schema().classes().size(),
              engine.schema().associations().size());
  std::printf("feature grammar: start symbol %s, %zu detectors\n",
              engine.grammar().start_symbol().c_str(),
              engine.grammar().detectors().size());

  // ---- Stage 2: populating the index. ----
  synth::SiteOptions options;
  options.seed = 2001;
  options.num_players = 16;
  options.num_articles = 30;
  options.video_every = 2;
  options.video_shots = 5;
  options.video_frames_per_shot = 10;
  options.lefty_fraction = 0.4;
  options.winner_fraction = 0.5;
  Result<synth::Site> site = synth::GenerateSite(options);
  if (!site.ok()) {
    std::fprintf(stderr, "site: %s\n", site.status().ToString().c_str());
    return 1;
  }

  Timer timer;
  if (Status s = engine.PopulateFromSite(site.value()); !s.ok()) {
    std::fprintf(stderr, "populate: %s\n", s.ToString().c_str());
    return 1;
  }
  const core::EngineStats& stats = engine.stats();
  std::printf(
      "\npopulated in %.2fs: %zu documents crawled, %zu web-objects, "
      "%zu text attributes indexed, %zu media objects analysed "
      "(%zu video frames)\n",
      timer.ElapsedSeconds(), stats.documents_crawled,
      stats.objects_retrieved, stats.text_attributes_indexed,
      stats.media_analyzed, stats.frames_analyzed);
  monet::DatabaseStats concept_stats = engine.concept_db().Stats();
  monet::DatabaseStats meta = engine.meta_db().Stats();
  std::printf("concept db: %zu relations, %zu associations\n",
              concept_stats.relations, concept_stats.associations);
  std::printf("meta db:    %zu relations, %zu associations\n",
              meta.relations, meta.associations);

  // ---- Stage 3: querying. ----
  constexpr const char kFig13[] = R"(
    select Player.name, Player.country, Profile.video
    from Player, Profile
    where Player.gender == "female"
      and Player.plays == "left"
      and Player.history contains "Winner"
      and Is_covered_in(Player, Profile)
      and Profile.video event "netplay"
    limit 10
  )";
  std::printf("\nquery:%s\n", kFig13);
  // Show the translation first (XML representation + algebra plan).
  if (Result<std::string> plan = engine.Explain(kFig13); plan.ok()) {
    std::printf("%s\n", plan.value().c_str());
  }
  timer.Reset();
  Result<core::QueryResult> result = engine.Execute(kFig13);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("answer (%zu rows, %.1f ms):\n", result.value().rows.size(),
              timer.ElapsedMillis());
  for (const core::QueryRow& row : result.value().rows) {
    std::printf("  %-24s %-12s %s\n", row.values[0].c_str(),
                row.values[1].c_str(), row.values[2].c_str());
  }

  // A second, IR-ranked query: the ten articles most about champions.
  constexpr const char kRanked[] = R"(
    select Article.name
    from Article
    rank by Article.body about "champion title"
    limit 5
  )";
  std::printf("\nquery:%s\n", kRanked);
  Result<core::QueryResult> ranked = engine.Execute(kRanked);
  if (!ranked.ok()) {
    std::fprintf(stderr, "query: %s\n", ranked.status().ToString().c_str());
    return 1;
  }
  std::printf("answer:\n");
  for (const core::QueryRow& row : ranked.value().rows) {
    std::printf("  %.4f  %s\n", row.score, row.values[0].c_str());
  }
  return 0;
}
