// The paper's second case study: a Lonely Planet-style travel
// webspace. Demonstrates that the architecture is generic — a new
// conceptual schema, the same feature grammar and physical level, no
// engine changes. The documents are authored inline through the
// webspace docgen (the authoring-tool path, rather than the synthetic
// site generator).
//
// Build & run:  ./build/examples/lonely_planet
#include <cstdio>

#include "core/engine.h"
#include "core/grammars.h"
#include "webspace/docgen.h"

namespace {

constexpr const char kTravelSchema[] = R"schema(
webspace LonelyPlanet;

class Destination {
  name: varchar(60);
  region: varchar(40);
  climate: varchar(20);
  guide: Hypertext;
  clip: Video;
}

class Attraction {
  name: varchar(80);
  kind: varchar(30);
  description: Hypertext;
}

association Located_in(Attraction, Destination);
)schema";

struct DestinationSpec {
  const char* id;
  const char* name;
  const char* region;
  const char* climate;
  const char* guide;
};

struct AttractionSpec {
  const char* id;
  const char* name;
  const char* kind;
  const char* description;
  const char* destination;
};

constexpr DestinationSpec kDestinations[] = {
    {"dest-melbourne", "Melbourne", "Australia", "temperate",
     "Famous for the Australian Open tennis and its laneway cafes; "
     "a paradise for sport and coffee lovers."},
    {"dest-kyoto", "Kyoto", "Japan", "temperate",
     "Temples, gardens and traditional tea houses define the old "
     "imperial capital."},
    {"dest-nairobi", "Nairobi", "Kenya", "tropical",
     "Gateway to safari country, with a national park at the city "
     "edge."},
};

constexpr AttractionSpec kAttractions[] = {
    {"attr-mcg", "Melbourne Park", "stadium",
     "Centre court of the Australian Open grand slam tournament.",
     "dest-melbourne"},
    {"attr-laneways", "Laneway cafes", "food",
     "Espresso culture in narrow arcades.", "dest-melbourne"},
    {"attr-kinkakuji", "Kinkaku-ji", "temple",
     "The golden pavilion reflected in its mirror pond.", "dest-kyoto"},
    {"attr-safari", "Nairobi National Park", "park",
     "Lions and giraffes in sight of downtown towers.", "dest-nairobi"},
};

}  // namespace

int main() {
  using namespace dls;

  core::SearchEngine engine;
  if (Status s = engine.Initialize(kTravelSchema, core::kVideoGrammar);
      !s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }

  // Author one document per destination (the destination plus its
  // attractions and Located_in links) — materialized views by hand.
  for (const DestinationSpec& dest : kDestinations) {
    webspace::DocumentView view;
    view.document_url =
        std::string("http://lp.example/") + dest.id + ".xml";

    webspace::WebObject object;
    object.cls = "Destination";
    object.id = dest.id;
    std::string clip_url =
        std::string("http://lp.example/video/") + dest.id + ".mpg";
    object.attributes = {
        webspace::AttrValue{"name", dest.name, ""},
        webspace::AttrValue{"region", dest.region, ""},
        webspace::AttrValue{"climate", dest.climate, ""},
        webspace::AttrValue{"guide", dest.guide,
                            std::string("http://lp.example/guide/") +
                                dest.id + ".html"},
        webspace::AttrValue{"clip", "", clip_url},
    };
    view.objects.push_back(std::move(object));

    // A promotional clip (tennis-court footage for Melbourne, generic
    // otherwise) so the logical level has something to analyse.
    cobra::VideoScript script;
    script.seed = 7 + (&dest - kDestinations);
    cobra::ShotScript shot;
    shot.type = std::string(dest.id) == "dest-melbourne"
                    ? cobra::ShotClass::kTennis
                    : cobra::ShotClass::kOther;
    shot.trajectory = cobra::TrajectoryKind::kApproachNet;
    shot.num_frames = 10;
    script.shots.push_back(shot);
    engine.web().AddVideo(clip_url, script);

    for (const AttractionSpec& attraction : kAttractions) {
      if (std::string(attraction.destination) != dest.id) continue;
      webspace::WebObject a;
      a.cls = "Attraction";
      a.id = attraction.id;
      a.attributes = {
          webspace::AttrValue{"name", attraction.name, ""},
          webspace::AttrValue{"kind", attraction.kind, ""},
          webspace::AttrValue{"description", attraction.description,
                              std::string("http://lp.example/attr/") +
                                  attraction.id + ".html"},
      };
      view.objects.push_back(std::move(a));
      view.associations.push_back(webspace::AssociationInstance{
          "Located_in", attraction.id, dest.id});
    }

    Result<xml::Document> doc =
        webspace::GenerateDocument(engine.schema(), view);
    if (!doc.ok()) {
      std::fprintf(stderr, "docgen: %s\n", doc.status().ToString().c_str());
      return 1;
    }
    if (Status s = engine.PopulateDocument(view.document_url, doc.value());
        !s.ok()) {
      std::fprintf(stderr, "populate: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = engine.FinishPopulation(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("LonelyPlanet webspace: %zu documents, %zu web-objects, "
              "%zu media objects analysed\n\n",
              engine.stats().documents_crawled,
              engine.stats().objects_retrieved,
              engine.stats().media_analyzed);

  const char* queries[] = {
      // Conceptual join: attractions in temperate destinations.
      R"(select Attraction.name, Destination.name
         from Attraction, Destination
         where Located_in(Attraction, Destination)
           and Destination.climate == "temperate"
         limit 10)",
      // Text + concept: destinations whose guide mentions tennis.
      R"(select Destination.name, Destination.region
         from Destination
         where Destination.guide contains "tennis"
         limit 10)",
      // Content-based: destinations whose clip shows netplay.
      R"(select Destination.name, Destination.clip
         from Destination
         where Destination.clip event "netplay"
         limit 10)",
  };
  for (const char* text : queries) {
    std::printf("query:\n%s\n", text);
    Result<core::QueryResult> result = engine.Execute(text);
    if (!result.ok()) {
      std::fprintf(stderr, "query: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("answer (%zu rows):\n", result.value().rows.size());
    for (const core::QueryRow& row : result.value().rows) {
      std::printf(" ");
      for (const std::string& value : row.values) {
        std::printf(" %-28s", value.c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
