// Reproduces Figure 8 mechanically: builds the dependency graph of the
// tennis video feature grammar and prints it as Graphviz DOT (pipe the
// output through `dot -Tpng` if graphviz is available).
//
// Build & run:  ./build/examples/dump_depgraph [--edges]
#include <cstdio>
#include <cstring>

#include "core/grammars.h"
#include "fg/depgraph.h"

int main(int argc, char** argv) {
  using namespace dls;

  Result<fg::Grammar> grammar = fg::ParseGrammar(core::kVideoGrammar);
  if (!grammar.ok()) {
    std::fprintf(stderr, "grammar: %s\n",
                 grammar.status().ToString().c_str());
    return 1;
  }
  fg::DependencyGraph graph = fg::DependencyGraph::Build(grammar.value());

  if (argc > 1 && std::strcmp(argv[1], "--edges") == 0) {
    for (const fg::DepEdge& edge : graph.edges()) {
      const char* kind = edge.kind == fg::DepKind::kSibling   ? "sibling"
                         : edge.kind == fg::DepKind::kRule    ? "rule"
                                                              : "parameter";
      std::printf("%-10s %s -> %s\n", kind, edge.from.c_str(),
                  edge.to.c_str());
    }
    return 0;
  }
  std::fputs(graph.ToDot(grammar.value()).c_str(), stdout);
  return 0;
}
