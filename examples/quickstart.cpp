// Quickstart: the three levels in thirty lines.
//
//  1. physical  — shred an XML document into path-clustered relations,
//  2. logical   — nothing to extract here (see the other examples),
//  3. query     — structured path scans + reconstruction.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "monet/algebra.h"
#include "monet/database.h"
#include "xml/parser.h"
#include "xml/writer.h"

int main() {
  using namespace dls;

  // The paper's running example document (Figure 9).
  constexpr const char kXml[] =
      "<image key=\"18934\" source=\"http://ao.example/seles.jpg\">"
      "<date>999010530</date>"
      "<colors><histogram>0.399 0.277 0.344</histogram>"
      "<saturation>0.390</saturation><version>0.8</version></colors>"
      "</image>";

  // 1. Store it: the Monet transform shreds the document into one
  //    binary relation per root-to-node path (Figure 12).
  monet::Database db;
  if (Status s = db.InsertXml("seles", kXml); !s.ok()) {
    std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("Path summary (%zu relations):\n", db.Stats().relations);
  for (monet::RelationId id : db.schema().AllNodes()) {
    if (id == db.schema().root()) continue;
    std::printf("  R%-2u %s\n", id, db.schema().PathOf(id).c_str());
  }

  // 2. Query it: which images have a saturation below 0.4?
  monet::OidSet hits = monet::SelectByText(
      db, "/image/colors/saturation",
      [](const std::string& text) { return std::stod(text) < 0.4; });
  std::printf("\nimages with saturation < 0.4: %zu\n", hits.size());

  // 3. Get it back: the inverse mapping reconstructs the document.
  Result<xml::Document> back = db.ReconstructDocument("seles");
  if (!back.ok()) {
    std::fprintf(stderr, "reconstruct failed: %s\n",
                 back.status().ToString().c_str());
    return 1;
  }
  xml::WriteOptions pretty;
  pretty.pretty = true;
  std::printf("\nreconstructed document:\n%s",
              xml::Write(back.value(), pretty).c_str());
  return 0;
}
